//! The phase transition, live: sweep the failure ratio past the critical
//! point and watch gossip collapse exactly where Eq. 10 says it will.
//!
//! ```sh
//! cargo run --release -p gossip-examples --bin failure_sweep
//! ```

use gossip_model::distribution::PoissonFanout;
use gossip_model::poisson_case;
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;

fn main() {
    let n = 4_000;
    let z = 4.0;
    let dist = PoissonFanout::new(z);
    let qc = poisson_case::critical_q(z).expect("z > 0");
    println!("Po({z}) fanout: analytic critical point q_c = 1/z = {qc:.3}");
    println!("(gossip tolerates up to {:.0}% failed members)\n", (1.0 - qc) * 100.0);

    println!("{:>6}  {:>10}  {:>10}  {:>9}", "q", "analytic R", "simulated", "status");
    for i in 1..=19 {
        let q = i as f64 * 0.05;
        let analytic = poisson_case::reliability(z, q).expect("valid q");
        let cfg = ExecutionConfig::new(n, q);
        // Condition on take-off: the giant-component size is what the
        // analysis predicts (executions that die at the source measure
        // the *take-off probability*, not the component size).
        let stats =
            experiment::reliability_conditional(&cfg, &dist, 8, 1000 + i as u64, 0.5 * analytic);
        let status = if q <= qc { "DEAD (below q_c)" } else { "alive" };
        let sim = if stats.count() == 0 { 0.0 } else { stats.mean() };
        println!("{q:>6.2}  {analytic:>10.4}  {sim:>10.4}  {status}");
    }

    println!(
        "\nNote the collapse at q ≈ {qc:.2}: below the critical point even unlimited \
         retransmissions cannot save a single execution — only raising the fanout can."
    );
}
