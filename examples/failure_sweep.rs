//! The phase transition, live: sweep the failure ratio past the critical
//! point and watch gossip collapse exactly where Eq. 10 says it will —
//! one [`SweepGrid`] evaluated by the analytic and protocol backends.
//!
//! ```sh
//! cargo run --release --example failure_sweep
//! ```

use gossip::{AnalyticBackend, Backend, FanoutSpec, ProtocolBackend, Scenario, SweepGrid};

fn main() {
    let n = 4_000;
    let z = 4.0;
    let base = Scenario::new(n, FanoutSpec::poisson(z)).with_replications(8);
    let qc = AnalyticBackend
        .evaluate(&base)
        .expect("valid scenario")
        .critical_q
        .expect("z > 0");
    println!("Po({z}) fanout: analytic critical point q_c = 1/z = {qc:.3}");
    println!(
        "(gossip tolerates up to {:.0}% failed members)\n",
        (1.0 - qc) * 100.0
    );

    let qs: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let grid = SweepGrid::new(base).over_failure_ratios(&qs);
    let analytic = grid.run(&AnalyticBackend);
    let simulated = grid.run(&ProtocolBackend);

    println!(
        "{:>6}  {:>10}  {:>10}  {:>9}",
        "q", "analytic R", "simulated", "status"
    );
    for (ana, sim) in analytic.iter().zip(&simulated) {
        let q = ana.scenario.q().expect("ratio rows");
        let analytic_r = ana
            .report
            .as_ref()
            .expect("analytic prices all q")
            .reliability;
        let sim_r = sim
            .report
            .as_ref()
            .expect("protocol runs all q")
            .reliability;
        let status = if q <= qc { "DEAD (below q_c)" } else { "alive" };
        println!("{q:>6.2}  {analytic_r:>10.4}  {sim_r:>10.4}  {status}");
    }

    println!(
        "\nNote the collapse at q ≈ {qc:.2}: below the critical point even unlimited \
         retransmissions cannot save a single execution — only raising the fanout can."
    );
}
