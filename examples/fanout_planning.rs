//! Capacity planning with the inverse model: given a reliability target
//! and an expected failure level, size the fanout and the number of
//! executions — then verify the whole plan as a [`Scenario`] through
//! the analytic and protocol backends.
//!
//! ```sh
//! cargo run --release --example fanout_planning
//! ```

use gossip::{AnalyticBackend, Backend, FanoutSpec, ProtocolBackend, Scenario};
use gossip_model::{design, poisson_case, success, GeometricFanout};

fn main() {
    // Requirements from the (hypothetical) application:
    let target_reliability = 0.99; // each execution reaches 99% of survivors
    let expected_failures = 0.20; // up to 20% of members down
    let target_success = 0.9999; // whole-group delivery guarantee
    let n = 5_000;

    let q = 1.0 - expected_failures;
    println!("requirements: R ≥ {target_reliability}, failures ≤ {expected_failures}, Pr(success) ≥ {target_success}, n = {n}\n");

    // Step 1 — Poisson fanout via the closed form (paper Eq. 12).
    let z = poisson_case::mean_fanout_for(target_reliability, q).expect("valid target");
    println!("Eq. 12: Poisson mean fanout z = {z:.3}");

    // Step 2 — how many failures does that fanout actually tolerate at
    // the target reliability? (the paper's headline derivation)
    let eps = poisson_case::max_tolerable_failure(z, target_reliability).expect("achievable");
    println!(
        "max tolerable failure ratio at z = {z:.3}: {:.1}%",
        eps * 100.0
    );

    // Step 3 — executions for the group-wide guarantee (Eq. 6).
    let t = success::required_executions(target_reliability, target_success).expect("achievable");
    println!("Eq. 6: t = {t} executions for Pr(success) ≥ {target_success}");

    // Step 4 — suppose the deployment's relays actually behave
    // geometrically (heavy-tailed). The general design machinery sizes
    // that family too — no closed form needed.
    let geo_mean = design::required_scale(
        GeometricFanout::with_mean,
        q,
        target_reliability,
        0.5,
        200.0,
    )
    .expect("achievable in bracket");
    println!(
        "geometric fanout needs mean {geo_mean:.2} (vs Poisson {z:.2}) — heavy tails cost messages"
    );

    // Step 5 — freeze the plan into a scenario and validate it through
    // both evaluation layers.
    let plan = Scenario::new(n, FanoutSpec::poisson(z))
        .with_failure_ratio(q)
        .with_replications(5)
        .with_executions(t)
        .with_seed(11);
    let model = AnalyticBackend.evaluate(&plan).expect("valid plan");
    assert!((model.reliability - target_reliability).abs() < 1e-6);
    println!(
        "\nEq. 5 at the planned t: Pr(member heard) = {:.5} (target {target_success})",
        model.success_within_t
    );
    let sim = ProtocolBackend.evaluate(&plan).expect("valid plan");
    println!(
        "simulated check: R = {:.4} at z = {z:.3}, q = {q} (target {target_reliability})",
        sim.reliability
    );
    assert!((sim.reliability - target_reliability).abs() < 0.02);
    println!("plan verified.");
}
