//! Topology showdown: the paper's critical point `q_c = 1/E[f]` (Eq. 3)
//! assumes the complete graph — any member can gossip to any other.
//! This example pits that baseline against a clustered overlay (members
//! grouped into zones, dense inside, a single inter-zone link each) and
//! scans the failure axis with the graph backend to locate where each
//! topology's broadcast starts percolating.
//!
//! The clustered overlay must need a strictly *higher* uptime `q` to
//! take off: its inter-zone bottleneck is exactly the structure the
//! mean-field analysis cannot see. The assertion at the bottom makes
//! this example a regression test for that shift.
//!
//! ```sh
//! cargo run --release --example topology_showdown
//! ```

use gossip::{Backend, FanoutSpec, GraphBackend, OverlaySpec, Scenario, TopologySpec};

/// Unconditional-reliability floor marking "the broadcast percolates".
const TAKEOFF_FLOOR: f64 = 0.2;

/// First q on the grid where the overlay's raw reliability clears the
/// floor (`None` = never takes off below q = 1).
fn empirical_qc(base: &Scenario, spec: TopologySpec) -> Option<f64> {
    for i in 1..=40 {
        let q = i as f64 * 0.025;
        let report = GraphBackend
            .evaluate(&base.clone().with_failure_ratio(q).with_topology(spec))
            .expect("graph backend evaluates");
        if report.reliability_raw.expect("graph reports raw") >= TAKEOFF_FLOOR {
            return Some(q);
        }
    }
    None
}

fn main() {
    // n = 1000, Po(4): the complete-graph prediction is q_c = 0.25.
    let base = Scenario::new(1000, FanoutSpec::poisson(4.0))
        .with_replications(20)
        .with_seed(0x70_D0);

    let complete = TopologySpec::default();
    let clustered = TopologySpec::new(OverlaySpec::Clustered {
        zones: 10,
        intra: 5,
        inter: 1,
    });

    let qc_complete = empirical_qc(&base, complete).expect("complete graph percolates");
    let qc_clustered = empirical_qc(&base, clustered).expect("clustered overlay percolates");

    println!("complete graph  : empirical q_c ≈ {qc_complete:.3} (Eq. 3 predicts 0.250)");
    println!(
        "{:<16}: empirical q_c ≈ {qc_clustered:.3}",
        clustered.label()
    );
    println!(
        "shift           : +{:.3} — the inter-zone bottleneck costs real uptime margin",
        qc_clustered - qc_complete
    );

    assert!(
        qc_clustered > qc_complete,
        "clustered overlay must percolate later than the complete graph \
         ({qc_clustered:.3} vs {qc_complete:.3})"
    );
    println!("\nzoned structure demands more uptime than the mean-field analysis admits.");
}
