//! Gossip over SCAMP partial views: the paper assumes a membership
//! service exists (§3, citing SCAMP); this example runs the actual
//! protocol over actually-constructed partial views and compares with
//! the full-view analysis.
//!
//! ```sh
//! cargo run --release -p gossip-examples --bin scamp_gossip
//! ```

use gossip_model::distribution::PoissonFanout;
use gossip_model::poisson_case;
use gossip_netsim::membership::ScampViews;
use gossip_protocol::engine::{ExecutionConfig, MembershipKind};
use gossip_protocol::experiment;

fn main() {
    let n = 2_000;
    let (f, q) = (5.0, 0.85);
    let dist = PoissonFanout::new(f);
    let analytic = poisson_case::reliability(f, q).expect("supercritical");

    println!("n = {n}, Po({f}) fanout, q = {q}");
    println!("analytic reliability (uniform targets): {analytic:.4}\n");

    println!(
        "{:>12} {:>16} {:>12} {:>8}",
        "membership", "mean view size", "reliability", "gap"
    );
    let full_cfg = ExecutionConfig::new(n, q);
    let full = experiment::reliability_conditional(&full_cfg, &dist, 15, 3, 0.5);
    println!(
        "{:>12} {:>16} {:>12.4} {:>8.4}",
        "full view",
        n - 1,
        full.mean(),
        (full.mean() - analytic).abs()
    );

    for c in [0usize, 1, 2, 4] {
        let views = ScampViews::build(n, c, 99);
        let cfg = ExecutionConfig::new(n, q).with_membership(MembershipKind::Scamp { c });
        let stats = experiment::reliability_conditional(&cfg, &dist, 15, 3 + c as u64, 0.5);
        println!(
            "{:>12} {:>16.1} {:>12.4} {:>8.4}",
            format!("SCAMP c={c}"),
            views.mean_view_size(),
            stats.mean(),
            (stats.mean() - analytic).abs()
        );
    }

    println!(
        "\nWith (c+1)·ln n ≈ {:.0}-entry views (c = 2), gossip over partial views \
         is practically indistinguishable from the uniform-membership analysis — \
         the paper's membership assumption costs almost nothing.",
        3.0 * (n as f64).ln()
    );
}
