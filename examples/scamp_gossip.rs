//! Gossip over SCAMP partial views: the paper assumes a membership
//! service exists (§3, citing SCAMP); this example runs the same
//! [`Scenario`] with full and SCAMP membership through the protocol
//! backend and compares with the full-view analysis.
//!
//! ```sh
//! cargo run --release --example scamp_gossip
//! ```

use gossip::{AnalyticBackend, Backend, FanoutSpec, MembershipSpec, ProtocolBackend, Scenario};
use gossip_netsim::membership::ScampViews;

fn main() {
    let n = 2_000;
    let (f, q) = (5.0, 0.85);
    let base = Scenario::new(n, FanoutSpec::poisson(f))
        .with_failure_ratio(q)
        .with_replications(15)
        .with_seed(3);
    let analytic = AnalyticBackend
        .evaluate(&base)
        .expect("valid scenario")
        .reliability;

    println!("n = {n}, Po({f}) fanout, q = {q}");
    println!("analytic reliability (uniform targets): {analytic:.4}\n");

    println!(
        "{:>12} {:>16} {:>12} {:>8}",
        "membership", "mean view size", "reliability", "gap"
    );
    let full = ProtocolBackend.evaluate(&base).expect("valid scenario");
    println!(
        "{:>12} {:>16} {:>12.4} {:>8.4}",
        "full view",
        n - 1,
        full.reliability,
        (full.reliability - analytic).abs()
    );

    for c in [0usize, 1, 2, 4] {
        let views = ScampViews::build(n, c, 99);
        let scenario = base
            .clone()
            .with_membership(MembershipSpec::Scamp { c })
            .with_seed(3 + c as u64);
        let report = ProtocolBackend.evaluate(&scenario).expect("valid scenario");
        println!(
            "{:>12} {:>16.1} {:>12.4} {:>8.4}",
            format!("SCAMP c={c}"),
            views.mean_view_size(),
            report.reliability,
            (report.reliability - analytic).abs()
        );
    }

    println!(
        "\nWith (c+1)·ln n ≈ {:.0}-entry views (c = 2), gossip over partial views \
         is practically indistinguishable from the uniform-membership analysis — \
         the paper's membership assumption costs almost nothing.",
        3.0 * (n as f64).ln()
    );
}
