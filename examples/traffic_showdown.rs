//! Traffic showdown: what a sustained multi-message stream does to the
//! paper's single-message reliability story, demonstrated on the
//! Monte-Carlo protocol backend.
//!
//! 1. **Uncontended streams are just k independent broadcasts.** With no
//!    bandwidth cap, a k = 4 stream's per-message reliability matches
//!    the closed-form single-message prediction (Eq. 11) — the i.i.d.
//!    analysis extends for free.
//! 2. **Contention breaks that story, and batching repairs it.** Cap
//!    every node at B = 2 frames per round and inject a k = 16 burst:
//!    relaying one id per frame floods the bounded send queue, drops
//!    most copies as overflow, and per-message reliability collapses.
//!    Rumor piggybacking (up to 8 ids per frame) moves the same copies
//!    in an eighth of the frames and sustains delivery *at the same B*.
//!
//! Both assertions make this example a regression test for the traffic
//! subsystem's headline behaviours.
//!
//! ```sh
//! cargo run --release --example traffic_showdown
//! ```

use gossip::{AnalyticBackend, Backend, FanoutSpec, ProtocolBackend, Scenario, TrafficSpec};

fn traffic(report: &gossip::Report) -> &gossip::TrafficReport {
    report
        .traffic
        .as_ref()
        .expect("stream scenarios report a traffic section")
}

/// An uncapped k = 4 stream against the closed-form single-message
/// prediction.
fn uncontended_matches_prediction() {
    let base = Scenario::new(1000, FanoutSpec::poisson(4.0))
        .with_failure_ratio(0.9)
        .with_replications(30)
        .with_seed(0x7A11)
        .with_traffic(TrafficSpec::stream(4));
    let predicted = AnalyticBackend
        .evaluate(&base)
        .expect("uncontended streams reduce to the closed form");
    let measured = ProtocolBackend
        .evaluate(&base)
        .expect("protocol runs streams in-engine");
    let (p, m) = (traffic(&predicted), traffic(&measured));

    println!("uncontended stream — n = 1000, Po(4), q = 0.9, k = 4, no cap");
    println!(
        "  Eq. 11 per message (analytic) : R = {:.4}",
        p.reliability_mean
    );
    println!(
        "  measured per-message mean     : R = {:.4}",
        m.reliability_mean
    );
    println!(
        "  measured per-message min      : R = {:.4}",
        m.reliability_min
    );
    assert!(
        (m.reliability_mean - p.reliability_mean).abs() < 0.05,
        "an uncontended stream must match the single-message closed form \
         ({:.4} vs {:.4})",
        m.reliability_mean,
        p.reliability_mean
    );
}

/// A k = 16 burst under a B = 2 frames/round cap, with and without
/// rumor piggybacking.
fn batching_survives_contention() {
    let base = Scenario::new(1000, FanoutSpec::poisson(4.0))
        .with_replications(30)
        .with_seed(0x7A22);
    let stream = TrafficSpec::stream(16)
        .with_bandwidth(2)
        .with_queue_capacity(32);
    let uncapped = ProtocolBackend
        .evaluate(&base.clone().with_traffic(TrafficSpec::stream(16)))
        .expect("uncapped stream evaluates");
    let unbatched = ProtocolBackend
        .evaluate(&base.clone().with_traffic(stream))
        .expect("capped unbatched stream evaluates");
    let batched = ProtocolBackend
        .evaluate(&base.clone().with_traffic(stream.with_piggyback(8)))
        .expect("capped batched stream evaluates");
    let (free, solo, piggy) = (traffic(&uncapped), traffic(&unbatched), traffic(&batched));

    println!("\ncontention showdown — n = 1000, Po(4), q = 1, k = 16 burst");
    println!(
        "  no cap                         : mean R = {:.4}  (dropped {:>9.0})",
        free.reliability_mean,
        free.copies_dropped.unwrap_or(0.0)
    );
    println!(
        "  B = 2, one id per frame        : mean R = {:.4}  (dropped {:>9.0})",
        solo.reliability_mean,
        solo.copies_dropped.unwrap_or(0.0)
    );
    println!(
        "  B = 2, piggyback up to 8 ids   : mean R = {:.4}  (dropped {:>9.0})",
        piggy.reliability_mean,
        piggy.copies_dropped.unwrap_or(0.0)
    );
    assert!(
        solo.reliability_mean < free.reliability_mean - 0.1,
        "a k=16 burst against B=2 single-id frames must collapse well below \
         the uncapped stream ({:.4} vs {:.4})",
        solo.reliability_mean,
        free.reliability_mean
    );
    assert!(
        piggy.reliability_mean >= solo.reliability_mean + 0.1,
        "at the same B, piggybacking must sustain per-message reliability the \
         single-id frames lose ({:.4} vs {:.4})",
        piggy.reliability_mean,
        solo.reliability_mean
    );
    assert!(
        solo.copies_dropped.unwrap_or(0.0) > piggy.copies_dropped.unwrap_or(0.0),
        "the overflow ledger must show where the unbatched copies went"
    );
}

fn main() {
    uncontended_matches_prediction();
    batching_survives_contention();
    println!(
        "\nbandwidth is the multi-message failure mode: the i.i.d. prediction \
         holds while frames are free, and batching is what keeps it honest \
         once they are not."
    );
}
