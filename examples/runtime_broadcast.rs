//! Live runtime walkthrough: run the paper's push protocol for real —
//! node actors on OS threads, gossip relays racing through an actual
//! transport — and check the measured reliability against the analytic
//! prediction.
//!
//! The broadcast runs twice: over the in-process channel transport
//! (deterministic replay), then over genuine loopback TCP sockets with
//! line-delimited JSON frames. Both must land on the generating-function
//! curve, which is the repo's end-to-end fidelity check: not just the
//! models of the protocol, but the *implemented* protocol, matches the
//! paper.
//!
//! ```sh
//! cargo run --release --example runtime_broadcast
//! GOSSIP_RUNTIME_N=256 cargo run --release --example runtime_broadcast
//! ```

use gossip::{AnalyticBackend, Backend, FanoutSpec, RuntimeBackend, Scenario};

fn main() {
    // Group size from the environment so CI can pin it small.
    let n: usize = std::env::var("GOSSIP_RUNTIME_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);

    // A harsh operating point: 10% of members crashed (q = 0.9) AND
    // 20% of messages lost in transit, Poisson(6) fanout.
    let scenario = Scenario::new(n, FanoutSpec::poisson(6.0))
        .with_failure_ratio(0.9)
        .with_loss(0.2)
        .with_replications(6);

    let model = AnalyticBackend.evaluate(&scenario).expect("valid scenario");
    println!("scenario               : {}", model.scenario);
    println!("analytic R(q, P, loss) : {:.4}", model.reliability);

    // Finite-size + Monte-Carlo slack: small groups sit a bit below the
    // n → ∞ curve, and 6 replications carry sampling noise.
    let tol = 0.15;
    for backend in [RuntimeBackend::channel(), RuntimeBackend::tcp()] {
        let live = backend.evaluate(&scenario).expect("live run completes");
        println!(
            "{:<22} : {:.4}  ({} reps, {:.1} msgs/member, {:.1} lost/run, rounds ≈ {:.1})",
            format!("live over {}", live.transport.as_deref().unwrap()),
            live.reliability,
            live.replications,
            live.messages_per_member.unwrap(),
            live.messages_lost.unwrap(),
            live.rounds.unwrap_or(0.0),
        );
        let gap = (live.reliability - model.reliability).abs();
        assert!(
            gap < tol,
            "{}: live reliability {:.4} vs analytic {:.4} (gap {gap:.4})",
            live.backend,
            live.reliability,
            model.reliability
        );
    }
    println!("\nthe running protocol lands on the paper's curve over both wires.");
}
