//! Heterogeneous deployments as mixture fanouts: most members are
//! constrained edge devices, a few are well-connected relays. The
//! mixture machinery answers what the relay tier buys.
//!
//! ```sh
//! cargo run --release -p gossip-examples --bin heterogeneous_fleet
//! ```

use gossip_model::distribution::{FanoutDistribution, FixedFanout, MixtureFanout, PoissonFanout};
use gossip_model::SitePercolation;

fn fleet(relay_share: f64, relay_fanout: f64) -> MixtureFanout {
    MixtureFanout::new(vec![
        (
            1.0 - relay_share,
            Box::new(FixedFanout::new(2)) as Box<dyn FanoutDistribution>,
        ),
        (relay_share, Box::new(PoissonFanout::new(relay_fanout))),
    ])
}

fn main() {
    let q = 0.8; // 20% of members crashed

    println!("edge devices relay to 2 peers; relays to Po(z_r) peers; q = {q}\n");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>14}",
        "relay share", "relay fanout", "mean fanout", "q_c", "reliability"
    );
    for &(share, zr) in &[
        (0.00, 0.0),
        (0.05, 8.0),
        (0.05, 16.0),
        (0.10, 8.0),
        (0.10, 16.0),
        (0.20, 16.0),
    ] {
        let dist: Box<dyn FanoutDistribution> = if share == 0.0 {
            Box::new(FixedFanout::new(2))
        } else {
            Box::new(fleet(share, zr))
        };
        let perc = SitePercolation::new(&dist, q).expect("valid q");
        let qc = perc
            .critical_q()
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "n/a".into());
        let r = perc.reliability().expect("solver converges");
        println!(
            "{:>12.2} {:>12.1} {:>12.2} {:>12} {:>14.4}",
            share,
            zr,
            dist.mean(),
            qc,
            r
        );
    }

    println!(
        "\nA 5% relay tier with Po(16) fanout pushes reliability from the \
         fixed-fanout baseline toward 1 while barely moving the mean message \
         cost — the generating-function model prices the relay tier exactly \
         (mixtures: G0 = Σ wᵢ·G0ᵢ)."
    );
}
