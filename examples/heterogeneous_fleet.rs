//! Heterogeneous deployments as mixture fanouts: most members are
//! constrained edge devices, a few are well-connected relays. Declared
//! as a [`FanoutSpec::Mixture`] scenario and priced by the analytic
//! backend — the mixture machinery answers what the relay tier buys.
//!
//! ```sh
//! cargo run --release --example heterogeneous_fleet
//! ```

use gossip::{AnalyticBackend, Backend, FanoutSpec, Scenario};

fn fleet(relay_share: f64, relay_fanout: f64) -> FanoutSpec {
    FanoutSpec::Mixture {
        components: vec![
            (1.0 - relay_share, FanoutSpec::fixed(2)),
            (relay_share, FanoutSpec::poisson(relay_fanout)),
        ],
    }
}

fn main() {
    let q = 0.8; // 20% of members crashed

    println!("edge devices relay to 2 peers; relays to Po(z_r) peers; q = {q}\n");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>14}",
        "relay share", "relay fanout", "mean fanout", "q_c", "reliability"
    );
    for &(share, zr) in &[
        (0.00, 0.0),
        (0.05, 8.0),
        (0.05, 16.0),
        (0.10, 8.0),
        (0.10, 16.0),
        (0.20, 16.0),
    ] {
        let fanout = if share == 0.0 {
            FanoutSpec::fixed(2)
        } else {
            fleet(share, zr)
        };
        let scenario = Scenario::new(10_000, fanout.clone()).with_failure_ratio(q);
        let report = AnalyticBackend.evaluate(&scenario).expect("valid scenario");
        let qc = report
            .critical_q
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "{:>12.2} {:>12.1} {:>12.2} {:>12} {:>14.4}",
            share,
            zr,
            fanout.mean().expect("valid fanout"),
            qc,
            report.reliability
        );
    }

    println!(
        "\nA 5% relay tier with Po(16) fanout pushes reliability from the \
         fixed-fanout baseline toward 1 while barely moving the mean message \
         cost — the generating-function model prices the relay tier exactly \
         (mixtures: G0 = Σ wᵢ·G0ᵢ)."
    );
}
