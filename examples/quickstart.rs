//! Quickstart: describe a gossip multicast group as a [`Scenario`],
//! predict its reliability under failures with the analytic backend,
//! and verify the prediction with the protocol simulation backend —
//! the same scenario value, two evaluation layers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gossip::{AnalyticBackend, Backend, FanoutSpec, ProtocolBackend, Scenario};

fn main() {
    // A 10 000-member multicast group. Each member that receives the
    // message relays it to Poisson(5)-many uniformly random members.
    // 15% of the members have crashed.
    let scenario = Scenario::new(10_000, FanoutSpec::poisson(5.0))
        .with_failure_ratio(0.85)
        .with_replications(5)
        .with_executions(4);

    let model = AnalyticBackend.evaluate(&scenario).expect("valid scenario");

    println!("scenario              : {}", model.scenario);
    println!(
        "critical q (Eq. 10)   : {:.4}  → up to {:.1}% of members may fail",
        model.critical_q.expect("percolating distribution"),
        100.0 * (1.0 - model.critical_q.unwrap())
    );

    // Question 1 (paper Eq. 11): what fraction of the surviving members
    // does one gossip execution reach?
    println!("reliability R(q, P)   : {:.4}", model.reliability);
    println!(
        "expected receivers    : {:.0} of {} nonfailed members",
        model.reliability * (scenario.n as f64) * scenario.q().unwrap(),
        ((scenario.n as f64) * scenario.q().unwrap()).round()
    );

    // Question 2 (paper Eqs. 5-6): how close to "everyone heard it"
    // do the scenario's t = 4 executions get?
    println!(
        "Pr(heard within t=4)  : {:.5}  (Eq. 5 at the analytic R)",
        model.success_within_t
    );

    // Verify against the actual protocol on the discrete-event
    // simulator — same scenario, different backend.
    let sim = ProtocolBackend.evaluate(&scenario).expect("valid scenario");
    println!(
        "simulated reliability : {:.4}  ({} runs, n = {})",
        sim.reliability, sim.replications, scenario.n
    );
    let gap = (sim.reliability - model.reliability).abs();
    println!("model-vs-sim gap      : {gap:.4}");
    assert!(gap < 0.02, "model and simulation disagree: {gap}");
    println!("\nmodel and simulation agree — see DESIGN.md for the theory.");
}
