//! Quickstart: model a gossip multicast group, predict its reliability
//! under failures, and verify the prediction with a simulation.
//!
//! ```sh
//! cargo run --release -p gossip-examples --bin quickstart
//! ```

use gossip_model::{Gossip, PoissonFanout};
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;

fn main() {
    // A 10 000-member multicast group. Each member that receives the
    // message relays it to Poisson(5)-many uniformly random members.
    // 15% of the members have crashed.
    let n = 10_000;
    let fanout = PoissonFanout::new(5.0);
    let q = 0.85;

    let model = Gossip::new(n, fanout, q).expect("valid parameters");

    println!("group size            : {n}");
    println!("fanout                : Po(5), mean {}", model.distribution().z());
    println!("nonfailed ratio q     : {q}");
    println!(
        "critical q (Eq. 10)   : {:.4}  → up to {:.1}% of members may fail",
        model.critical_q().expect("percolating distribution"),
        100.0 * (1.0 - model.critical_q().unwrap())
    );

    // Question 1 (paper Eq. 11): what fraction of the surviving members
    // does one gossip execution reach?
    let reliability = model.reliability().expect("solver converges");
    println!("reliability R(q, P)   : {reliability:.4}");
    println!(
        "expected receivers    : {:.0} of {} nonfailed members",
        model.expected_receivers().unwrap(),
        model.nonfailed_count()
    );

    // Question 2 (paper Eqs. 5-6): how many executions until *everyone*
    // nonfailed has the message with 99.99% probability?
    let t = model.required_executions(0.9999).expect("achievable");
    println!("executions for 99.99% : {t}");

    // Verify against the actual protocol on the discrete-event
    // simulator (5 executions, conditioned on take-off).
    let cfg = ExecutionConfig::new(n, q);
    let sim = experiment::reliability_conditional(&cfg, &PoissonFanout::new(5.0), 5, 7, 0.5);
    println!("simulated reliability : {:.4}  (5 runs, n = {n})", sim.mean());
    let gap = (sim.mean() - reliability).abs();
    println!("model-vs-sim gap      : {gap:.4}");
    assert!(gap < 0.02, "model and simulation disagree: {gap}");
    println!("\nmodel and simulation agree — see DESIGN.md for the theory.");
}
