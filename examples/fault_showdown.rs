//! Fault showdown: two ways the paper's i.i.d. failure assumptions
//! flatter a gossip protocol, demonstrated live on the discrete-event
//! simulator.
//!
//! 1. **Bursty loss beats i.i.d. loss at the same mean rate.** A
//!    Gilbert-Elliott channel alternating good/bad states with a long
//!    bad dwell concentrates its drops on consecutive transmissions of
//!    the same sender, gutting whole fans instead of thinning the relay
//!    graph uniformly. Eq. 8's bond-percolation picture only prices the
//!    mean.
//! 2. **A correlated zone kill beats equal-mass random crashes.**
//!    Killing the source's own zone of a clustered overlay takes out
//!    the neighbours the source actually gossips to; the same number of
//!    members crashed uniformly at random barely dents delivery. Eq. 1
//!    only prices the count.
//!
//! Both assertions make this example a regression test for the fault
//! subsystem's headline behaviours.
//!
//! ```sh
//! cargo run --release --example fault_showdown
//! ```

use gossip::{
    Backend, BurstySpec, FanoutSpec, FaultSpec, NetSimBackend, OverlaySpec, Scenario, TopologySpec,
};

fn raw(report: &gossip::Report) -> f64 {
    report.reliability_raw.expect("netsim reports raw")
}

/// Bursty vs i.i.d. loss at an identical 30% mean drop rate.
fn bursty_vs_iid() {
    // pi_bad = p_gb/(p_gb+p_bg) = 0.375, mean = 0.375 * 0.8 = 0.30.
    let bursty_spec = BurstySpec {
        p_gb: 0.06,
        p_bg: 0.10,
        loss_good: 0.0,
        loss_bad: 0.8,
    };
    let base = Scenario::new(600, FanoutSpec::poisson(6.0))
        .with_replications(30)
        .with_seed(0x6E11);
    let iid = NetSimBackend
        .evaluate(&base.clone().with_loss(0.30))
        .expect("iid loss evaluates");
    let bursty = NetSimBackend
        .evaluate(
            &base
                .clone()
                .with_faults(FaultSpec::none().with_bursty_loss(bursty_spec)),
        )
        .expect("bursty loss evaluates");

    println!("loss model showdown — n = 600, Po(6), q = 1, mean drop rate 0.30");
    println!("  i.i.d.  loss=0.30             : raw R = {:.4}", raw(&iid));
    println!(
        "  bursty  {:<22}: raw R = {:.4}",
        bursty.faults.as_deref().unwrap_or("-"),
        raw(&bursty)
    );
    assert!(
        raw(&bursty) < raw(&iid),
        "bursty loss at the same mean must hurt more ({:.4} vs {:.4})",
        raw(&bursty),
        raw(&iid)
    );
}

/// A correlated kill of the source's zone vs the same crash mass spread
/// uniformly.
fn zone_kill_vs_random() {
    let n = 1000;
    let clustered = TopologySpec::new(OverlaySpec::Clustered {
        zones: 10,
        intra: 5,
        inter: 1,
    });
    let base = Scenario::new(n, FanoutSpec::poisson(4.0))
        .with_replications(30)
        .with_seed(0x2035)
        .with_topology(clustered);
    // Zone 0 holds the (immortal) source: killing it at t = 0 strands
    // the source behind its few inter-zone links.
    let zoned = NetSimBackend
        .evaluate(
            &base
                .clone()
                .with_faults(FaultSpec::none().with_zone_failure(vec![0], 0)),
        )
        .expect("zone kill evaluates");
    // The same crash mass (one zone = n/10 members), i.i.d. (Eq. 1).
    let random = NetSimBackend
        .evaluate(&base.clone().with_failure_ratio(0.9))
        .expect("random crashes evaluate");

    println!("\ncrash model showdown — n = 1000, Po(4), clustered(z=10,intra=5,inter=1)");
    println!(
        "  random 10% crashed (q = 0.9)  : raw R = {:.4}",
        raw(&random)
    );
    println!(
        "  source zone killed at t = 0   : raw R = {:.4}",
        raw(&zoned)
    );
    assert!(
        raw(&zoned) < raw(&random),
        "a correlated kill of the source's zone must hurt more than the same \
         mass of random crashes ({:.4} vs {:.4})",
        raw(&zoned),
        raw(&random)
    );
}

fn main() {
    bursty_vs_iid();
    zone_kill_vs_random();
    println!(
        "\nfault structure matters: mean loss rate and crash count miss what \
         burst correlation and zone correlation cost."
    );
}
