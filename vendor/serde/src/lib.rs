//! Offline stub of `serde`.
//!
//! The build container has no crates.io access, so the real serde cannot
//! be vendored. This stub keeps the workspace's `use serde::{Serialize,
//! Deserialize}` + `#[derive(Serialize, Deserialize)]` code compiling and
//! *working* by replacing serde's visitor architecture with a simple
//! self-describing [`Value`] data model:
//!
//! * [`Serialize`] turns a value into a [`Value`] tree;
//! * [`Deserialize`] rebuilds a value from a [`Value`] tree;
//! * [`json`] encodes/decodes `Value` as real JSON text, so round-trip
//!   persistence (`json::to_string` / `json::from_str`) works end to end.
//!
//! The derive macros (re-exported from the sibling `serde_derive` stub)
//! support non-generic structs (named, tuple, unit) and enums (unit,
//! tuple, and struct variants) — the shapes this workspace uses.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A self-describing serialized value (the JSON data model plus
/// distinct signed/unsigned integers).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absence of a value (`null`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as u64 (accepts U64 and non-negative I64/F64).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric view as i64.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric view as f64 (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }
}

/// Looks up a field in a map value by key (first match).
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes an instance from a [`Value`] tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected unsigned integer for ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::custom("tuple arity mismatch"));
                }
                Ok(($($name::deserialize_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::deserialize_value(&7u32.serialize_value()).unwrap(), 7);
        assert_eq!(
            f64::deserialize_value(&1.5f64.serialize_value()).unwrap(),
            1.5
        );
        assert_eq!(
            Vec::<u64>::deserialize_value(&vec![1u64, 2].serialize_value()).unwrap(),
            vec![1, 2]
        );
        let pair: (u32, f64) =
            Deserialize::deserialize_value(&(3u32, 0.5f64).serialize_value()).unwrap();
        assert_eq!(pair, (3, 0.5));
    }

    #[test]
    fn option_null() {
        let none: Option<u32> = None;
        assert_eq!(none.serialize_value(), Value::Null);
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::Null).unwrap(),
            None
        );
    }
}
