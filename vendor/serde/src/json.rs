//! JSON text codec for the [`Value`](crate::Value) data model.
//!
//! Gives the workspace real round-trip persistence: any
//! `#[derive(Serialize, Deserialize)]` type can be written to and read
//! back from JSON text without the real serde_json.

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize_value(&value)
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::custom("non-finite float has no JSON representation"));
            }
            // Rust's Display prints the shortest representation that
            // round-trips; ensure a decimal point so it re-parses as F64.
            let s = x.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Seq(items)),
                        _ => return Err(Error::custom("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Map(entries)),
                        _ => return Err(Error::custom("expected ',' or '}' in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are not needed for this
                        // workspace's data; reject them explicitly.
                        let c = char::from_u32(code)
                            .ok_or_else(|| Error::custom("invalid \\u code point"))?;
                        out.push(c);
                    }
                    _ => return Err(Error::custom("bad escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode a UTF-8 multibyte sequence.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom("invalid float literal"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom("invalid integer literal"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom("invalid integer literal"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Map(vec![
            ("n".into(), Value::U64(1000)),
            ("q".into(), Value::F64(0.9)),
            ("label".into(), Value::Str("Po(4) \"test\"\n".into())),
            (
                "seq".into(),
                Value::Seq(vec![Value::I64(-3), Value::Null, Value::Bool(true)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn float_reparses_as_float() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), Value::F64(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{unquoted: 1}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("1 2").is_err());
    }
}
