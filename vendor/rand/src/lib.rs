//! Offline stub of the `rand` crate: exactly the trait surface this
//! workspace uses (`RngCore`, `SeedableRng`), API-compatible with
//! rand 0.8 for those items. The container this repo builds in has no
//! crates.io access, so the real crate cannot be vendored; the
//! workspace's own generators (`gossip_stats::rng`) implement these
//! traits so downstream code can stay generic over an RNG.

/// A random number generator: the core sampling interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array in practice).
    type Seed;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}
