//! Offline stub of the `crossbeam` scoped-thread API, implemented on
//! `std::thread::scope` (stable since Rust 1.63). Only the surface this
//! workspace uses is provided: `crossbeam::scope(|s| { s.spawn(|_| …); })`
//! returning a `thread::Result`.

/// A scope handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle
    /// (crossbeam convention) so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        })
    }
}

/// Creates a scope in which spawned threads may borrow from the caller's
/// stack; joins all of them before returning.
///
/// `std::thread::scope` propagates child panics by re-panicking, so
/// unlike crossbeam this never actually returns `Err` — callers that
/// `.expect()` the result observe the same behaviour either way.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawn_and_join() {
        let data = [1, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }
}
