//! Offline stub of the `bytes` crate: a reference-counted, cheaply
//! cloneable byte buffer with the subset of the `Bytes` API this
//! workspace uses. Cloning is an `Arc` bump — forwarding a gossip
//! payload to `f` targets never copies the data.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, shared byte buffer. `clone` is O(1).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a buffer from a static slice (copies in this stub).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes { data: Arc::from(s) }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes {
            data: Arc::from(&s[..]),
        }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes {
            data: Arc::from(s.as_bytes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&*a, &[1, 2, 3]);
    }

    #[test]
    fn equality_by_content() {
        assert_eq!(Bytes::from(&b"xy"[..]), Bytes::from(vec![b'x', b'y']));
    }
}
