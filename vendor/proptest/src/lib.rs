//! Offline stub of `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro with `pattern in strategy` arguments and an
//! optional `#![proptest_config(...)]` header, range strategies over
//! primitive numerics, tuple strategies, `proptest::collection::vec`,
//! `.prop_map`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate: inputs are drawn from a
//! deterministic per-test RNG (seeded from the test name), there is no
//! shrinking, and failures report the case index plus the assertion
//! message. Case count defaults to 64 (`ProptestConfig::default`).

use std::ops::Range;

/// Deterministic RNG for input generation (SplitMix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test-name string (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-shift; bias is negligible for test generation.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Strategy configuration for one `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the Monte-Carlo
        // heavy suites in this workspace fast while still sweeping the
        // input space (documented in CHANGES.md).
        ProptestConfig { cases: 64 }
    }
}

/// Sentinel message used by `prop_assume!` to reject a case.
pub const REJECT: &str = "__proptest_stub_reject__";

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Chains a dependent strategy: `f` builds a second-stage strategy
    /// from each first-stage value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { strategy: self, f }
    }

    /// Filters generated values; rejected draws are retried (up to a
    /// bound, then the last value is returned regardless — tests should
    /// use loose filters).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { strategy: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.strategy.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.strategy.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        self.strategy.generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.next_below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The commonly imported surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@expand ($cfg) $($rest)*}
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        Ok(())
                    })();
                    match __result {
                        Ok(()) => {}
                        Err(__msg) if __msg == $crate::REJECT => continue,
                        Err(__msg) => panic!(
                            "proptest case {}/{} failed: {}",
                            __case + 1, __config.cases, __msg
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@expand ($crate::ProptestConfig::default()) $($rest)*}
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the
/// process) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a), stringify!($b), __a
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Rejects the current case (skips it) when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::REJECT.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0.5f64..2.0, n in 3u64..10, m in 1usize..4) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((3..10).contains(&n));
            prop_assert!((1..4).contains(&m));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_applies(pair in (0u32..3, 0.0f64..1.0)) {
            prop_assert!(pair.0 < 3);
        }
    }

    #[test]
    fn prop_map_composes() {
        let strat = (0u32..4, 0u32..4).prop_map(|(a, b)| a + b);
        let mut rng = crate::TestRng::deterministic("map");
        for _ in 0..50 {
            assert!(crate::Strategy::generate(&strat, &mut rng) < 8);
        }
    }
}
