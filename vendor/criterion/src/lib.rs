//! Offline stub of `criterion`.
//!
//! Implements the API surface this workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, `criterion_group!`,
//! `criterion_main!` — with a simple wall-clock measurement loop:
//! warm-up, then timed batches, reporting the best-of-samples ns/iter
//! (and derived throughput when configured).
//!
//! When invoked by `cargo test` (cargo passes `--test` to `harness =
//! false` bench targets), every benchmark body runs exactly once so the
//! suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Measurement settings and report sink.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &name.to_string(),
            self.sample_size,
            self.measurement_time,
            None,
            &mut f,
        );
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    if test_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test bench {name} ... ok");
        return;
    }

    // Calibrate: find an iteration count that takes ≳ 1/sample_size of
    // the measurement budget.
    let mut iters = 1u64;
    let per_sample = measurement_time.as_secs_f64() / sample_size as f64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let t = b.elapsed.as_secs_f64().max(1e-9);
        if t >= per_sample || iters >= 1 << 30 {
            break;
        }
        let scale = (per_sample / t).clamp(1.5, 100.0);
        iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
    }

    let mut best = f64::INFINITY;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns_per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
        if ns_per_iter > 0.0 {
            best = best.min(ns_per_iter);
        }
    }

    let mut line = format!("bench {name:<50} {best:>12.1} ns/iter");
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (best * 1e-9);
            line.push_str(&format!("  ({rate:.3e} elem/s)"));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (best * 1e-9) / (1024.0 * 1024.0);
            line.push_str(&format!("  ({rate:.1} MiB/s)"));
        }
        None => {}
    }
    println!("{line}");
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::new("solve", 42).to_string(), "solve/42");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
