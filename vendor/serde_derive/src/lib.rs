//! Offline stub of `serde_derive`.
//!
//! The build container has no crates.io access, so `syn`/`quote` are
//! unavailable; this crate parses the derive input by walking raw
//! `proc_macro` token trees. It supports the shapes this workspace
//! actually derives on:
//!
//! * non-generic structs: named fields, tuple structs, unit structs;
//! * non-generic enums: unit, tuple, and struct variants.
//!
//! Generated impls target the sibling `serde` stub's `Value` data model
//! (`serialize_value` / `deserialize_value`). `#[serde(...)]` and other
//! attributes are accepted and ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&name, &shape),
                Mode::Deserialize => gen_deserialize(&name, &shape),
            };
            code.parse()
                .expect("serde_derive stub generated invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive stub: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive stub: expected type name".into()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stub: generic type `{name}` is not supported"
        ));
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            None => Ok((name, Shape::UnitStruct)),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok((name, Shape::NamedStruct(fields)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Ok((name, Shape::TupleStruct(arity)))
            }
            _ => Err(format!(
                "serde_derive stub: unsupported struct body for `{name}`"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok((name, Shape::Enum(variants)))
            }
            _ => Err(format!(
                "serde_derive stub: expected enum body for `{name}`"
            )),
        },
        other => Err(format!("serde_derive stub: cannot derive for `{other}`")),
    }
}

/// Advances past any leading attributes (`#[...]`) and a visibility
/// qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `ident: Type, ...` field lists, skipping attributes and
/// visibility; type tokens are skipped up to the next comma that sits
/// outside any `<...>` nesting (parens/brackets are opaque groups
/// already, so only angle brackets need tracking).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive stub: expected field name, found `{other}`"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde_derive stub: expected `:` after `{field}`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
    }
    Ok(fields)
}

/// Skips tokens of a type expression until a comma at angle-depth 0,
/// consuming the comma if present.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts fields of a tuple struct/variant: commas at angle-depth 0,
/// plus one if the stream is non-empty and doesn't end with a comma.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive stub: expected variant name, found `{other}`"
                ))
            }
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?}))"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Map(vec![(::std::string::String::from({vname:?}), ::serde::Value::Seq(vec![{items}]))])",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::serialize_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {fields} }} => ::serde::Value::Map(vec![(::std::string::String::from({vname:?}), ::serde::Value::Map(vec![{entries}]))])",
                                fields = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(",\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::TupleStruct(arity) => gen_tuple_ctor(name, *arity, "__v"),
        Shape::NamedStruct(fields) => gen_named_ctor(name, fields, "__v"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{vn:?} => return Ok({name}::{vn}),", vn = v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => Some(format!(
                            "{vn:?} => {{ {ctor} }}",
                            ctor = gen_tuple_ctor(&format!("{name}::{vn}"), *arity, "__payload")
                        )),
                        VariantKind::Named(fields) => Some(format!(
                            "{vn:?} => {{ {ctor} }}",
                            ctor = gen_named_ctor(&format!("{name}::{vn}"), fields, "__payload")
                        )),
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                     match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => return Err(::serde::Error::custom(format!(\"unknown variant {{__other}} of {name}\"))),\n\
                     }}\n\
                 }}\n\
                 let __map = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected string or map for enum {name}\"))?;\n\
                 if __map.len() != 1 {{\n\
                     return Err(::serde::Error::custom(\"expected single-entry map for enum {name}\"));\n\
                 }}\n\
                 let (__variant, __payload) = (&__map[0].0, &__map[0].1);\n\
                 match __variant.as_str() {{\n\
                     {payload_arms}\n\
                     __other => Err(::serde::Error::custom(format!(\"unknown variant {{__other}} of {name}\"))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                payload_arms = payload_arms.join(",\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             #[allow(unused_variables)]\n\
             fn deserialize_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

/// `Ctor(seq[0]?, seq[1]?, ...)` from a Seq value named `src`.
fn gen_tuple_ctor(ctor: &str, arity: usize, src: &str) -> String {
    let items: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::deserialize_value(&__seq[{i}])?"))
        .collect();
    format!(
        "let __seq = {src}.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {ctor}\"))?;\n\
         if __seq.len() != {arity} {{\n\
             return Err(::serde::Error::custom(\"wrong arity for {ctor}\"));\n\
         }}\n\
         Ok({ctor}({items}))",
        items = items.join(", ")
    )
}

/// `Ctor { f: map[\"f\"]?, ... }` from a Map value named `src`.
fn gen_named_ctor(ctor: &str, fields: &[String], src: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_value(::serde::map_get(__map, {f:?}).ok_or_else(|| ::serde::Error::custom(\"missing field {f} for {ctor}\"))?)?"
            )
        })
        .collect();
    format!(
        "let __map = {src}.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {ctor}\"))?;\n\
         Ok({ctor} {{ {items} }})",
        items = items.join(", ")
    )
}
