//! # gossip — the workspace facade
//!
//! One crate that answers the paper's question — *what does
//! `Gossip(n, P, q)` deliver?* — through one declarative API and five
//! interchangeable evaluation layers:
//!
//! | backend | layer | crate |
//! |---|---|---|
//! | [`AnalyticBackend`] | generating functions (Eqs. 3–12) | `gossip_model` |
//! | [`GraphBackend`] | random-graph percolation | `gossip_rgraph` |
//! | [`ProtocolBackend`] | Monte-Carlo protocol runs (§5) | `gossip_protocol` |
//! | [`NetSimBackend`] | discrete-event network simulation | `gossip_protocol` |
//! | [`RuntimeBackend`] | live actor-per-node execution (threads + transports) | `gossip_runtime` |
//!
//! ```
//! use gossip::{all_backends, FanoutSpec, Scenario};
//!
//! // The paper's headline point: n = 1000, Po(4) fanout, 10% crashed.
//! let scenario = Scenario::new(1000, FanoutSpec::poisson(4.0))
//!     .with_failure_ratio(0.9)
//!     .with_replications(10);
//!
//! for backend in all_backends() {
//!     let report = backend.evaluate(&scenario).unwrap();
//!     // Every layer lands on the same reliability ≈ 0.9695 (Eq. 11).
//!     assert!((report.reliability - 0.9695).abs() < 0.03, "{}", report.backend);
//! }
//! ```
//!
//! Sweeps fan over all cores with deterministic per-cell seeds:
//!
//! ```
//! use gossip::{AnalyticBackend, FanoutSpec, Scenario, SweepGrid};
//!
//! let grid = SweepGrid::new(Scenario::new(1000, FanoutSpec::poisson(4.0)))
//!     .over_poisson_means(&[2.0, 4.0, 6.0])
//!     .over_failure_ratios(&[0.5, 0.7, 0.9]);
//! let cells = grid.run(&AnalyticBackend);
//! assert_eq!(cells.len(), 9);
//! ```

pub use gossip_model as model;
pub use gossip_netsim as netsim;
pub use gossip_protocol as protocol;
pub use gossip_rgraph as rgraph;
pub use gossip_runtime as runtime;
pub use gossip_stats as stats;
pub use gossip_topology as topology;

pub use gossip_model::scenario::{
    AnalyticBackend, Backend, EngineSpec, FailureSpec, FanoutSpec, LatencySpec, MembershipSpec,
    ProtocolSpec, Report, RuntimeSpec, Scenario, SweepCell, SweepGrid,
};
pub use gossip_model::{
    AdversarySpec, AdversaryStrategy, ArrivalSpec, BatchingSpec, BurstySpec, ChurnSpec,
    FanoutDistribution, FaultSpec, Gossip, ModelError, TrafficReport, TrafficSpec, ZoneFailureSpec,
};
pub use gossip_protocol::{NetSimBackend, ProtocolBackend};
pub use gossip_rgraph::GraphBackend;
pub use gossip_runtime::RuntimeBackend;
pub use gossip_topology::{OverlaySpec, PeerSelection, TopologySpec};

/// All five evaluation layers, boxed, in fidelity order: analytic,
/// graph, protocol, netsim, runtime (live execution over the channel
/// transport; use [`RuntimeBackend::tcp`] for real sockets).
pub fn all_backends() -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(AnalyticBackend),
        Box::new(GraphBackend),
        Box::new(ProtocolBackend),
        Box::new(NetSimBackend),
        Box::new(RuntimeBackend::channel()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_list_names() {
        let names: Vec<&str> = all_backends().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            ["analytic", "graph", "protocol", "netsim", "runtime"]
        );
    }
}
