//! Shared helpers for the cross-crate integration tests.
//!
//! The tests themselves live in `tests/tests/*.rs`; this library only
//! hosts small utilities they share.

/// Asserts `|a − b| < tol` with a readable message.
pub fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!(
        (a - b).abs() < tol,
        "{what}: {a} vs {b} (|Δ| = {} ≥ {tol})",
        (a - b).abs()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assert_close_accepts() {
        assert_close(1.0, 1.005, 0.01, "demo");
    }

    #[test]
    #[should_panic(expected = "demo")]
    fn assert_close_rejects() {
        assert_close(1.0, 1.1, 0.01, "demo");
    }
}
