//! End-to-end workflows a downstream user would run: design a gossip
//! deployment with the model, freeze the plan into a [`Scenario`], and
//! validate every promise against the executable backends.

use gossip::{AnalyticBackend, Backend, FanoutSpec, ProtocolBackend, Scenario};
use gossip_integration_tests::assert_close;
use gossip_model::distribution::{GeometricFanout, PoissonFanout};
use gossip_model::{design, poisson_case, success, Gossip, SitePercolation};
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;

#[test]
fn design_then_verify_poisson_plan() {
    // 1. Requirements: 1000 members, ≤ 25% failures, R ≥ 0.95.
    let n = 1000;
    let q = 0.75;
    let target = 0.95;
    // 2. Size the fanout with Eq. 12.
    let z = poisson_case::mean_fanout_for(target, q).unwrap();
    // 3. Freeze the plan into a scenario; the model's promise
    //    round-trips through the analytic backend.
    let plan = Scenario::new(n, FanoutSpec::poisson(z))
        .with_failure_ratio(q)
        .with_replications(15)
        .with_seed(11);
    let model = AnalyticBackend.evaluate(&plan).unwrap();
    assert_close(model.reliability, target, 1e-6, "Eq. 12 roundtrip");
    // 4. The executable protocol delivers the promise — same scenario,
    //    simulation backend.
    let sim = ProtocolBackend.evaluate(&plan).unwrap();
    assert_close(sim.reliability, target, 0.025, "simulated plan reliability");
}

#[test]
fn tolerated_failure_budget_is_sharp() {
    // max_tolerable_failure must be a boundary, not a bound with slack:
    // slightly fewer failures → above target; slightly more → below.
    let z = 5.0;
    let target = 0.9;
    let eps = poisson_case::max_tolerable_failure(z, target).unwrap();
    let q_min = 1.0 - eps;
    let at = |q: f64| {
        AnalyticBackend
            .evaluate(&Scenario::new(1000, FanoutSpec::poisson(z)).with_failure_ratio(q))
            .unwrap()
            .reliability
    };
    assert!(at((q_min + 0.02).min(1.0)) > target);
    assert!(at(q_min - 0.02) < target);
}

#[test]
fn general_design_matches_protocol_for_geometric() {
    // Design with the bisection machinery for a non-Poisson family, then
    // verify by simulation — the "arbitrary distribution" workflow.
    let q = 0.9;
    let target = 0.9;
    let mean = design::required_scale(GeometricFanout::with_mean, q, target, 0.5, 100.0).unwrap();
    let plan = Scenario::new(1500, FanoutSpec::geometric_with_mean(mean))
        .with_failure_ratio(q)
        .with_replications(15)
        .with_seed(21);
    let analytic = AnalyticBackend.evaluate(&plan).unwrap();
    assert_close(analytic.reliability, target, 1e-6, "design roundtrip");
    let sim = ProtocolBackend.evaluate(&plan).unwrap();
    // Geometric fanout-0 members are modeled as unreachable (undirected
    // model) but the directed protocol can still reach them — the
    // protocol beats the model here; assert the model is a lower bound
    // within tolerance (see DESIGN.md "directed vs undirected").
    assert!(
        sim.reliability > target - 0.03,
        "protocol below designed target: {} < {target}",
        sim.reliability
    );
}

#[test]
fn executions_plan_for_whole_group() {
    // Plan message repetitions so a member is near-certain to hear; then
    // measure across the protocol that the plan holds. (The empirical
    // observer measurement stays on the experiment harness — it is a
    // per-member Bernoulli process, not a per-scenario scalar.)
    let plan = Scenario::new(600, FanoutSpec::poisson(5.0)).with_failure_ratio(0.85);
    let r = AnalyticBackend.evaluate(&plan).unwrap().reliability;
    let t = success::required_executions(r * r, 0.999).unwrap(); // directed p ≈ R²
    let cfg = ExecutionConfig::new(600, 0.85);
    let measured =
        experiment::success_within_t(&cfg, &PoissonFanout::new(5.0), t as usize, 300, 31);
    assert!(
        measured >= 0.985,
        "planned t = {t} delivered only {measured}"
    );
    // The report's Eq. 5 value at that t bounds the measurement story.
    let report = AnalyticBackend.evaluate(&plan.with_executions(t)).unwrap();
    assert!(report.success_within_t >= 0.999);
}

#[test]
fn model_api_consistency() {
    // The façade, the scenario API, and the underlying pieces agree.
    let model = Gossip::new(2000, PoissonFanout::new(4.0), 0.9).unwrap();
    let direct = SitePercolation::new(&PoissonFanout::new(4.0), 0.9)
        .unwrap()
        .reliability()
        .unwrap();
    assert_close(
        model.reliability().unwrap(),
        direct,
        1e-12,
        "façade vs direct",
    );
    let closed = poisson_case::reliability(4.0, 0.9).unwrap();
    assert_close(direct, closed, 1e-8, "generic vs closed form");
    let scenario_r = AnalyticBackend
        .evaluate(&Scenario::new(2000, FanoutSpec::poisson(4.0)).with_failure_ratio(0.9))
        .unwrap()
        .reliability;
    assert_close(scenario_r, direct, 1e-12, "scenario API vs direct");
}
