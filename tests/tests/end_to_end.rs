//! End-to-end workflows a downstream user would run: design a gossip
//! deployment with the model, then validate every promise against the
//! executable system.

use gossip_integration_tests::assert_close;
use gossip_model::distribution::{GeometricFanout, PoissonFanout};
use gossip_model::{design, poisson_case, success, Gossip, SitePercolation};
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;

#[test]
fn design_then_verify_poisson_plan() {
    // 1. Requirements: 1000 members, ≤ 25% failures, R ≥ 0.95.
    let n = 1000;
    let q = 0.75;
    let target = 0.95;
    // 2. Size the fanout with Eq. 12.
    let z = poisson_case::mean_fanout_for(target, q).unwrap();
    // 3. The model's promise round-trips.
    let model = Gossip::new(n, PoissonFanout::new(z), q).unwrap();
    assert_close(model.reliability().unwrap(), target, 1e-6, "Eq. 12 roundtrip");
    // 4. The executable protocol delivers the promise.
    let cfg = ExecutionConfig::new(n, q);
    let sim = experiment::reliability_conditional(
        &cfg,
        &PoissonFanout::new(z),
        15,
        11,
        0.5 * target,
    );
    assert_close(sim.mean(), target, 0.025, "simulated plan reliability");
}

#[test]
fn tolerated_failure_budget_is_sharp() {
    // max_tolerable_failure must be a boundary, not a bound with slack:
    // slightly fewer failures → above target; slightly more → below.
    let z = 5.0;
    let target = 0.9;
    let eps = poisson_case::max_tolerable_failure(z, target).unwrap();
    let q_min = 1.0 - eps;
    let just_above = poisson_case::reliability(z, (q_min + 0.02).min(1.0)).unwrap();
    let just_below = poisson_case::reliability(z, q_min - 0.02).unwrap();
    assert!(just_above > target);
    assert!(just_below < target);
}

#[test]
fn general_design_matches_protocol_for_geometric() {
    // Design with the bisection machinery for a non-Poisson family, then
    // verify by simulation — the "arbitrary distribution" workflow.
    let q = 0.9;
    let target = 0.9;
    let mean = design::required_scale(GeometricFanout::with_mean, q, target, 0.5, 100.0).unwrap();
    let dist = GeometricFanout::with_mean(mean);
    let analytic = SitePercolation::new(&dist, q).unwrap().reliability().unwrap();
    assert_close(analytic, target, 1e-6, "design roundtrip");
    let cfg = ExecutionConfig::new(1500, q);
    let sim = experiment::reliability_conditional(&cfg, &dist, 15, 21, 0.5 * target);
    // Geometric fanout-0 members are modeled as unreachable (undirected
    // model) but the directed protocol can still reach them — the
    // protocol beats the model here; assert the model is a lower bound
    // within tolerance (see DESIGN.md "directed vs undirected").
    assert!(
        sim.mean() > target - 0.03,
        "protocol below designed target: {} < {target}",
        sim.mean()
    );
}

#[test]
fn executions_plan_for_whole_group() {
    // Plan message repetitions so a member is near-certain to hear; then
    // measure across the protocol that the plan holds.
    let model = Gossip::new(600, PoissonFanout::new(5.0), 0.85).unwrap();
    let r = model.reliability().unwrap();
    let t = success::required_executions(r * r, 0.999).unwrap(); // directed p ≈ R²
    let cfg = ExecutionConfig::new(600, 0.85);
    let measured =
        experiment::success_within_t(&cfg, &PoissonFanout::new(5.0), t as usize, 300, 31);
    assert!(
        measured >= 0.985,
        "planned t = {t} delivered only {measured}"
    );
}

#[test]
fn model_api_consistency() {
    // The façade agrees with the underlying pieces.
    let model = Gossip::new(2000, PoissonFanout::new(4.0), 0.9).unwrap();
    let direct = SitePercolation::new(&PoissonFanout::new(4.0), 0.9)
        .unwrap()
        .reliability()
        .unwrap();
    assert_close(model.reliability().unwrap(), direct, 1e-12, "façade vs direct");
    let closed = poisson_case::reliability(4.0, 0.9).unwrap();
    assert_close(direct, closed, 1e-8, "generic vs closed form");
}
