//! Analytic model vs the random-graph substrate: the giant component of
//! configuration-model graphs must match `1 − G0(u)` (paper §4), and the
//! directed gossip-graph reach must match it for Poisson fanouts.

use gossip_integration_tests::assert_close;
use gossip_model::distribution::{
    EmpiricalFanout, FixedFanout, GeometricFanout, PoissonFanout,
};
use gossip_model::SitePercolation;
use gossip_rgraph::percolation_sim::percolate_many;
use gossip_rgraph::reach::reach;
use gossip_rgraph::{ConfigurationModel, GossipGraphBuilder};
use gossip_stats::rng::Xoshiro256StarStar;

/// Giant component fraction on a percolated configuration-model graph
/// vs the analytic site-percolation prediction.
fn graph_vs_model<D: gossip_model::FanoutDistribution>(dist: &D, q: f64, n: usize, tol: f64) {
    let analytic = SitePercolation::new(dist, q)
        .expect("valid q")
        .reliability()
        .expect("solver converges");
    let g = ConfigurationModel::new(dist, n).generate(&mut Xoshiro256StarStar::new(11));
    let stats = percolate_many(&g, q, &[], 8, 0x600D);
    assert_close(
        stats.reliability.mean(),
        analytic,
        tol,
        &format!("giant component, {} q={q}", dist.label()),
    );
}

#[test]
fn poisson_giant_component_matches() {
    graph_vs_model(&PoissonFanout::new(4.0), 0.9, 20_000, 0.01);
    graph_vs_model(&PoissonFanout::new(4.0), 0.5, 20_000, 0.02);
    graph_vs_model(&PoissonFanout::new(2.0), 1.0, 20_000, 0.02);
}

#[test]
fn non_poisson_giant_components_match() {
    graph_vs_model(&FixedFanout::new(3), 0.8, 20_000, 0.02);
    graph_vs_model(&GeometricFanout::with_mean(4.0), 0.9, 20_000, 0.02);
    graph_vs_model(
        &EmpiricalFanout::new(&[0.0, 0.3, 0.3, 0.0, 0.4]),
        0.85,
        20_000,
        0.02,
    );
}

#[test]
fn subcritical_graphs_have_no_giant() {
    let dist = PoissonFanout::new(4.0);
    let g = ConfigurationModel::new(&dist, 20_000).generate(&mut Xoshiro256StarStar::new(3));
    let stats = percolate_many(&g, 0.15, &[], 5, 77); // q < q_c = 0.25
    assert!(
        stats.reliability.mean() < 0.02,
        "subcritical giant fraction {}",
        stats.reliability.mean()
    );
}

#[test]
fn directed_reach_matches_undirected_model_for_poisson() {
    // The Poisson duality: directed reach from the source (conditioned
    // on take-off) equals the undirected giant-component fraction.
    let dist = PoissonFanout::new(4.0);
    let q = 0.9;
    let analytic = SitePercolation::new(&dist, q)
        .unwrap()
        .reliability()
        .unwrap();
    let builder = GossipGraphBuilder::new(&dist, 20_000, q);
    let mut rng = Xoshiro256StarStar::new(5);
    let mut took_off = Vec::new();
    for _ in 0..10 {
        let g = builder.build(&mut rng);
        let out = reach(&g);
        let r = out.reliability();
        if r > 0.5 * analytic {
            took_off.push(r);
        }
    }
    assert!(took_off.len() >= 7, "most executions should take off");
    let mean = took_off.iter().sum::<f64>() / took_off.len() as f64;
    assert_close(mean, analytic, 0.01, "directed reach (conditioned)");
}

#[test]
fn takeoff_probability_matches_reliability_for_poisson() {
    // Second half of the duality: P(take-off) itself ≈ S.
    let dist = PoissonFanout::new(4.0);
    let q = 0.9;
    let analytic = SitePercolation::new(&dist, q)
        .unwrap()
        .reliability()
        .unwrap();
    let builder = GossipGraphBuilder::new(&dist, 4_000, q);
    let mut rng = Xoshiro256StarStar::new(9);
    let reps = 300;
    let mut takeoffs = 0;
    for _ in 0..reps {
        let g = builder.build(&mut rng);
        if reach(&g).reliability() > 0.5 * analytic {
            takeoffs += 1;
        }
    }
    let rate = takeoffs as f64 / reps as f64;
    assert_close(rate, analytic, 0.04, "take-off probability");
}

#[test]
fn mean_component_size_matches_eq2_subcritical() {
    // Eq. 2 check at graph level: mean size of the component containing
    // a random occupied node is related to ⟨s⟩; use the direct mean of
    // finite components against the analytic ⟨s⟩ formula's order.
    let dist = PoissonFanout::new(2.0);
    let q = 0.2; // q_c = 0.5, so comfortably subcritical
    let g = ConfigurationModel::new(&dist, 50_000).generate(&mut Xoshiro256StarStar::new(21));
    let stats = percolate_many(&g, q, &[], 5, 31);
    // No giant: largest component stays o(n).
    assert!(stats.reliability.mean() < 0.01);
    // Susceptibility (size-biased mean component size) should be finite
    // and in the ballpark of 1/(1 − q·z) = 1/0.6 scaled; just sanity:
    assert!(stats.susceptibility.mean() > 1.0);
    assert!(stats.susceptibility.mean() < 10.0);
}
