//! Analytic model vs the random-graph substrate, through the unified
//! scenario API: [`GraphBackend`] (giant components of percolated
//! configuration-model graphs) must match [`AnalyticBackend`]
//! (`1 − G0(u)`, paper §4) on the same [`Scenario`] values; the
//! directed gossip-graph duality checks stay on the rgraph internals
//! they actually probe.

use gossip::{AnalyticBackend, Backend, FanoutSpec, GraphBackend, Scenario};
use gossip_integration_tests::assert_close;
use gossip_model::distribution::PoissonFanout;
use gossip_model::SitePercolation;
use gossip_rgraph::reach::reach;
use gossip_rgraph::GossipGraphBuilder;
use gossip_stats::rng::Xoshiro256StarStar;

/// Evaluates one scenario by both layers and asserts agreement.
fn graph_vs_model(fanout: FanoutSpec, q: f64, n: usize, tol: f64) {
    let scenario = Scenario::new(n, fanout)
        .with_failure_ratio(q)
        .with_replications(8)
        .with_seed(0x600D);
    let analytic = AnalyticBackend.evaluate(&scenario).expect("valid scenario");
    let graph = GraphBackend.evaluate(&scenario).expect("valid scenario");
    assert_close(
        graph.reliability,
        analytic.reliability,
        tol,
        &format!("giant component, {}", scenario.label()),
    );
    // The two layers must also agree on the critical point exactly
    // (both derive it from G1'(1)).
    match (graph.critical_q, analytic.critical_q) {
        (Some(g), Some(a)) => assert_close(g, a, 1e-12, "critical q"),
        (g, a) => assert_eq!(g, a, "critical q presence"),
    }
}

#[test]
fn poisson_giant_component_matches() {
    graph_vs_model(FanoutSpec::poisson(4.0), 0.9, 20_000, 0.01);
    graph_vs_model(FanoutSpec::poisson(4.0), 0.5, 20_000, 0.02);
    graph_vs_model(FanoutSpec::poisson(2.0), 1.0, 20_000, 0.02);
}

#[test]
fn non_poisson_giant_components_match() {
    graph_vs_model(FanoutSpec::fixed(3), 0.8, 20_000, 0.02);
    graph_vs_model(FanoutSpec::geometric_with_mean(4.0), 0.9, 20_000, 0.02);
    graph_vs_model(
        FanoutSpec::Empirical {
            weights: vec![0.0, 0.3, 0.3, 0.0, 0.4],
        },
        0.85,
        20_000,
        0.02,
    );
}

#[test]
fn subcritical_graphs_have_no_giant() {
    let scenario = Scenario::new(20_000, FanoutSpec::poisson(4.0))
        .with_failure_ratio(0.15) // q < q_c = 0.25
        .with_replications(5)
        .with_seed(77);
    let report = GraphBackend.evaluate(&scenario).expect("valid scenario");
    assert!(
        report.reliability < 0.02,
        "subcritical giant fraction {}",
        report.reliability
    );
}

#[test]
fn directed_reach_matches_undirected_model_for_poisson() {
    // The Poisson duality: directed reach from the source (conditioned
    // on take-off) equals the undirected giant-component fraction.
    let dist = PoissonFanout::new(4.0);
    let q = 0.9;
    let analytic = SitePercolation::new(&dist, q)
        .unwrap()
        .reliability()
        .unwrap();
    let builder = GossipGraphBuilder::new(&dist, 20_000, q);
    let mut rng = Xoshiro256StarStar::new(5);
    let mut took_off = Vec::new();
    for _ in 0..10 {
        let g = builder.build(&mut rng);
        let out = reach(&g);
        let r = out.reliability();
        if r > 0.5 * analytic {
            took_off.push(r);
        }
    }
    assert!(took_off.len() >= 7, "most executions should take off");
    let mean = took_off.iter().sum::<f64>() / took_off.len() as f64;
    assert_close(mean, analytic, 0.01, "directed reach (conditioned)");
}

#[test]
fn takeoff_probability_matches_reliability_for_poisson() {
    // Second half of the duality: P(take-off) itself ≈ S.
    let dist = PoissonFanout::new(4.0);
    let q = 0.9;
    let analytic = SitePercolation::new(&dist, q)
        .unwrap()
        .reliability()
        .unwrap();
    let builder = GossipGraphBuilder::new(&dist, 4_000, q);
    let mut rng = Xoshiro256StarStar::new(9);
    let reps = 300;
    let mut takeoffs = 0;
    for _ in 0..reps {
        let g = builder.build(&mut rng);
        if reach(&g).reliability() > 0.5 * analytic {
            takeoffs += 1;
        }
    }
    let rate = takeoffs as f64 / reps as f64;
    assert_close(rate, analytic, 0.04, "take-off probability");
}

#[test]
fn graph_backend_loss_matches_lossy_model() {
    // Bond percolation through the scenario API: Po(6) with 25% loss
    // must land on the analytic site+bond prediction.
    let scenario = Scenario::new(20_000, FanoutSpec::poisson(6.0))
        .with_failure_ratio(0.9)
        .with_loss(0.25)
        .with_replications(6)
        .with_seed(31);
    let analytic = AnalyticBackend.evaluate(&scenario).expect("valid scenario");
    let graph = GraphBackend.evaluate(&scenario).expect("valid scenario");
    assert_close(
        graph.reliability,
        analytic.reliability,
        0.02,
        "bond+site percolation on graphs",
    );
}
