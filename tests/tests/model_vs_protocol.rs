//! Analytic model vs the full discrete-event protocol — the paper's
//! Figs. 4/5 agreement claim, spot-checked at representative points.

use gossip_integration_tests::assert_close;
use gossip_model::distribution::{FixedFanout, PoissonFanout};
use gossip_model::{poisson_case, SitePercolation};
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;

#[test]
fn fig4_point_q09_f4() {
    // The paper's headline point: n = 1000, Po(4), q = 0.9.
    let cfg = ExecutionConfig::new(1000, 0.9);
    let analytic = poisson_case::reliability(4.0, 0.9).unwrap();
    let stats =
        experiment::reliability_conditional(&cfg, &PoissonFanout::new(4.0), 20, 1, 0.5 * analytic);
    assert_close(stats.mean(), analytic, 0.02, "Fig.4 point {f=4, q=0.9}");
}

#[test]
fn fig5_point_larger_group_closer() {
    // §5.1: the model "works better in larger scale systems" — n = 5000
    // must sit tighter around the analysis than n = 1000 *on average*.
    let analytic = poisson_case::reliability(4.0, 0.8).unwrap();
    let dist = PoissonFanout::new(4.0);
    let err_at = |n: usize, seed: u64| {
        let cfg = ExecutionConfig::new(n, 0.8);
        let stats = experiment::reliability_conditional(&cfg, &dist, 12, seed, 0.5 * analytic);
        (stats.mean() - analytic).abs()
    };
    // Average over a few seeds to avoid a single-draw fluke.
    let e_small: f64 = (0..4).map(|s| err_at(1000, s)).sum::<f64>() / 4.0;
    let e_large: f64 = (0..4).map(|s| err_at(5000, s)).sum::<f64>() / 4.0;
    assert!(
        e_large < e_small + 0.01,
        "larger groups should track analysis at least as well: n=5000 err {e_large:.4} vs n=1000 err {e_small:.4}"
    );
    assert!(e_large < 0.02, "n=5000 error too large: {e_large}");
}

#[test]
fn equal_fq_products_equal_reliability() {
    // §5.2: {4.0, 0.9} and {6.0, 0.6} share f·q = 3.6 and hence R.
    let analytic = poisson_case::reliability(4.0, 0.9).unwrap();
    let cfg_a = ExecutionConfig::new(2000, 0.9);
    let cfg_b = ExecutionConfig::new(2000, 0.6);
    let a = experiment::reliability_conditional(
        &cfg_a,
        &PoissonFanout::new(4.0),
        15,
        2,
        0.5 * analytic,
    );
    let b = experiment::reliability_conditional(
        &cfg_b,
        &PoissonFanout::new(6.0),
        15,
        3,
        0.5 * analytic,
    );
    assert_close(a.mean(), b.mean(), 0.02, "equal f·q reliabilities");
    assert_close(a.mean(), analytic, 0.02, "both match Eq. 11");
}

#[test]
fn subcritical_protocol_execution_dies() {
    // Below q_c = 1/f nothing spreads (Fig. 4a's q = 0.1 rows).
    let cfg = ExecutionConfig::new(2000, 0.1);
    let stats = experiment::reliability(&cfg, &PoissonFanout::new(4.0), 10, 4);
    assert!(stats.mean() < 0.05, "subcritical mean {}", stats.mean());
}

#[test]
fn fixed_fanout_exposes_directed_vs_undirected_gap() {
    // A reproduction finding (documented in EXPERIMENTS.md): the paper's
    // *undirected* random-graph model distinguishes fanout shapes —
    // Fixed(4) at q = 0.9 predicts R ≈ 0.9999 — but the *directed*
    // message-passing protocol does not: a member receives iff some
    // infected member targets it, and with uniform target selection the
    // in-degree is ≈ Poisson(f·q) regardless of the out-degree (fanout)
    // shape. The protocol therefore lands at the Poisson value ≈ 0.9695
    // for ANY fanout distribution with mean 4. The paper validated only
    // with Poisson fanouts, where the two notions coincide (Eq. 11).
    let dist = FixedFanout::new(4);
    let undirected = SitePercolation::new(&dist, 0.9)
        .unwrap()
        .reliability()
        .unwrap();
    let poisson_universal = poisson_case::reliability(4.0, 0.9).unwrap();
    assert!(
        undirected - poisson_universal > 0.02,
        "the two predictions must differ for this test to bite"
    );
    let cfg = ExecutionConfig::new(2000, 0.9);
    let stats =
        experiment::reliability_conditional(&cfg, &dist, 15, 5, 0.5 * poisson_universal);
    // The live protocol tracks the Poisson-universal directed value…
    assert_close(
        stats.mean(),
        poisson_universal,
        0.02,
        "Fixed(4) protocol vs directed (Poisson-universal) prediction",
    );
    // …and sits measurably below the undirected model's promise.
    assert!(
        stats.mean() < undirected - 0.02,
        "protocol ({}) should undershoot the undirected prediction ({undirected})",
        stats.mean()
    );
}

#[test]
fn message_cost_equals_fanout_per_infected_member() {
    // Every infected member sends exactly its drawn fanout: mean
    // messages per reached member ≈ mean fanout (clamping aside).
    let cfg = ExecutionConfig::new(2000, 1.0);
    let outcomes = experiment::executions(&cfg, &PoissonFanout::new(4.0), 10, 6);
    for o in outcomes {
        if o.reliability() > 0.5 {
            let per_reached = o.messages_sent as f64 / o.nonfailed_reached as f64;
            assert_close(per_reached, 4.0, 0.15, "messages per infected member");
        }
    }
}
