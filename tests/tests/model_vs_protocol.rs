//! Analytic model vs the full discrete-event protocol — the paper's
//! Figs. 4/5 agreement claim, spot-checked at representative points
//! through the unified scenario API: the same [`Scenario`] evaluated by
//! [`AnalyticBackend`] and [`ProtocolBackend`].

use gossip::{AnalyticBackend, Backend, FanoutSpec, ProtocolBackend, Scenario};
use gossip_integration_tests::assert_close;

fn scenario(n: usize, z: f64, q: f64, reps: usize, seed: u64) -> Scenario {
    Scenario::new(n, FanoutSpec::poisson(z))
        .with_failure_ratio(q)
        .with_replications(reps)
        .with_seed(seed)
}

#[test]
fn fig4_point_q09_f4() {
    // The paper's headline point: n = 1000, Po(4), q = 0.9.
    let point = scenario(1000, 4.0, 0.9, 20, 1);
    let analytic = AnalyticBackend.evaluate(&point).unwrap();
    let simulated = ProtocolBackend.evaluate(&point).unwrap();
    assert_close(
        simulated.reliability,
        analytic.reliability,
        0.02,
        "Fig.4 point {f=4, q=0.9}",
    );
    assert_eq!(simulated.replications, 20);
}

#[test]
fn fig5_point_larger_group_closer() {
    // §5.1: the model "works better in larger scale systems" — n = 5000
    // must sit tighter around the analysis than n = 1000 *on average*.
    let analytic = AnalyticBackend
        .evaluate(&scenario(1000, 4.0, 0.8, 1, 0))
        .unwrap()
        .reliability;
    let err_at = |n: usize, seed: u64| {
        let report = ProtocolBackend
            .evaluate(&scenario(n, 4.0, 0.8, 12, seed))
            .unwrap();
        (report.reliability - analytic).abs()
    };
    // Average over a few seeds to avoid a single-draw fluke.
    let e_small: f64 = (0..4).map(|s| err_at(1000, s)).sum::<f64>() / 4.0;
    let e_large: f64 = (0..4).map(|s| err_at(5000, s)).sum::<f64>() / 4.0;
    assert!(
        e_large < e_small + 0.01,
        "larger groups should track analysis at least as well: n=5000 err {e_large:.4} vs n=1000 err {e_small:.4}"
    );
    assert!(e_large < 0.02, "n=5000 error too large: {e_large}");
}

#[test]
fn equal_fq_products_equal_reliability() {
    // §5.2: {4.0, 0.9} and {6.0, 0.6} share f·q = 3.6 and hence R.
    let a = ProtocolBackend
        .evaluate(&scenario(2000, 4.0, 0.9, 15, 2))
        .unwrap();
    let b = ProtocolBackend
        .evaluate(&scenario(2000, 6.0, 0.6, 15, 3))
        .unwrap();
    let analytic = AnalyticBackend
        .evaluate(&scenario(2000, 4.0, 0.9, 1, 0))
        .unwrap();
    assert_close(
        a.reliability,
        b.reliability,
        0.02,
        "equal f·q reliabilities",
    );
    assert_close(
        a.reliability,
        analytic.reliability,
        0.02,
        "both match Eq. 11",
    );
}

#[test]
fn subcritical_protocol_execution_dies() {
    // Below q_c = 1/f nothing spreads (Fig. 4a's q = 0.1 rows). The
    // subcritical report has no take-off/fizzle split, so the
    // conditional mean equals the raw mean.
    let report = ProtocolBackend
        .evaluate(&scenario(2000, 4.0, 0.1, 10, 4))
        .unwrap();
    assert!(
        report.reliability_raw.unwrap() < 0.05,
        "subcritical raw mean {}",
        report.reliability_raw.unwrap()
    );
}

#[test]
fn fixed_fanout_exposes_directed_vs_undirected_gap() {
    // A reproduction finding (documented in EXPERIMENTS.md): the paper's
    // *undirected* random-graph model distinguishes fanout shapes —
    // Fixed(4) at q = 0.9 predicts R ≈ 0.9999 — but the *directed*
    // message-passing protocol does not: a member receives iff some
    // infected member targets it, and with uniform target selection the
    // in-degree is ≈ Poisson(f·q) regardless of the out-degree (fanout)
    // shape. The protocol therefore lands at the Poisson value ≈ 0.9695
    // for ANY fanout distribution with mean 4. The paper validated only
    // with Poisson fanouts, where the two notions coincide (Eq. 11).
    let fixed = Scenario::new(2000, FanoutSpec::fixed(4))
        .with_failure_ratio(0.9)
        .with_replications(15)
        .with_seed(5);
    let undirected = AnalyticBackend.evaluate(&fixed).unwrap().reliability;
    let poisson_universal = AnalyticBackend
        .evaluate(&scenario(2000, 4.0, 0.9, 1, 0))
        .unwrap()
        .reliability;
    assert!(
        undirected - poisson_universal > 0.02,
        "the two predictions must differ for this test to bite"
    );
    let simulated = ProtocolBackend.evaluate(&fixed).unwrap();
    // The live protocol tracks the Poisson-universal directed value…
    assert_close(
        simulated.reliability,
        poisson_universal,
        0.02,
        "Fixed(4) protocol vs directed (Poisson-universal) prediction",
    );
    // …and sits measurably below the undirected model's promise.
    assert!(
        simulated.reliability < undirected - 0.02,
        "protocol ({}) should undershoot the undirected prediction ({undirected})",
        simulated.reliability
    );
}

#[test]
fn message_cost_equals_fanout_per_infected_member() {
    // Every infected member sends exactly its drawn fanout: mean
    // messages per nonfailed member ≈ R · mean fanout, which is what
    // the analytic backend prices.
    let point = scenario(2000, 4.0, 1.0, 10, 6);
    let analytic = AnalyticBackend.evaluate(&point).unwrap();
    let simulated = ProtocolBackend.evaluate(&point).unwrap();
    assert_close(
        simulated.messages_per_member.unwrap(),
        analytic.messages_per_member.unwrap(),
        0.2,
        "messages per nonfailed member",
    );
}
