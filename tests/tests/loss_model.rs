//! The message-loss extension (bond percolation) against the simulator's
//! network loss model — theory the paper didn't include, validated
//! end to end.

use gossip_integration_tests::assert_close;
use gossip_model::distribution::PoissonFanout;
use gossip_model::loss::{poisson_reliability_with_loss, LossyGossip};
use gossip_netsim::{LatencyModel, NetworkConfig};
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;

fn lossy_cfg(n: usize, q: f64, loss: f64) -> ExecutionConfig {
    ExecutionConfig::new(n, q)
        .with_network(NetworkConfig::new(LatencyModel::constant_millis(1)).with_loss(loss))
}

#[test]
fn protocol_under_loss_matches_bond_percolation() {
    let (f, q, loss) = (5.0, 0.9, 0.2);
    let analytic = poisson_reliability_with_loss(f, q, loss).unwrap();
    let cfg = lossy_cfg(1500, q, loss);
    let stats =
        experiment::reliability_conditional(&cfg, &PoissonFanout::new(f), 15, 77, 0.5 * analytic);
    assert_close(
        stats.mean(),
        analytic,
        0.02,
        "lossy protocol vs bond-percolation model",
    );
}

#[test]
fn loss_equivalent_to_thinned_fanout() {
    // Poisson: losing 25% of messages ≡ gossiping with 75% of the fanout.
    let q = 0.9;
    let analytic = poisson_reliability_with_loss(6.0, q, 0.25).unwrap();
    let lossy = experiment::reliability_conditional(
        &lossy_cfg(1500, q, 0.25),
        &PoissonFanout::new(6.0),
        15,
        5,
        0.5 * analytic,
    );
    let thinned = experiment::reliability_conditional(
        &ExecutionConfig::new(1500, q),
        &PoissonFanout::new(4.5),
        15,
        6,
        0.5 * analytic,
    );
    assert_close(
        lossy.mean(),
        thinned.mean(),
        0.025,
        "loss ≡ fanout thinning",
    );
}

#[test]
fn heavy_loss_kills_gossip_at_the_predicted_point() {
    // Po(4), q = 0.9: critical loss = 1 − 1/(q·z) ≈ 0.722.
    let d = PoissonFanout::new(4.0);
    let m = LossyGossip::new(&d, 0.9, 0.0).unwrap();
    let loss_crit = m.critical_loss().unwrap();
    assert_close(loss_crit, 1.0 - 1.0 / 3.6, 1e-12, "critical loss");

    let below = experiment::reliability(&lossy_cfg(1500, 0.9, loss_crit + 0.1), &d, 8, 9);
    assert!(below.mean() < 0.05, "past critical loss: {}", below.mean());
    let above = experiment::reliability(&lossy_cfg(1500, 0.9, loss_crit - 0.25), &d, 8, 10);
    assert!(above.mean() > 0.2, "below critical loss: {}", above.mean());
}
