//! Reproducibility: every stochastic pipeline in the workspace is a pure
//! function of its seed — across reruns, and independent of thread
//! scheduling in the parallel Monte-Carlo.

use gossip_model::distribution::PoissonFanout;
use gossip_protocol::engine::{run_push, ExecutionConfig, MembershipKind};
use gossip_protocol::experiment;
use gossip_rgraph::reach::reach;
use gossip_rgraph::{ConfigurationModel, GossipGraphBuilder};
use gossip_stats::rng::Xoshiro256StarStar;

#[test]
fn executions_bitwise_reproducible() {
    let cfg = ExecutionConfig::new(800, 0.8);
    let dist = PoissonFanout::new(4.0);
    let a = run_push(&cfg, &dist, 0xABCD).unwrap();
    let b = run_push(&cfg, &dist, 0xABCD).unwrap();
    assert_eq!(a, b);
}

#[test]
fn experiment_reproducible_across_parallel_runs() {
    // parallel_map distributes replications over threads; the aggregate
    // must not depend on scheduling.
    let cfg = ExecutionConfig::new(500, 0.9);
    let dist = PoissonFanout::new(3.0);
    let a = experiment::reliability(&cfg, &dist, 16, 7);
    let b = experiment::reliability(&cfg, &dist, 16, 7);
    assert_eq!(a.mean(), b.mean());
    assert_eq!(a.variance(), b.variance());
    assert_eq!(a.count(), b.count());
}

#[test]
fn histogram_experiment_reproducible() {
    let cfg = ExecutionConfig::new(400, 0.9);
    let dist = PoissonFanout::new(4.0);
    let a = experiment::member_receipt_distribution(&cfg, &dist, 5, 12, 3);
    let b = experiment::member_receipt_distribution(&cfg, &dist, 5, 12, 3);
    assert_eq!(a.counts(), b.counts());
}

#[test]
fn different_seeds_differ() {
    let cfg = ExecutionConfig::new(800, 0.8);
    let dist = PoissonFanout::new(4.0);
    let a = run_push(&cfg, &dist, 1).unwrap();
    let b = run_push(&cfg, &dist, 2).unwrap();
    assert_ne!(a, b, "distinct seeds should give distinct executions");
}

#[test]
fn graphs_reproducible() {
    let dist = PoissonFanout::new(4.0);
    let g1 = ConfigurationModel::new(&dist, 2000).generate(&mut Xoshiro256StarStar::new(5));
    let g2 = ConfigurationModel::new(&dist, 2000).generate(&mut Xoshiro256StarStar::new(5));
    assert_eq!(g1.edge_count(), g2.edge_count());
    for v in 0..2000u32 {
        assert_eq!(g1.neighbors(v), g2.neighbors(v));
    }
    let gg1 = GossipGraphBuilder::new(&dist, 2000, 0.9).build(&mut Xoshiro256StarStar::new(6));
    let gg2 = GossipGraphBuilder::new(&dist, 2000, 0.9).build(&mut Xoshiro256StarStar::new(6));
    assert_eq!(reach(&gg1).nonfailed_reached, reach(&gg2).nonfailed_reached);
}

#[test]
fn scamp_execution_reproducible() {
    let cfg = ExecutionConfig::new(600, 0.9).with_membership(MembershipKind::Scamp { c: 2 });
    let dist = PoissonFanout::new(5.0);
    let a = run_push(&cfg, &dist, 44).unwrap();
    let b = run_push(&cfg, &dist, 44).unwrap();
    assert_eq!(a, b);
}
