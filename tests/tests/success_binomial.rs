//! The success-of-gossiping calculus end to end (paper §4.2(2), §5.2,
//! Figs. 6/7): the per-member receipt count follows a binomial law, and
//! Eq. 5/6 predictions hold against the measured protocol.

use gossip_integration_tests::assert_close;
use gossip_model::distribution::PoissonFanout;
use gossip_model::{poisson_case, success};
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;
use gossip_stats::binomial::Binomial;
use gossip_stats::gof::{chi_square_pvalue, total_variation_distance};

/// Group size for these tests: large enough for clean percolation,
/// small enough for debug-mode CI.
const N: usize = 800;

#[test]
fn member_receipt_count_is_binomial() {
    // X = receipts among t executions ~ B(t, p) with p ≈ S² (directed:
    // take-off × membership in the reachable component).
    let (f, q) = (4.0, 0.9);
    let s = poisson_case::reliability(f, q).unwrap();
    let cfg = ExecutionConfig::new(N, q);
    let execs = 10;
    let sims = 60;
    let hist =
        experiment::member_receipt_distribution(&cfg, &PoissonFanout::new(f), execs, sims, 42);
    assert_eq!(hist.total(), sims as u64);

    let directed = Binomial::new(execs as u64, s * s);
    let outcome = chi_square_pvalue(hist.counts(), &directed.pmf_vector(), 4.0);
    assert!(
        outcome.p_value > 1e-3,
        "X should fit B({execs}, S²): chi² p = {} (stat {})",
        outcome.p_value,
        outcome.statistic
    );
    // And the paper's B(t, S) line is the upper envelope: TV distance to
    // B(t, S²) must not exceed TV to B(t, S) by much (finite-size slack).
    let paper = Binomial::new(execs as u64, s);
    let tv_directed = total_variation_distance(&hist.pmf_vector(), &directed.pmf_vector());
    let tv_paper = total_variation_distance(&hist.pmf_vector(), &paper.pmf_vector());
    assert!(
        tv_directed < tv_paper + 0.05,
        "directed refinement should fit no worse: {tv_directed} vs {tv_paper}"
    );
}

#[test]
fn eq5_success_probability_within_t() {
    let (f, q) = (4.0, 0.9);
    let cfg = ExecutionConfig::new(N, q);
    let dist = PoissonFanout::new(f);
    let s = poisson_case::reliability(f, q).unwrap();
    // Per-member per-execution receipt probability is ≈ S² (directed).
    let p = s * s;
    for t in [1usize, 2, 4] {
        let measured = experiment::success_within_t(&cfg, &dist, t, 150, 7 + t as u64);
        let predicted = success::success_probability(p, t as u32);
        assert_close(
            measured,
            predicted,
            0.08,
            &format!("Pr(reached within t={t})"),
        );
    }
}

#[test]
fn eq6_required_executions_suffice_in_practice() {
    // Plan t with Eq. 6 (using the directed per-member probability),
    // then check the plan empirically beats the target.
    let (f, q) = (4.0, 0.9);
    let s = poisson_case::reliability(f, q).unwrap();
    let p = s * s;
    let target = 0.999;
    let t = success::required_executions(p, target).unwrap();
    let cfg = ExecutionConfig::new(N, q);
    let measured = experiment::success_within_t(&cfg, &PoissonFanout::new(f), t as usize, 400, 99);
    assert!(
        measured >= target - 0.02,
        "t = {t} executions delivered only {measured}"
    );
}

#[test]
fn paper_worked_example_eq6() {
    // §5.2: p_r = 0.967 (paper's rounded R), p_s = 0.999 → t = 3.
    assert_eq!(success::required_executions(0.967, 0.999).unwrap(), 3);
    // With the directed per-member probability S² ≈ 0.94, t = 3 as well —
    // the paper's recommendation is robust to the refinement.
    let s = poisson_case::reliability(4.0, 0.9).unwrap();
    assert_eq!(success::required_executions(s * s, 0.999).unwrap(), 3);
}

#[test]
fn strict_group_success_is_rare_at_scale() {
    // The metric-definition finding: with ≈720 nonfailed members and
    // R < 1, P(every member reached in one execution) ≈ 0 — the strict
    // reading of §4.2's S(q, P, t) cannot be what Figs. 6/7 plot.
    let cfg = ExecutionConfig::new(N, 0.9);
    let hist = experiment::success_count_distribution(&cfg, &PoissonFanout::new(4.0), 10, 10, 3);
    assert!(
        hist.mean() < 1.0,
        "strict success should be rare: mean {}",
        hist.mean()
    );
}
