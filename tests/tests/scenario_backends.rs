//! The acceptance tests of the unified scenario API:
//!
//! 1. One [`Scenario`] value, evaluated by all five [`Backend`] impls —
//!    analytic, graph, protocol, netsim, and the live actor-per-node
//!    runtime — yields reports whose reliabilities agree within
//!    Monte-Carlo tolerance: on the paper's Fig. 4 operating points
//!    (Poisson fanout, n = 1000, q ∈ {0.5, 0.7, 0.9}), on a (z, q)
//!    grid straddling the critical point `q_c = 1/z`, and (for the
//!    runtime) over real loopback TCP sockets.
//! 2. `Scenario` round-trips through serde (JSON text).

use gossip::{
    all_backends, AnalyticBackend, Backend, FailureSpec, FanoutSpec, LatencySpec, MembershipSpec,
    OverlaySpec, ProtocolSpec, Report, Scenario, SweepGrid, TopologySpec,
};
use gossip_integration_tests::assert_close;

/// Evaluates a scenario on every backend and checks pairwise agreement
/// against the analytic value within `tol`.
fn assert_backends_agree(scenario: &Scenario, tol: f64) {
    let analytic = AnalyticBackend.evaluate(scenario).expect("analytic prices");
    for backend in all_backends() {
        let report = backend.evaluate(scenario).expect("backend evaluates");
        assert_close(
            report.reliability,
            analytic.reliability,
            tol,
            &format!("{} vs analytic on {}", report.backend, scenario.label()),
        );
        // Every layer derives the same critical point from P.
        if let (Some(a), Some(b)) = (analytic.critical_q, report.critical_q) {
            assert_close(a, b, 1e-12, "critical q across backends");
        }
    }
}

#[test]
fn fig4_operating_points_agree_across_all_five_backends() {
    // The ISSUE acceptance grid: Poisson fanout, n = 1000,
    // q ∈ {0.5, 0.7, 0.9}. Mean fanout 6 keeps every point clearly
    // supercritical (q_c = 1/6) at Monte-Carlo-resolvable reliability.
    for &q in &[0.5, 0.7, 0.9] {
        let scenario = Scenario::new(1000, FanoutSpec::poisson(6.0))
            .with_failure_ratio(q)
            .with_replications(30)
            .with_seed(0xF164);
        assert_backends_agree(&scenario, 0.03);
    }
}

#[test]
fn fig4_headline_point_agrees_over_real_tcp_sockets() {
    // The live runtime once more, this time over genuine loopback TCP
    // with line-delimited JSON frames. One listener per member bounds
    // n; relays race through the kernel, so allow a little extra
    // Monte-Carlo slack on top of the finite-size effect at n = 256.
    let scenario = Scenario::new(256, FanoutSpec::poisson(6.0))
        .with_failure_ratio(0.9)
        .with_replications(8)
        .with_seed(0xF164);
    let analytic = AnalyticBackend
        .evaluate(&scenario)
        .expect("analytic prices");
    let live = gossip::RuntimeBackend::tcp()
        .evaluate(&scenario)
        .expect("tcp runtime evaluates");
    assert_eq!(live.transport.as_deref(), Some("tcp"));
    assert_close(
        live.reliability,
        analytic.reliability,
        0.06,
        "runtime-tcp vs analytic on the Fig. 4 headline point",
    );
}

#[test]
fn poisson_grid_straddling_critical_point_agrees() {
    // z = 4 → q_c = 0.25. The grid crosses it: two subcritical rows
    // (reliability 0 everywhere) and two supercritical rows. n = 5000
    // keeps the near-critical q = 0.2 row's finite-size largest
    // component safely below the subcritical threshold.
    let grid = SweepGrid::new(
        Scenario::new(5000, FanoutSpec::poisson(4.0))
            .with_replications(25)
            .with_seed(0xC717),
    )
    .over_failure_ratios(&[0.1, 0.2, 0.5, 0.9]);

    for backend in all_backends() {
        let cells = grid.run(&*backend);
        for cell in &cells {
            let report = cell.report.as_ref().expect("grid cell evaluates");
            let analytic = AnalyticBackend
                .evaluate(&cell.scenario)
                .expect("analytic prices");
            let q = cell.scenario.q().unwrap();
            if q < 0.25 {
                // Subcritical: no giant component. The protocol layers
                // still reach a handful of neighbours of the immortal
                // source, so allow finite-size slack.
                assert!(
                    report.reliability < 0.05,
                    "{} at q={q}: subcritical reliability {}",
                    report.backend,
                    report.reliability
                );
            } else {
                assert_close(
                    report.reliability,
                    analytic.reliability,
                    0.03,
                    &format!("{} at q={q}", report.backend),
                );
            }
        }
    }
}

#[test]
fn structured_topologies_agree_across_supporting_backends() {
    // Two structured operating points: a ring thickened with enough
    // shortcuts to stay supercritical, and a Watts–Strogatz small
    // world. Every layer that samples the overlay — graph percolation,
    // the Monte-Carlo protocol, the discrete-event simulator, and the
    // live runtime — must land on the same reliability; the analytic
    // layer must decline with a typed error (its generating functions
    // assume the complete graph).
    for overlay in [
        OverlaySpec::Ring { shortcuts: 2000 },
        OverlaySpec::WattsStrogatz { k: 8, beta: 0.2 },
    ] {
        let scenario = Scenario::new(1000, FanoutSpec::poisson(4.0))
            .with_failure_ratio(0.9)
            .with_topology(TopologySpec::new(overlay))
            .with_replications(30)
            .with_seed(0x7090);
        let mut reports: Vec<Report> = Vec::new();
        for backend in all_backends() {
            match backend.evaluate(&scenario) {
                Ok(report) => {
                    assert_eq!(
                        report.topology,
                        scenario.topology_label(),
                        "{} must label the overlay it ran on",
                        report.backend
                    );
                    reports.push(report);
                }
                Err(gossip::ModelError::Unsupported { backend, what }) => {
                    assert_eq!(backend, "analytic", "only the analytic layer may decline");
                    assert!(!what.is_empty(), "the refusal must explain itself");
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert_eq!(
            reports.len(),
            4,
            "graph, protocol, netsim and runtime all run structured overlays"
        );
        let reference = reports[0].reliability;
        for report in &reports[1..] {
            assert_close(
                report.reliability,
                reference,
                0.05,
                &format!("{} vs graph on {}", report.backend, scenario.label()),
            );
        }
    }
}

#[test]
fn flat_engine_agrees_on_the_fig4_points() {
    use gossip::{EngineSpec, GraphBackend, ProtocolBackend};
    // The million-node engine, forced on at Fig. 4 scale: the flat
    // bitset/percolation kernels must land on the classic engines'
    // reliabilities at every operating point, on both Monte-Carlo
    // backends that have a flat path.
    for &q in &[0.5, 0.7, 0.9] {
        let scenario = Scenario::new(1000, FanoutSpec::poisson(6.0))
            .with_failure_ratio(q)
            .with_replications(30)
            .with_seed(0xF164);
        let flat = scenario.clone().with_engine(EngineSpec::Flat);
        let pairs = [
            (
                GraphBackend.evaluate(&scenario).expect("classic graph"),
                GraphBackend.evaluate(&flat).expect("flat graph"),
            ),
            (
                ProtocolBackend
                    .evaluate(&scenario)
                    .expect("classic protocol"),
                ProtocolBackend.evaluate(&flat).expect("flat protocol"),
            ),
        ];
        for (classic, flat) in &pairs {
            assert_close(
                flat.reliability,
                classic.reliability,
                0.03,
                &format!("flat vs classic {} at q={q}", classic.backend),
            );
            assert_eq!(
                flat.scenario, classic.scenario,
                "the engine knob must not leak into the scenario label"
            );
        }
    }
}

#[test]
fn flat_engine_straddles_the_critical_point() {
    use gossip::{EngineSpec, GraphBackend, ProtocolBackend};
    // z = 4 → q_c = 0.25; same grid as the classic straddle test, run
    // through the flat kernels. Subcritical rows collapse, supercritical
    // rows match the generating-function curve.
    for &q in &[0.1, 0.2, 0.5, 0.9] {
        let scenario = Scenario::new(5000, FanoutSpec::poisson(4.0))
            .with_failure_ratio(q)
            .with_replications(25)
            .with_seed(0xC717)
            .with_engine(EngineSpec::Flat);
        let analytic = AnalyticBackend
            .evaluate(&scenario)
            .expect("analytic prices");
        let backends: [&dyn Backend; 2] = [&GraphBackend, &ProtocolBackend];
        for backend in backends {
            let report = backend.evaluate(&scenario).expect("flat backend evaluates");
            if q < 0.25 {
                assert!(
                    report.reliability < 0.05,
                    "flat {} at q={q}: subcritical reliability {}",
                    report.backend,
                    report.reliability
                );
            } else {
                assert_close(
                    report.reliability,
                    analytic.reliability,
                    0.03,
                    &format!("flat {} at q={q}", report.backend),
                );
            }
        }
    }
}

#[test]
fn flat_engine_refusals_and_auto_fallback() {
    use gossip::{EngineSpec, GraphBackend, NetSimBackend, ProtocolBackend, RuntimeBackend};
    // Event-driven backends have no flat path: pinning `EngineSpec::Flat`
    // must be a typed refusal that names the backend, never a panic or a
    // silent classic run.
    let scenario = Scenario::new(400, FanoutSpec::poisson(6.0))
        .with_failure_ratio(0.9)
        .with_replications(4)
        .with_engine(EngineSpec::Flat);
    for (result, expect) in [
        (NetSimBackend.evaluate(&scenario), "netsim"),
        (RuntimeBackend::channel().evaluate(&scenario), "runtime"),
    ] {
        match result {
            Err(gossip::ModelError::Unsupported { backend, what }) => {
                assert_eq!(backend, expect);
                assert!(what.contains("flat"), "{expect} must name the flat engine");
            }
            other => panic!("{expect} must refuse the flat engine, got {other:?}"),
        }
    }
    // `Auto` below the size threshold is the classic engine, to the byte.
    let auto = scenario.clone().with_engine(EngineSpec::Auto);
    let classic = scenario.with_engine(EngineSpec::Classic);
    assert_eq!(
        GraphBackend.evaluate(&auto).unwrap(),
        GraphBackend.evaluate(&classic).unwrap()
    );
    assert_eq!(
        ProtocolBackend.evaluate(&auto).unwrap(),
        ProtocolBackend.evaluate(&classic).unwrap()
    );
}

#[test]
fn uncontended_stream_agrees_across_stream_backends() {
    use gossip::{NetSimBackend, ProtocolBackend, RuntimeBackend, TrafficSpec};
    // A k = 4 stream with no bandwidth cap: offered load never exceeds
    // the (absent) budget, so every message is an independent execution
    // of the paper's protocol. The analytic layer must reduce it to the
    // single-message closed form exactly; protocol, netsim, and the
    // live runtime must land on that value per message; the static
    // percolation census must refuse with a typed error.
    let base = Scenario::new(1000, FanoutSpec::poisson(6.0))
        .with_failure_ratio(0.9)
        .with_replications(20)
        .with_seed(0x7AFF);
    let stream = base.clone().with_traffic(TrafficSpec::stream(4));
    let single = AnalyticBackend.evaluate(&base).expect("closed form");
    let analytic = AnalyticBackend
        .evaluate(&stream)
        .expect("uncontended streams reduce to k closed-form evaluations");
    let reduced = analytic.traffic.as_ref().expect("analytic traffic section");
    assert_close(
        reduced.reliability_mean,
        single.reliability,
        1e-12,
        "analytic per-message stream reliability vs the closed form",
    );
    assert_close(
        reduced.reliability_min,
        reduced.reliability_mean,
        1e-12,
        "i.i.d. messages share one closed-form value",
    );

    let reports = [
        ProtocolBackend.evaluate(&stream).expect("protocol streams"),
        NetSimBackend.evaluate(&stream).expect("netsim streams"),
        RuntimeBackend::channel()
            .evaluate(&stream)
            .expect("runtime streams"),
    ];
    for report in &reports {
        let traffic = report
            .traffic
            .as_ref()
            .expect("stream backends report traffic");
        assert_eq!(traffic.messages, 4);
        assert_close(
            traffic.reliability_mean,
            single.reliability,
            0.05,
            &format!("{} stream vs the closed form", report.backend),
        );
        assert!(
            traffic.reliability_min >= traffic.reliability_mean - 0.1,
            "{}: uncontended messages are i.i.d. (min {} vs mean {})",
            report.backend,
            traffic.reliability_min,
            traffic.reliability_mean
        );
    }

    match gossip::GraphBackend.evaluate(&stream) {
        Err(gossip::ModelError::Unsupported { backend, what }) => {
            assert_eq!(backend, "graph");
            assert!(
                what.contains("traffic"),
                "graph refusal must name traffic: {what}"
            );
        }
        other => panic!("graph must refuse streams, got {other:?}"),
    }
}

#[test]
fn scenario_serde_roundtrip() {
    // A scenario exercising every spec enum, including a recursive
    // mixture, a crash schedule, and non-default everything.
    let scenario = Scenario::new(
        5000,
        FanoutSpec::Mixture {
            components: vec![
                (0.7, FanoutSpec::fixed(2)),
                (0.2, FanoutSpec::poisson(8.0)),
                (
                    0.1,
                    FanoutSpec::PowerLaw {
                        alpha: 2.5,
                        kmin: 1,
                        kmax: 64,
                    },
                ),
            ],
        },
    )
    .with_failure(FailureSpec::Schedule {
        crashes: vec![(1_000_000, 3), (2_000_000, 77)],
    })
    .with_loss(0.125)
    .with_latency(LatencySpec::ExponentialMillis { mean_ms: 15 })
    .with_membership(MembershipSpec::Scamp { c: 3 })
    .with_protocol(ProtocolSpec::PushPull)
    .with_replications(42)
    .with_executions(7)
    .with_seed(0xDEAD_BEEF)
    .with_traffic(
        gossip::TrafficSpec::stream(16)
            .with_arrival(gossip::ArrivalSpec::Poisson {
                rate_per_round: 0.5,
            })
            .with_bandwidth(4)
            .with_queue_capacity(64)
            .with_piggyback(8),
    );

    let text = serde::json::to_string(&scenario).expect("serializes");
    let back: Scenario = serde::json::from_str(&text).expect("deserializes");
    assert_eq!(back, scenario, "JSON round-trip must be lossless");

    // Field spot-checks on the wire format: it is real JSON with the
    // field names intact.
    assert!(text.contains("\"Mixture\""));
    assert!(text.contains("\"crashes\""));
    assert!(text.contains("\"loss\":0.125"));
    assert!(text.contains("\"traffic\":{"));
    assert!(text.contains("\"rate_per_round\":0.5"));

    // Reports round-trip too.
    let simple = Scenario::new(1000, FanoutSpec::poisson(4.0)).with_failure_ratio(0.9);
    let report = AnalyticBackend.evaluate(&simple).unwrap();
    let report_text = serde::json::to_string(&report).expect("report serializes");
    let report_back: Report = serde::json::from_str(&report_text).expect("report deserializes");
    assert_eq!(report_back, report);

    // A structured-topology report keeps its overlay label through the
    // wire, alongside the transport field.
    let structured = Scenario::new(300, FanoutSpec::poisson(5.0))
        .with_failure_ratio(0.9)
        .with_topology(TopologySpec::new(OverlaySpec::Clustered {
            zones: 3,
            intra: 5,
            inter: 1,
        }))
        .with_replications(5);
    let scen_text = serde::json::to_string(&structured).expect("structured scenario serializes");
    let scen_back: Scenario = serde::json::from_str(&scen_text).expect("deserializes");
    assert_eq!(scen_back, structured);
    assert!(scen_text.contains("\"Clustered\""));
    let report = gossip::GraphBackend.evaluate(&structured).unwrap();
    assert_eq!(
        report.topology.as_deref(),
        Some("clustered(z=3,intra=5,inter=1)/neigh")
    );
    let text = serde::json::to_string(&report).expect("structured report serializes");
    assert!(text.contains("\"topology\":"));
    let back: Report = serde::json::from_str(&text).expect("structured report deserializes");
    assert_eq!(back, report, "topology label must survive the round-trip");
}

#[test]
fn churn_agrees_across_the_dynamic_backends() {
    use gossip::{ChurnSpec, FaultSpec, NetSimBackend, ProtocolBackend, RuntimeBackend};
    // Symmetric churn at 30 members/s over a 200 ms horizon: ~6 joins
    // and ~6 leaves against n = 600. Every backend with an event clock
    // — protocol, netsim, runtime — must price the same penalty
    // (joiners arriving after quiescence count in the denominator but
    // go unreached); the static layers must decline with a typed error.
    let scenario = Scenario::new(600, FanoutSpec::poisson(6.0))
        .with_failure_ratio(0.9)
        .with_replications(20)
        .with_seed(0xC4A2)
        .with_faults(FaultSpec::none().with_churn(ChurnSpec::symmetric(30.0, 200)));

    let protocol = ProtocolBackend
        .evaluate(&scenario)
        .expect("protocol runs churn");
    let netsim = NetSimBackend
        .evaluate(&scenario)
        .expect("netsim runs churn");
    let runtime = RuntimeBackend::channel()
        .evaluate(&scenario)
        .expect("runtime runs churn");
    for report in [&protocol, &netsim, &runtime] {
        assert_eq!(
            report.faults.as_deref(),
            Some("churn(j=30,l=30,h=200ms)"),
            "{} must label the churn it ran under",
            report.backend
        );
        assert_close(
            report.reliability,
            protocol.reliability,
            0.05,
            &format!("{} vs protocol under churn", report.backend),
        );
    }

    // The percolation census and the generating functions have no
    // clock: both must refuse, each naming itself.
    match gossip::GraphBackend.evaluate(&scenario) {
        Err(gossip::ModelError::Unsupported { backend, what }) => {
            assert_eq!(backend, "graph");
            assert!(
                what.contains("churn"),
                "graph refusal must name churn: {what}"
            );
        }
        other => panic!("graph must refuse churn, got {other:?}"),
    }
    match AnalyticBackend.evaluate(&scenario) {
        Err(gossip::ModelError::Unsupported { backend, .. }) => assert_eq!(backend, "analytic"),
        other => panic!("analytic must refuse churn, got {other:?}"),
    }
}

#[test]
fn correlated_zone_failure_agrees_across_supporting_backends() {
    use gossip::{FaultSpec, NetSimBackend, ProtocolBackend, RuntimeBackend};
    // Kill zone 3 of a 6-zone clustered overlay at t = 0: a sixth of
    // the group is gone before the first relay, every backend that can
    // run the overlay (graph percolates it at-start; protocol, netsim
    // and runtime schedule the crashes) measures the survivors.
    let scenario = Scenario::new(600, FanoutSpec::poisson(6.0))
        .with_failure_ratio(0.9)
        .with_replications(20)
        .with_seed(0x2035)
        .with_topology(TopologySpec::new(OverlaySpec::Clustered {
            zones: 6,
            intra: 5,
            inter: 2,
        }))
        .with_faults(FaultSpec::none().with_zone_failure(vec![3], 0));

    let graph = gossip::GraphBackend
        .evaluate(&scenario)
        .expect("graph percolates zones");
    let protocol = ProtocolBackend
        .evaluate(&scenario)
        .expect("protocol runs zones");
    let netsim = NetSimBackend
        .evaluate(&scenario)
        .expect("netsim runs zones");
    let runtime = RuntimeBackend::channel()
        .evaluate(&scenario)
        .expect("runtime runs zones");
    for report in [&graph, &protocol, &netsim, &runtime] {
        assert_eq!(report.faults.as_deref(), Some("zones([3]@0ms)"));
        assert_close(
            report.reliability,
            graph.reliability,
            0.05,
            &format!("{} vs graph under a zone kill", report.backend),
        );
    }

    // On a non-clustered overlay the fault is a parameter error, not a
    // capability gap: validation rejects it before any backend runs.
    let wrong = scenario.clone().with_topology(TopologySpec::default());
    assert!(matches!(
        gossip::GraphBackend.evaluate(&wrong),
        Err(gossip::ModelError::InvalidParameter { .. })
    ));
}

#[test]
fn unsupported_combinations_error_cleanly() {
    // A scheduled-crash scenario: only the timed layers (netsim and
    // the live runtime, via its virtual clock) run it; the untimed
    // layers must say so rather than silently mis-evaluate.
    let scheduled = Scenario::new(500, FanoutSpec::poisson(6.0))
        .with_failure(FailureSpec::Schedule { crashes: vec![] })
        .with_replications(2);
    let mut supported = 0;
    for backend in all_backends() {
        match backend.evaluate(&scheduled) {
            Ok(_) => supported += 1,
            Err(gossip::ModelError::Unsupported { backend, what }) => {
                assert!(!what.is_empty(), "{backend} must explain itself");
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(
        supported, 2,
        "exactly netsim and runtime support crash schedules"
    );
}
