//! The phase transition (paper Eqs. 3/10): empirical critical points on
//! graphs and through the protocol match `q_c = 1/G1'(1)`.

use gossip_model::distribution::{FixedFanout, PoissonFanout};
use gossip_model::SitePercolation;
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;
use gossip_rgraph::phase::scan_configuration_model;

#[test]
fn poisson_phase_scan_finds_one_over_z() {
    let dist = PoissonFanout::new(4.0);
    let qs: Vec<f64> = (1..=12).map(|i| i as f64 * 0.05).collect();
    let scan = scan_configuration_model(&dist, 3000, &qs, 3, 1);
    assert!(
        (scan.estimated_qc - 0.25).abs() <= 0.10,
        "estimated q_c = {}, expected ≈ 0.25",
        scan.estimated_qc
    );
}

#[test]
fn fixed_fanout_phase_scan() {
    // Fixed(3): G1'(1) = 2 → q_c = 0.5.
    let dist = FixedFanout::new(3);
    let qs: Vec<f64> = (4..=16).map(|i| i as f64 * 0.05).collect(); // 0.2..0.8
    let scan = scan_configuration_model(&dist, 3000, &qs, 3, 2);
    assert!(
        (scan.estimated_qc - 0.5).abs() <= 0.10,
        "estimated q_c = {}, expected ≈ 0.5",
        scan.estimated_qc
    );
}

#[test]
fn protocol_reliability_collapses_below_critical() {
    // Straddle q_c = 0.25 for Po(4) with the live protocol.
    let dist = PoissonFanout::new(4.0);
    let below = experiment::reliability(&ExecutionConfig::new(1500, 0.18), &dist, 10, 3);
    let above = experiment::reliability(&ExecutionConfig::new(1500, 0.40), &dist, 10, 4);
    assert!(below.mean() < 0.05, "below q_c: {}", below.mean());
    assert!(above.mean() > 0.25, "above q_c: {}", above.mean());
}

#[test]
fn reliability_curve_inflects_at_critical_q() {
    // Along a q sweep, analytic reliability is 0 up to q_c and strictly
    // increasing after — the shape Figs. 4/5 hinge on.
    let dist = PoissonFanout::new(4.0);
    let mut last = 0.0;
    for i in 1..=20 {
        let q = i as f64 * 0.05;
        let r = SitePercolation::new(&dist, q)
            .unwrap()
            .reliability()
            .unwrap();
        if q < 0.25 {
            assert!(r < 1e-9, "pre-critical q = {q} gave R = {r}");
        } else if q > 0.30 {
            assert!(r > last, "R must strictly increase past q_c (q = {q})");
        }
        last = r;
    }
}

#[test]
fn critical_fanout_at_fixed_q() {
    // Dual reading of Eq. 10 used by Figs. 4/5: at fixed q the curves
    // lift off at f = 1/q.
    let q: f64 = 0.5;
    for &(f, expect_alive) in &[(1.5, false), (1.9, false), (2.2, true), (3.0, true)] {
        let dist = PoissonFanout::new(f);
        let r = SitePercolation::new(&dist, q)
            .unwrap()
            .reliability()
            .unwrap();
        assert_eq!(
            r > 1e-6,
            expect_alive,
            "f = {f}, q = {q}: R = {r}, expected alive = {expect_alive}"
        );
    }
}
