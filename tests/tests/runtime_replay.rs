//! Determinism and serialization guarantees of the live runtime layer.
//!
//! The channel-transport runtime is *byte-deterministic* in the
//! scenario seed even though executions race across real OS threads:
//! every draw (fanout, targets, loss, latency, crash pattern) comes
//! from seed-derived per-node streams, and the report's metrics are
//! computed from the recorded relay graph rather than from arrival
//! order. These tests pin that guarantee — same seed, byte-identical
//! Report JSON — along with the sweep-nesting behaviour and the new
//! runtime-specific Report fields' round-trip.

use gossip::{
    Backend, FanoutSpec, LatencySpec, ModelError, Report, RuntimeBackend, RuntimeSpec, Scenario,
    SweepGrid,
};

/// A scenario leaning on every seed-driven runtime feature at once:
/// random failures, message loss, and a spread latency model.
fn replay_scenario() -> Scenario {
    Scenario::new(300, FanoutSpec::poisson(5.0))
        .with_failure_ratio(0.85)
        .with_loss(0.1)
        .with_latency(LatencySpec::UniformMillis { lo_ms: 1, hi_ms: 9 })
        .with_replications(10)
        .with_seed(0x5EED)
}

#[test]
fn same_seed_replays_to_byte_identical_report_json() {
    let scenario = replay_scenario();
    let first = RuntimeBackend::channel().evaluate(&scenario).unwrap();
    let second = RuntimeBackend::channel().evaluate(&scenario).unwrap();
    let a = serde::json::to_string(&first).unwrap();
    let b = serde::json::to_string(&second).unwrap();
    assert_eq!(a, b, "live runs with one seed must replay byte-for-byte");

    // And the seed genuinely steers the execution.
    let other = RuntimeBackend::channel()
        .evaluate(&scenario.clone().with_seed(0xFEED))
        .unwrap();
    assert_ne!(
        first.reliability, other.reliability,
        "a different seed must change the measured outcome (a.s.)"
    );
}

#[test]
fn shard_width_does_not_change_results() {
    // 1 shard vs many shards: different interleavings, same bytes —
    // the determinism is architectural, not accidental.
    let narrow = RuntimeBackend::channel()
        .evaluate(&replay_scenario().with_runtime(RuntimeSpec {
            max_threads: 1,
            pacing_micros_per_milli: 0,
            watchdog_secs: 0,
        }))
        .unwrap();
    let wide = RuntimeBackend::channel()
        .evaluate(&replay_scenario().with_runtime(RuntimeSpec {
            max_threads: 32,
            pacing_micros_per_milli: 0,
            watchdog_secs: 0,
        }))
        .unwrap();
    assert_eq!(
        serde::json::to_string(&narrow).unwrap(),
        serde::json::to_string(&wide).unwrap(),
        "shard width is a performance knob, not a semantic one"
    );
}

#[test]
fn runtime_inside_a_sweep_matches_direct_evaluation() {
    // SweepGrid fans cells over worker threads; a runtime run inside a
    // worker collapses to one shard (the workers² guard). The reports
    // must still match a direct top-level evaluation cell for cell.
    let grid = SweepGrid::new(
        Scenario::new(200, FanoutSpec::poisson(6.0))
            .with_replications(4)
            .with_seed(0x6121),
    )
    .over_failure_ratios(&[0.6, 0.9]);
    let cells = grid.run(&RuntimeBackend::channel());
    assert_eq!(cells.len(), 2);
    for cell in &cells {
        let swept = cell.report.as_ref().expect("cell evaluates");
        let direct = RuntimeBackend::channel().evaluate(&cell.scenario).unwrap();
        assert_eq!(
            serde::json::to_string(swept).unwrap(),
            serde::json::to_string(&direct).unwrap(),
            "sweep nesting must not change runtime results"
        );
    }
}

#[test]
fn runtime_report_fields_roundtrip_losslessly() {
    let report = RuntimeBackend::channel()
        .evaluate(&replay_scenario())
        .unwrap();
    assert_eq!(report.transport.as_deref(), Some("channel"));
    assert!(report.messages_lost.unwrap() > 0.0, "loss = 0.1 must bite");
    assert_eq!(report.quiescence_secs, None, "wall-clock stays out");

    let text = serde::json::to_string(&report).unwrap();
    assert!(text.contains("\"transport\":\"channel\""));
    assert!(text.contains("\"messages_lost\":"));
    let back: Report = serde::json::from_str(&text).unwrap();
    assert_eq!(back, report, "runtime Report JSON must be lossless");
}

#[test]
fn runtime_knob_validation_fails_fast() {
    // Bad runtime knobs die in Scenario::validate, before any thread
    // spawns or socket binds.
    let oversubscribed = replay_scenario().with_runtime(RuntimeSpec {
        max_threads: 100_000,
        pacing_micros_per_milli: 0,
        watchdog_secs: 0,
    });
    assert!(matches!(
        RuntimeBackend::channel().evaluate(&oversubscribed),
        Err(ModelError::InvalidParameter {
            name: "max_threads",
            ..
        })
    ));
    let overpaced = replay_scenario().with_runtime(RuntimeSpec {
        max_threads: 0,
        pacing_micros_per_milli: 9999,
        watchdog_secs: 0,
    });
    assert!(matches!(
        RuntimeBackend::tcp().evaluate(&overpaced),
        Err(ModelError::InvalidParameter {
            name: "pacing_micros_per_milli",
            ..
        })
    ));
}
