//! The membership assumption (paper §3): gossip over SCAMP-style partial
//! views behaves like gossip over uniform views once views reach the
//! `(c+1)·ln n` size SCAMP provides.

use gossip_model::distribution::PoissonFanout;
use gossip_model::poisson_case;
use gossip_netsim::membership::{Membership, ScampViews};
use gossip_protocol::engine::{ExecutionConfig, MembershipKind};
use gossip_protocol::experiment;
use gossip_stats::rng::Xoshiro256StarStar;

#[test]
fn scamp_view_sizes_scale_with_log_n() {
    let n = 1500;
    let c = 2;
    let views = ScampViews::build(n, c, 7);
    let predicted = (c as f64 + 1.0) * (n as f64).ln();
    let mean = views.mean_view_size();
    assert!(
        mean > 0.4 * predicted && mean < 2.5 * predicted,
        "mean view {mean:.1} vs SCAMP prediction {predicted:.1}"
    );
}

#[test]
fn gossip_over_scamp_approaches_uniform_analysis() {
    let n = 1200;
    let (f, q) = (5.0, 0.9);
    let analytic = poisson_case::reliability(f, q).unwrap();
    let cfg = ExecutionConfig::new(n, q).with_membership(MembershipKind::Scamp { c: 2 });
    let stats =
        experiment::reliability_conditional(&cfg, &PoissonFanout::new(f), 12, 5, 0.5 * analytic);
    let gap = (stats.mean() - analytic).abs();
    assert!(
        gap < 0.05,
        "partial-view gossip off by {gap:.3} from uniform analysis ({} vs {analytic})",
        stats.mean()
    );
}

#[test]
fn view_richness_tracks_uniform_analysis() {
    // Once views clear the SCAMP size, reliability (conditioned on
    // take-off, to remove source-extinction noise) sits near the uniform
    // analysis for every redundancy level.
    let n = 1200;
    let (f, q) = (4.0, 0.9);
    let analytic = poisson_case::reliability(f, q).unwrap();
    let dist = PoissonFanout::new(f);
    for c in [0usize, 2, 4] {
        let cfg = ExecutionConfig::new(n, q).with_membership(MembershipKind::Scamp { c });
        let stats =
            experiment::reliability_conditional(&cfg, &dist, 16, 9 + c as u64, 0.5 * analytic);
        let gap = (stats.mean() - analytic).abs();
        assert!(
            gap < 0.06,
            "SCAMP c={c}: conditional reliability {} vs analytic {analytic} (gap {gap:.3})",
            stats.mean()
        );
    }
}

#[test]
fn views_have_no_self_or_duplicates_at_scale() {
    let views = ScampViews::build(2000, 3, 13);
    for v in 0..2000u32 {
        let view = views.view(v);
        assert!(!view.contains(&v));
        let mut sorted = view.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), view.len());
    }
}

#[test]
fn sampling_over_trait_object() {
    let views = ScampViews::build(500, 2, 17);
    let m: &dyn Membership = &views;
    let mut rng = Xoshiro256StarStar::new(1);
    let mut out = Vec::new();
    m.sample_targets(10, 4, &mut rng, &mut out);
    assert!(out.len() <= 4);
    for t in &out {
        assert!(views.view(10).contains(t));
    }
}
