//! E7 — empirical validation of the critical point `q_c = 1/G1'(1)`
//! (paper Eqs. 3 and 10).
//!
//! The paper asserts, and Figs. 4/5 visually show, that gossip only
//! works when `q > 1/f` for Poisson fanout. This experiment locates the
//! phase transition directly: sweep `q` on configuration-model graphs,
//! find the second-largest-component peak, and compare against the
//! analytic `q_c` — which now comes from the scenario API
//! ([`AnalyticBackend`]'s `Report::critical_q`), with the fanout cases
//! declared as data ([`FanoutSpec`]).

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, Scenario};
use gossip_rgraph::phase::scan_configuration_model;

fn main() {
    let n = 20_000;
    let reps = scaled(6);
    let qs: Vec<f64> = (2..=40).map(|i| i as f64 * 0.025).collect(); // 0.05 .. 1.0

    let mut table = Table::new(
        format!("E7 — empirical vs analytic critical point (n = {n}, {reps} graphs/point)"),
        &["distribution", "analytic q_c", "empirical q_c", "|gap|"],
    );

    let cases = [
        FanoutSpec::poisson(2.5),
        FanoutSpec::poisson(4.0),
        FanoutSpec::fixed(3),
        FanoutSpec::geometric_with_mean(3.0),
    ];
    for spec in &cases {
        let scenario = Scenario::new(n, spec.clone());
        let analytic = AnalyticBackend
            .evaluate(&scenario)
            .expect("valid scenario")
            .critical_q
            .expect("all cases percolate");
        let dist = spec.build().expect("valid fanout spec");
        let scan = scan_configuration_model(&dist, n, &qs, reps, base_seed());
        let gap = (scan.estimated_qc - analytic).abs();
        table.push(vec![
            spec.label(),
            format!("{analytic:.4}"),
            format!("{:.4}", scan.estimated_qc),
            format!("{gap:.4}"),
        ]);
    }
    table.print();
    table.save("e7_critical_point.csv");
    println!("paper checkpoint: Po(z) transitions at q_c = 1/z (Eq. 10); Fixed(3) at 1/2 (Eq. 3).");
}
