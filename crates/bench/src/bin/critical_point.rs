//! E7 — empirical validation of the critical point `q_c = 1/G1'(1)`
//! (paper Eqs. 3 and 10).
//!
//! The paper asserts, and Figs. 4/5 visually show, that gossip only
//! works when `q > 1/f` for Poisson fanout. This experiment locates the
//! phase transition directly: sweep `q` on configuration-model graphs,
//! find the second-largest-component peak, and compare against the
//! analytic `q_c` — for Poisson and for two non-Poisson fanouts the
//! paper's model also covers.

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::distribution::{FanoutDistribution, FixedFanout, GeometricFanout, PoissonFanout};
use gossip_model::SitePercolation;
use gossip_rgraph::phase::scan_configuration_model;

fn main() {
    let n = 20_000;
    let reps = scaled(6);
    let qs: Vec<f64> = (2..=40).map(|i| i as f64 * 0.025).collect(); // 0.05 .. 1.0

    let mut table = Table::new(
        format!("E7 — empirical vs analytic critical point (n = {n}, {reps} graphs/point)"),
        &["distribution", "analytic q_c", "empirical q_c", "|gap|"],
    );

    let cases: Vec<(String, Box<dyn FanoutDistribution>)> = vec![
        ("Po(2.5)".into(), Box::new(PoissonFanout::new(2.5))),
        ("Po(4.0)".into(), Box::new(PoissonFanout::new(4.0))),
        ("Fixed(3)".into(), Box::new(FixedFanout::new(3))),
        (
            "Geom(mean 3)".into(),
            Box::new(GeometricFanout::with_mean(3.0)),
        ),
    ];
    for (label, dist) in &cases {
        let analytic = SitePercolation::new(dist, 1.0)
            .expect("q = 1 is valid")
            .critical_q()
            .expect("all cases percolate");
        let scan = scan_configuration_model(dist, n, &qs, reps, base_seed());
        let gap = (scan.estimated_qc - analytic).abs();
        table.push(vec![
            label.clone(),
            format!("{analytic:.4}"),
            format!("{:.4}", scan.estimated_qc),
            format!("{gap:.4}"),
        ]);
    }
    table.print();
    table.save("e7_critical_point.csv");
    println!("paper checkpoint: Po(z) transitions at q_c = 1/z (Eq. 10); Fixed(3) at 1/2 (Eq. 3).");
}
