//! E12 — million-node scaling: the flat struct-of-arrays engine runs
//! the paper's Fig. 4 reliability curve at n = 10⁶ — three orders of
//! magnitude past the paper's n = 1000 — and a 10⁷ smoke point, with
//! wall-clock seconds per backend committed alongside the
//! reliabilities.
//!
//! Two flat paths are timed per grid point: the graph backend (fused
//! configuration-model + site/bond percolation, stub pairs streamed
//! into union-find) and the protocol backend (bitset-frontier lazy
//! relay). The analytic generating-function value rides along as the
//! reference curve; at n = 10⁶ finite-size effects are negligible, so
//! the Monte-Carlo points should sit on it.
//!
//! Writes `BENCH_scaling.json` (workspace root or `GOSSIP_SNAPSHOT_DIR`).
//! Knobs for CI smoke runs: `GOSSIP_SCALING_N` (default 1_000_000),
//! `GOSSIP_SCALING_SMOKE_N` (default 10_000_000), `GOSSIP_REPS_SCALE`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::scenario::{AnalyticBackend, Backend, EngineSpec, FanoutSpec, Report, Scenario};
use gossip_protocol::ProtocolBackend;
use gossip_rgraph::GraphBackend;

fn env_n(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Evaluates and wall-clocks one backend on one scenario.
fn timed(backend: &dyn Backend, scenario: &Scenario) -> (Report, f64) {
    let start = Instant::now();
    let report = backend.evaluate(scenario).expect("flat backend evaluates");
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let n = env_n("GOSSIP_SCALING_N", 1_000_000);
    let smoke_n = env_n("GOSSIP_SCALING_SMOKE_N", 10_000_000);
    let f = 4.0;
    let reps = scaled(8);
    let qs: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();

    let base = Scenario::new(n, FanoutSpec::poisson(f))
        .with_replications(reps)
        .with_seed(base_seed())
        .with_engine(EngineSpec::Flat);

    let mut table = Table::new(
        format!(
            "E12 — Fig. 4 at n = {n}, Po({f}), flat engine, {reps} runs/point \
             (analytic q_c = 0.25)"
        ),
        &[
            "q",
            "analytic R",
            "graph R",
            "graph s",
            "protocol R",
            "protocol s",
        ],
    );

    let mut json_rows = String::new();
    for &q in &qs {
        let scenario = base.clone().with_failure_ratio(q);
        let analytic = AnalyticBackend
            .evaluate(&scenario)
            .expect("analytic prices")
            .reliability;
        let (graph, graph_secs) = timed(&GraphBackend, &scenario);
        let (protocol, protocol_secs) = timed(&ProtocolBackend, &scenario);
        table.push(vec![
            format!("{q:.2}"),
            format!("{analytic:.4}"),
            format!("{:.4}", graph.reliability),
            format!("{graph_secs:.2}"),
            format!("{:.4}", protocol.reliability),
            format!("{protocol_secs:.2}"),
        ]);
        let _ = writeln!(
            json_rows,
            "    {{\"q\": {q:.2}, \"analytic\": {analytic:.4}, \
             \"graph_reliability\": {:.4}, \"graph_secs\": {graph_secs:.3}, \
             \"protocol_reliability\": {:.4}, \"protocol_secs\": {protocol_secs:.3}}},",
            graph.reliability, protocol.reliability
        );
    }
    table.print();
    table.save("e12_scaling.csv");

    // One order of magnitude further: a single supercritical point at
    // n = 10⁷ proves the engine's memory layout survives the next decade.
    let smoke_reps = scaled(2);
    let smoke = Scenario::new(smoke_n, FanoutSpec::poisson(f))
        .with_failure_ratio(0.9)
        .with_replications(smoke_reps)
        .with_seed(base_seed())
        .with_engine(EngineSpec::Flat);
    let smoke_analytic = AnalyticBackend
        .evaluate(&smoke)
        .expect("analytic prices")
        .reliability;
    let (smoke_graph, smoke_graph_secs) = timed(&GraphBackend, &smoke);
    let (smoke_protocol, smoke_protocol_secs) = timed(&ProtocolBackend, &smoke);
    println!(
        "smoke n = {smoke_n}, q = 0.9, {smoke_reps} reps: analytic {smoke_analytic:.4} | \
         graph {:.4} in {smoke_graph_secs:.2}s | protocol {:.4} in {smoke_protocol_secs:.2}s",
        smoke_graph.reliability, smoke_protocol.reliability
    );

    let json_rows = json_rows.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scaling: Fig. 4 curve on the flat engine, Po({})\",\n",
            "  \"n\": {},\n",
            "  \"replications_per_point\": {},\n",
            "  \"q_grid\": \"0.05..0.95 step 0.05\",\n",
            "  \"curve\": [\n{}\n  ],\n",
            "  \"smoke\": {{\"n\": {}, \"q\": 0.9, \"replications\": {}, \
             \"analytic\": {:.4}, \"graph_reliability\": {:.4}, \"graph_secs\": {:.3}, \
             \"protocol_reliability\": {:.4}, \"protocol_secs\": {:.3}}}\n",
            "}}"
        ),
        f,
        n,
        reps,
        json_rows,
        smoke_n,
        smoke_reps,
        smoke_analytic,
        smoke_graph.reliability,
        smoke_graph_secs,
        smoke_protocol.reliability,
        smoke_protocol_secs
    );
    let dir = std::env::var("GOSSIP_SNAPSHOT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    let path = dir.join("BENCH_scaling.json");
    std::fs::write(&path, json + "\n").expect("write snapshot");
    println!("wrote {}", path.display());
    println!(
        "checkpoint: the flat engine traces the paper's reliability curve at a thousand times \
         the paper's group size, in seconds per point on a laptop-class machine."
    );
}
