//! Machine-readable performance snapshots, committed alongside the
//! code so regressions show up in review diffs:
//!
//! * `BENCH_scenario_sweep.json` — wall-clock of the criterion
//!   baseline's headline case (the 60-cell Fig. 4/5-shaped analytic
//!   sweep in `benches/scenario_sweep.rs`), re-measured here without
//!   the criterion harness so the number is one `cargo run` away.
//! * `BENCH_runtime.json` — the live runtime layer: rounds-to-delivery
//!   and wall-clock for an n = 256 actor-per-node broadcast over the
//!   channel transport, with the full (seed-deterministic) report
//!   embedded.
//!
//! ```sh
//! cargo run --release -p gossip-bench --bin bench_snapshot
//! ```
//!
//! Files land in the current directory (the workspace root under
//! `cargo run`) or `GOSSIP_SNAPSHOT_DIR`.

use std::path::PathBuf;
use std::time::Instant;

use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, Scenario, SweepGrid};
use gossip_model::sweep::paper_fanout_grid;
use gossip_runtime::RuntimeBackend;

fn snapshot_dir() -> PathBuf {
    std::env::var("GOSSIP_SNAPSHOT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn write(name: &str, json: String) {
    let path = snapshot_dir().join(name);
    std::fs::write(&path, json + "\n").expect("write snapshot");
    println!("wrote {}", path.display());
}

fn sweep_snapshot() {
    // The criterion baseline's shape: paper fanout axis × 4 failure
    // ratios = 60 cells, n = 1000, analytic backend.
    let means: Vec<f64> = paper_fanout_grid();
    let grid = SweepGrid::new(
        Scenario::new(1000, FanoutSpec::poisson(4.0))
            .with_replications(20)
            .with_seed(0xBE7C),
    )
    .over_poisson_means(&means)
    .over_failure_ratios(&[0.4, 0.6, 0.8, 1.0]);
    let cells = grid.len();

    // Warm-up, then measure.
    let _ = grid.run(&AnalyticBackend);
    let iters = 10usize;
    let mut secs: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = grid.run(&AnalyticBackend);
        secs.push(t0.elapsed().as_secs_f64());
        assert_eq!(out.len(), cells);
    }
    let mean = secs.iter().sum::<f64>() / iters as f64;
    let min = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "analytic sweep: {cells} cells, mean {:.2} ms, min {:.2} ms",
        mean * 1e3,
        min * 1e3
    );
    write(
        "BENCH_scenario_sweep.json",
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"scenario/analytic_sweep (criterion baseline, 60-cell case)\",\n",
                "  \"cells\": {},\n",
                "  \"iterations\": {},\n",
                "  \"mean_secs\": {:.6},\n",
                "  \"min_secs\": {:.6},\n",
                "  \"cells_per_sec\": {:.1}\n",
                "}}"
            ),
            cells,
            iters,
            mean,
            min,
            cells as f64 / mean
        ),
    );
}

fn runtime_snapshot() {
    // A live n = 256 broadcast: actors on OS threads, channel transport.
    let scenario = Scenario::new(256, FanoutSpec::poisson(6.0))
        .with_failure_ratio(0.9)
        .with_loss(0.1)
        .with_replications(10)
        .with_seed(0xBE7C);
    let t0 = Instant::now();
    let report = RuntimeBackend::channel()
        .evaluate(&scenario)
        .expect("runtime evaluates");
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "runtime n=256: R = {:.4}, rounds ≈ {:.1}, {:.2} s for {} reps",
        report.reliability,
        report.rounds.unwrap_or(0.0),
        wall,
        report.replications
    );
    write(
        "BENCH_runtime.json",
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"runtime/channel n=256 Po(6) q=0.9 loss=0.1\",\n",
                "  \"wall_clock_secs\": {:.6},\n",
                "  \"rounds_to_delivery\": {:.4},\n",
                "  \"reliability\": {:.6},\n",
                "  \"messages_per_member\": {:.4},\n",
                "  \"report\": {}\n",
                "}}"
            ),
            wall,
            report.rounds.expect("supercritical point takes off"),
            report.reliability,
            report.messages_per_member.expect("runtime counts messages"),
            serde::json::to_string(&report).expect("report serializes")
        ),
    );
}

fn main() {
    sweep_snapshot();
    runtime_snapshot();
}
