//! E8 — the "arbitrary fanout distribution" claim (paper §2, third
//! advantage), measured three ways at equal mean fanout:
//!
//! * **analytic** — the paper's undirected generalized-random-graph
//!   model (`1 − G0(u)`);
//! * **graph** — undirected giant component measured on percolated
//!   configuration-model graphs (validates the *model* exactly);
//! * **protocol** — the live directed gossip protocol on the simulator.
//!
//! The punchline this experiment quantifies: the analytic and graph
//! columns order by fanout *variance* (fixed > uniform > Poisson >
//! geometric at equal mean), but the protocol column is nearly constant
//! across shapes — directed receipt depends on the in-degree, which
//! uniform target selection makes ≈ Poisson(f·q) for *every* fanout
//! shape. The paper validated only with Poisson fanouts, where model and
//! protocol coincide (see EXPERIMENTS.md, finding F3).

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::distribution::{
    BinomialFanout, EmpiricalFanout, FanoutDistribution, FixedFanout, GeometricFanout,
    PoissonFanout, UniformFanout,
};
use gossip_model::SitePercolation;
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;
use gossip_rgraph::percolation_sim::percolate_many;
use gossip_rgraph::ConfigurationModel;
use gossip_stats::rng::Xoshiro256StarStar;

fn main() {
    let n = 2000;
    let q = 0.9;
    let mean = 4.0;
    let reps = scaled(40);
    let graph_reps = scaled(10);

    let zoo: Vec<(&str, Box<dyn ZooDist>)> = vec![
        ("Fixed(4)", Box::new(FixedFanout::new(4))),
        ("U[2,6]", Box::new(UniformFanout::new(2, 6))),
        ("Bin(8,0.5)", Box::new(BinomialFanout::new(8, 0.5))),
        ("Po(4)", Box::new(PoissonFanout::new(4.0))),
        (
            "Bimodal{1,8}",
            // mean = 0.5714·1 + 0.4286·8 ≈ 4.0
            Box::new(EmpiricalFanout::new(&[
                0.0, 0.5714, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.4286,
            ])),
        ),
        ("Geom(mean 4)", Box::new(GeometricFanout::with_mean(4.0))),
    ];

    let mut table = Table::new(
        format!(
            "E8 — fanout families at mean ≈ {mean}, n = {n}, q = {q} \
             (analytic = paper model; graph = undirected GC; protocol = directed gossip)"
        ),
        &[
            "distribution",
            "mean",
            "q_c",
            "R analytic",
            "R graph",
            "R protocol",
        ],
    );
    let cfg = ExecutionConfig::new(n, q);
    for (i, (label, dist)) in zoo.iter().enumerate() {
        let perc = SitePercolation::new(dist.as_fanout(), q).expect("valid q");
        let qc = perc
            .critical_q()
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "—".into());
        let analytic = perc.reliability().expect("solver converges");

        // Graph level: undirected giant component on configuration-model
        // realizations (the object the paper's math describes).
        let seed = base_seed().wrapping_add(1000 + i as u64);
        let g = ConfigurationModel::new(dist.as_fanout(), 20_000)
            .generate(&mut Xoshiro256StarStar::new(seed));
        let graph_r = percolate_many(&g, q, &[], graph_reps, seed ^ 0xF00D)
            .reliability
            .mean();

        // Protocol level: the live directed push protocol, conditioned
        // on take-off.
        let sim = dist.simulate(&cfg, reps, base_seed().wrapping_add(i as u64), 0.3);

        table.push(vec![
            label.to_string(),
            format!("{:.3}", dist.as_fanout().mean()),
            qc,
            format!("{analytic:.4}"),
            format!("{graph_r:.4}"),
            format!("{sim:.4}"),
        ]);
    }
    table.print();
    table.save("e8_distribution_zoo.csv");
    println!(
        "checkpoints: (1) analytic ≈ graph for every family — the generalized-random-graph \
         model is exact for its object;"
    );
    println!(
        "             (2) protocol column ≈ R(Po(4·q)) = {:.4} for every family — directed \
         receipt washes out fanout shape (finding F3).",
        gossip_model::poisson_case::reliability(4.0, q).expect("supercritical")
    );
}

/// Object-safe shim: the zoo mixes concrete distribution types, but
/// `experiment::reliability_conditional` needs `Clone + 'static`.
trait ZooDist {
    fn as_fanout(&self) -> &dyn FanoutDistribution;
    fn simulate(&self, cfg: &ExecutionConfig, reps: usize, seed: u64, threshold: f64) -> f64;
}

impl<D: FanoutDistribution + Clone + Sync + 'static> ZooDist for D {
    fn as_fanout(&self) -> &dyn FanoutDistribution {
        self
    }
    fn simulate(&self, cfg: &ExecutionConfig, reps: usize, seed: u64, threshold: f64) -> f64 {
        experiment::reliability_conditional(cfg, self, reps, seed, threshold).mean()
    }
}
