//! E13 — whole-group success: the Kermarrec–Massoulié–Ganesh asymptotic
//! `Pr(success) → e^{−e^{−c}}` at fanout `ln n' + c` (paper §2,
//! reference \[6\]) against measured strict success on the live protocol.
//!
//! "Success" here is the all-or-nothing event the Microsoft model was
//! built for: *every* nonfailed member receives the message in one
//! execution. The paper's own model refuses to answer this (it gives
//! per-member reliability instead); this experiment shows the asymptotic
//! law is already accurate at n in the thousands.

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::baselines::asymptotic;
use gossip_model::distribution::PoissonFanout;
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;

fn main() {
    let n = 1500;
    let q = 0.9;
    let survivors = (n as f64 * q) as usize;
    let ln_n = (survivors as f64).ln();
    let reps = scaled(200);

    let mut table = Table::new(
        format!(
            "E13 — Pr(all nonfailed reached) at fanout ln n' + c, n = {n}, q = {q} \
             (n' ≈ {survivors}, ln n' ≈ {ln_n:.2}; {reps} executions/point)"
        ),
        &["c", "fanout", "measured", "KMG asymptotic e^-e^-c"],
    );
    for &c in &[-1.0f64, 0.0, 1.0, 2.0, 3.0, 4.0, 6.0] {
        let fanout = ln_n + c;
        let dist = PoissonFanout::new(fanout);
        let cfg = ExecutionConfig::new(n, q);
        let outcomes = experiment::executions(&cfg, &dist, reps, base_seed() ^ (c.to_bits()));
        let successes = outcomes.iter().filter(|o| o.is_success()).count();
        let measured = successes as f64 / outcomes.len() as f64;
        let predicted = asymptotic::success_probability(survivors, fanout);
        table.push_floats(&[c, fanout, measured, predicted], 4);
    }
    table.print();
    table.save("e13_baselines_success.csv");
    println!(
        "checkpoint: required fanout for 99.9% success at n' = {survivors}: \
         KMG says {:.2}; the paper's per-member Eq. 6 route instead repeats \
         cheaper executions (t × small fanout).",
        asymptotic::required_fanout(survivors, 0.999)
    );
}
