//! E11 — finite-size scaling of the model error.
//!
//! Paper §5.1: the 5000-node simulations "tally with the analytical
//! results better than" the 1000-node ones, "which indicates that our
//! modeling works better in larger scale systems." This experiment makes
//! that sentence quantitative: mean |sim − analysis| over a fixed
//! parameter set, as a function of n.

use gossip_bench::figures::reliability_vs_fanout;
use gossip_bench::{base_seed, scaled, Table};

fn main() {
    let qs = [0.5, 0.8, 1.0];
    let reps = scaled(20);
    let mut table = Table::new(
        format!("E11 — model error vs group size ({reps} runs/point, q ∈ {qs:?})"),
        &["n", "mean |sim − ana|", "max |sim − ana|"],
    );
    let mut errors = Vec::new();
    for &n in &[250usize, 500, 1000, 2000, 4000, 8000, 16000] {
        let points = reliability_vs_fanout(n, &qs, reps, base_seed().wrapping_add(n as u64));
        // Restrict to clearly supercritical points: near the transition
        // the finite-size smoothing dominates at any n.
        let sup: Vec<f64> = points
            .iter()
            .filter(|p| p.f * p.q > 1.5)
            .map(|p| (p.simulated - p.analytic).abs())
            .collect();
        let mean_err = sup.iter().sum::<f64>() / sup.len() as f64;
        let max_err = sup.iter().fold(0.0f64, |a, &b| a.max(b));
        errors.push((n, mean_err));
        table.push(vec![
            n.to_string(),
            format!("{mean_err:.4}"),
            format!("{max_err:.4}"),
        ]);
    }
    table.print();
    table.save("e11_finite_size.csv");

    let first = errors.first().expect("non-empty").1;
    let last = errors.last().expect("non-empty").1;
    println!(
        "checkpoint: error shrinks with n ({first:.4} at n = {} → {last:.4} at n = {}) — \
         the paper's \"works better in larger scale systems\" claim.",
        errors.first().unwrap().0,
        errors.last().unwrap().0
    );
}
