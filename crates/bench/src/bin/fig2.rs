//! Fig. 2 — mean fanout `z` vs reliability `S` for q ∈ {0.2, …, 1.0}
//! (analytic, paper Eq. 12: `z = −ln(1 − S)/(qS)`).
//!
//! Ported to the scenario API: each designed `z` is round-tripped
//! through an [`AnalyticBackend`] scenario — the forward model must
//! reproduce the reliability the inverse design promised.
//!
//! Paper reference points: the curves span S ∈ [0.1111, 0.9999] with z
//! rising to ≈46 at (q = 0.2, S = 0.9999) and staying below ≈10 at
//! q = 1.0.

use gossip_bench::{ascii_plot, Table};
use gossip_model::poisson_case;
use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, Scenario};

fn main() {
    let qs = [0.2, 0.4, 0.6, 0.8, 1.0];
    let steps = 60;
    let (s_min, s_max) = (0.1111, 0.9999);

    let mut headers = vec!["S".to_string()];
    headers.extend(qs.iter().map(|q| format!("z(q={q})")));
    headers.push("max |roundtrip err|".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Fig. 2 — mean fanout required for reliability S (Poisson, Eq. 12)",
        &header_refs,
    );

    let mut series: Vec<(String, Vec<(f64, f64)>)> =
        qs.iter().map(|q| (format!("q={q}"), Vec::new())).collect();
    let mut worst_roundtrip = 0.0f64;
    for i in 0..steps {
        let s = s_min + (s_max - s_min) * i as f64 / (steps - 1) as f64;
        let mut row = vec![s];
        let mut row_err = 0.0f64;
        for (qi, &q) in qs.iter().enumerate() {
            // Inverse design (Eq. 12), then forward verification through
            // the scenario API.
            let z = poisson_case::mean_fanout_for(s, q).expect("Eq. 12 well-defined");
            let scenario = Scenario::new(1000, FanoutSpec::poisson(z)).with_failure_ratio(q);
            let report = AnalyticBackend.evaluate(&scenario).expect("valid scenario");
            row_err = row_err.max((report.reliability - s).abs());
            row.push(z);
            series[qi].1.push((s, z));
        }
        worst_roundtrip = worst_roundtrip.max(row_err);
        row.push(row_err);
        table.push_floats(&row, 4);
    }
    table.print();
    table.save("fig2_fanout_vs_reliability.csv");

    let series_refs: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(l, p)| (l.as_str(), p.clone()))
        .collect();
    println!("{}", ascii_plot(&series_refs, 70, 22));

    // Headline checkpoints from the paper's plot.
    let z_max = series[0].1.last().expect("non-empty").1;
    println!("checkpoint: z(q=0.2, S=0.9999) = {z_max:.2} (paper plot: ≈46)");
    println!("checkpoint: worst |R(designed z) − S| = {worst_roundtrip:.2e} (design roundtrip)");
    assert!(
        worst_roundtrip < 1e-6,
        "Eq. 12 must round-trip through Eq. 11"
    );
}
