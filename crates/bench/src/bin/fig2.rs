//! Fig. 2 — mean fanout `z` vs reliability `S` for q ∈ {0.2, …, 1.0}
//! (analytic, paper Eq. 12: `z = −ln(1 − S)/(qS)`).
//!
//! Paper reference points: the curves span S ∈ [0.1111, 0.9999] with z
//! rising to ≈46 at (q = 0.2, S = 0.9999) and staying below ≈10 at
//! q = 1.0.

use gossip_bench::{ascii_plot, Table};
use gossip_model::sweep;

fn main() {
    let qs = [0.2, 0.4, 0.6, 0.8, 1.0];
    let curves = sweep::fig2_fanout_vs_reliability(&qs, 0.1111, 0.9999, 60)
        .expect("Eq. 12 sweep is well-defined on this grid");

    let mut headers = vec!["S".to_string()];
    headers.extend(curves.iter().map(|c| format!("z({})", c.label)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Fig. 2 — mean fanout required for reliability S (Poisson, Eq. 12)",
        &header_refs,
    );
    for i in 0..curves[0].points.len() {
        let mut row = vec![curves[0].points[i].x];
        row.extend(curves.iter().map(|c| c.points[i].y));
        table.push_floats(&row, 4);
    }
    table.print();
    table.save("fig2_fanout_vs_reliability.csv");

    let series: Vec<(&str, Vec<(f64, f64)>)> = curves
        .iter()
        .map(|c| {
            (
                c.label.as_str(),
                c.points.iter().map(|p| (p.x, p.y)).collect(),
            )
        })
        .collect();
    println!("{}", ascii_plot(&series, 70, 22));

    // Headline checkpoints from the paper's plot.
    let z_max = curves[0].points.last().expect("non-empty").y;
    println!("checkpoint: z(q=0.2, S=0.9999) = {z_max:.2} (paper plot: ≈46)");
}
