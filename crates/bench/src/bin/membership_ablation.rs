//! E10 — membership ablation: the paper assumes targets drawn uniformly
//! from the whole group ("a scalable membership protocol is available",
//! §3). How much reliability is lost when gossip runs over SCAMP-style
//! partial views instead?
//!
//! Ported to the scenario API: the same scenario evaluated with
//! [`MembershipSpec::Full`] and `Scamp { c }` through
//! [`ProtocolBackend`], against the uniform-target analysis from
//! [`AnalyticBackend`].

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, MembershipSpec, Scenario};
use gossip_netsim::membership::ScampViews;
use gossip_protocol::ProtocolBackend;

fn main() {
    let n = 2000;
    let (f, q) = (4.0, 0.9);
    let reps = scaled(40);
    let base = Scenario::new(n, FanoutSpec::poisson(f))
        .with_failure_ratio(q)
        .with_replications(reps)
        .with_seed(base_seed());
    let analytic = AnalyticBackend
        .evaluate(&base)
        .expect("valid scenario")
        .reliability;

    let mut table = Table::new(
        format!("E10 — full view vs SCAMP partial views, n = {n}, Po({f}), q = {q}, {reps} runs"),
        &[
            "membership",
            "mean view size",
            "R simulated",
            "R analytic (uniform)",
        ],
    );

    // The protocol backend conditions on take-off throughout: the
    // comparison is about *where the message spreads*, not about
    // source-extinction luck.
    let full = ProtocolBackend.evaluate(&base).expect("valid scenario");
    table.push(vec![
        "full view".into(),
        format!("{}", n - 1),
        format!("{:.4}", full.reliability),
        format!("{analytic:.4}"),
    ]);

    for c in [0usize, 1, 2, 4] {
        let scenario = base
            .clone()
            .with_membership(MembershipSpec::Scamp { c })
            .with_seed(base_seed().wrapping_add(c as u64));
        let report = ProtocolBackend.evaluate(&scenario).expect("valid scenario");
        // Report the view size of a representative construction.
        let views = ScampViews::build(n, c, base_seed());
        table.push(vec![
            format!("SCAMP c={c}"),
            format!("{:.1}", views.mean_view_size()),
            format!("{:.4}", report.reliability),
            format!("{analytic:.4}"),
        ]);
    }
    table.print();
    table.save("e10_membership_ablation.csv");
    println!(
        "checkpoint: with views ≥ (c+1)·ln n ≈ {:.0} (c = 2), partial-view gossip should sit \
         within a few points of the uniform analysis — the paper's membership assumption is safe.",
        3.0 * (n as f64).ln()
    );
}
