//! E10 — membership ablation: the paper assumes targets drawn uniformly
//! from the whole group ("a scalable membership protocol is available",
//! §3). How much reliability is lost when gossip runs over SCAMP-style
//! partial views instead?
//!
//! SCAMP's claim (the paper's reference \[12\]) is that `(c+1)·ln n` views
//! make partial-view gossip behave like uniform gossip; this experiment
//! quantifies the residual gap as a function of `c`.

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::distribution::PoissonFanout;
use gossip_model::poisson_case;
use gossip_netsim::membership::ScampViews;
use gossip_protocol::engine::{ExecutionConfig, MembershipKind};
use gossip_protocol::experiment;

fn main() {
    let n = 2000;
    let (f, q) = (4.0, 0.9);
    let reps = scaled(40);
    let dist = PoissonFanout::new(f);
    let analytic = poisson_case::reliability(f, q).expect("supercritical");

    let mut table = Table::new(
        format!("E10 — full view vs SCAMP partial views, n = {n}, Po({f}), q = {q}, {reps} runs"),
        &["membership", "mean view size", "R simulated", "R analytic (uniform)"],
    );

    let full_cfg = ExecutionConfig::new(n, q);
    // Condition on take-off throughout: the comparison is about *where
    // the message spreads*, not about source-extinction luck.
    let full =
        experiment::reliability_conditional(&full_cfg, &dist, reps, base_seed(), 0.5 * analytic);
    table.push(vec![
        "full view".into(),
        format!("{}", n - 1),
        format!("{:.4}", full.mean()),
        format!("{analytic:.4}"),
    ]);

    for c in [0usize, 1, 2, 4] {
        let cfg = ExecutionConfig::new(n, q).with_membership(MembershipKind::Scamp { c });
        let stats = experiment::reliability_conditional(
            &cfg,
            &dist,
            reps,
            base_seed().wrapping_add(c as u64),
            0.5 * analytic,
        );
        // Report the view size of a representative construction.
        let views = ScampViews::build(n, c, base_seed());
        table.push(vec![
            format!("SCAMP c={c}"),
            format!("{:.1}", views.mean_view_size()),
            format!("{:.4}", stats.mean()),
            format!("{analytic:.4}"),
        ]);
    }
    table.print();
    table.save("e10_membership_ablation.csv");
    println!(
        "checkpoint: with views ≥ (c+1)·ln n ≈ {:.0} (c = 2), partial-view gossip should sit \
         within a few points of the uniform analysis — the paper's membership assumption is safe.",
        3.0 * (n as f64).ln()
    );
}
