//! E11 — topology ablation: the paper's critical point `q_c = 1/E[f]`
//! (Eq. 3) is derived on the complete graph, where every member can
//! gossip to every other. How far does the *measured* critical point
//! move when the same fanout runs over a structured overlay?
//!
//! For each overlay family in `gossip-topology` the graph backend
//! sweeps the failure axis at n = 1000, Po(4) fanout (complete-graph
//! prediction `q_c = 0.25`), and reports the first grid point where the
//! unconditional reliability clears a take-off floor — the empirical
//! critical point. Lattice-like overlays never percolate (1-D chains
//! break); clustered overlays pay for their inter-zone bottleneck;
//! small worlds and shortcut rings land near the mean-field value.
//!
//! Writes `BENCH_topology_ablation.json` (workspace root or
//! `GOSSIP_SNAPSHOT_DIR`) so the measured shifts are committed and
//! reviewable, plus the usual table/CSV.

use std::fmt::Write as _;
use std::path::PathBuf;

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, Scenario};
use gossip_model::{OverlaySpec, TopologySpec};
use gossip_rgraph::GraphBackend;

/// Unconditional-reliability floor that marks "the broadcast percolates".
const TAKEOFF_FLOOR: f64 = 0.2;

fn main() {
    let n = 1000;
    let f = 4.0;
    let reps = scaled(30);
    let qs: Vec<f64> = (1..=40).map(|i| i as f64 * 0.025).collect();

    let base = Scenario::new(n, FanoutSpec::poisson(f))
        .with_replications(reps)
        .with_seed(base_seed());
    let predicted_qc = AnalyticBackend
        .evaluate(&base.clone().with_failure_ratio(0.9))
        .expect("valid scenario")
        .critical_q
        .expect("Poisson has a critical point");

    let overlays: Vec<(&str, TopologySpec)> = vec![
        ("complete", TopologySpec::default()),
        (
            "ring+shortcuts",
            TopologySpec::new(OverlaySpec::Ring { shortcuts: 2000 }),
        ),
        (
            "k-regular lattice",
            TopologySpec::new(OverlaySpec::KRegular { k: 6 }),
        ),
        (
            "watts-strogatz",
            TopologySpec::new(OverlaySpec::WattsStrogatz { k: 8, beta: 0.2 }),
        ),
        (
            "power-law",
            TopologySpec::new(OverlaySpec::PowerLaw {
                alpha: 2.5,
                kmin: 2,
                kmax: 30,
            }),
        ),
        (
            "clustered",
            TopologySpec::new(OverlaySpec::Clustered {
                zones: 10,
                intra: 5,
                inter: 1,
            }),
        ),
    ];

    let mut table = Table::new(
        format!(
            "E11 — empirical q_c per overlay, n = {n}, Po({f}) (complete-graph prediction \
             q_c = {predicted_qc:.3}), {reps} runs/point"
        ),
        &[
            "overlay",
            "spec",
            "empirical q_c",
            "shift",
            "R_raw at q=0.9",
        ],
    );

    let mut json_rows = String::new();
    for (name, spec) in &overlays {
        let mut empirical_qc: Option<f64> = None;
        let mut raw_at_09 = 0.0;
        for &q in &qs {
            let scenario = base
                .clone()
                .with_failure_ratio(q)
                .with_topology(*spec)
                .with_seed(base_seed().wrapping_add((q * 1000.0) as u64));
            let report = GraphBackend.evaluate(&scenario).expect("graph evaluates");
            let raw = report
                .reliability_raw
                .expect("graph backend reports raw reliability");
            if empirical_qc.is_none() && raw >= TAKEOFF_FLOOR {
                empirical_qc = Some(q);
            }
            if (q - 0.9).abs() < 1e-9 {
                raw_at_09 = raw;
            }
        }
        let (qc_text, shift_text, qc_json, shift_json) = match empirical_qc {
            Some(qc) => (
                format!("{qc:.3}"),
                format!("{:+.3}", qc - predicted_qc),
                format!("{qc:.3}"),
                format!("{:.3}", qc - predicted_qc),
            ),
            None => (
                "> 1 (never)".into(),
                "n/a".into(),
                "null".into(),
                "null".into(),
            ),
        };
        table.push(vec![
            name.to_string(),
            spec.label(),
            qc_text,
            shift_text,
            format!("{raw_at_09:.4}"),
        ]);
        let _ = writeln!(
            json_rows,
            "    {{\"overlay\": \"{}\", \"spec\": \"{}\", \"empirical_critical_q\": {}, \
             \"shift_vs_complete_prediction\": {}, \"reliability_raw_at_q09\": {:.4}}},",
            name,
            spec.label(),
            qc_json,
            shift_json,
            raw_at_09
        );
    }
    table.print();
    table.save("e11_topology_ablation.csv");

    let json_rows = json_rows.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"topology_ablation n={} Po({}) graph backend\",\n",
            "  \"replications_per_point\": {},\n",
            "  \"takeoff_floor\": {},\n",
            "  \"q_grid\": \"0.025..1.0 step 0.025\",\n",
            "  \"complete_graph_predicted_critical_q\": {:.4},\n",
            "  \"topologies\": [\n{}\n  ]\n",
            "}}"
        ),
        n, f, reps, TAKEOFF_FLOOR, predicted_qc, json_rows
    );
    let dir = std::env::var("GOSSIP_SNAPSHOT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    let path = dir.join("BENCH_topology_ablation.json");
    std::fs::write(&path, json + "\n").expect("write snapshot");
    println!("wrote {}", path.display());
    println!(
        "checkpoint: structured overlays shift the critical point away from the mean-field \
         q_c = 1/E[f]; lattice-like overlays never percolate at any q."
    );
}
