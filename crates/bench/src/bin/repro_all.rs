//! Runs every experiment in the reproduction index (DESIGN.md §4) in
//! sequence: the paper's Figs. 2–7 plus the extension experiments
//! E7–E11. CSVs land in `results/`.
//!
//! Full run is minutes of CPU; set `GOSSIP_REPS_SCALE=0.2` for a smoke
//! pass.

use std::process::Command;

fn main() {
    let experiments = [
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "critical_point",
        "distribution_zoo",
        "success_vs_t",
        "membership_ablation",
        "finite_size",
        "baselines_rounds",
        "baselines_success",
        "loss_sweep",
    ];
    // Re-exec the sibling binaries so each experiment stays independently
    // runnable and this driver stays trivial.
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let mut failures = Vec::new();
    for exp in experiments {
        println!("\n================== {exp} ==================");
        let status = Command::new(bin_dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            eprintln!("{exp} FAILED with {status}");
            failures.push(exp);
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; CSVs in results/");
    } else {
        panic!("failed experiments: {failures:?}");
    }
}
