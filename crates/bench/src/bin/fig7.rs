//! Fig. 7 — distribution of the gossip-success count `X` among 20
//! executions, n = 2000, **f = 6.0, q = 0.6**, 100 simulations, against
//! `B(20, 0.967)`.
//!
//! The paper's point: `{4.0, 0.9}` (Fig. 6) and `{6.0, 0.6}` (here) have
//! the same product f·q = 3.6 and hence the same one-execution
//! reliability, yet "their corresponding distributions of gossiping
//! success are not exactly identical" — fanout and failure ratio carry
//! different weight for whole-group success. The `repro_all` summary
//! compares both histograms to quantify that asymmetry.

use gossip_bench::figures::{success_count_figure, success_count_table};
use gossip_bench::{base_seed, scaled};

fn main() {
    let (f, q, tag) = (6.0, 0.6, "fig7");
    let n = 2000;
    let execs = 20;
    let sims = scaled(100);
    let fig = success_count_figure(n, f, q, execs, sims, base_seed());
    let title = format!(
        "FIG7 — Pr(X = k) for X = #successes among {execs} executions, n = {n}, f = {f}, q = {q}, {sims} sims"
    );
    let table = success_count_table(&title, &fig);
    table.print();
    table.save(&format!("{tag}_success_distribution_f{f}_q{q}.csv"));

    println!(
        "analysis line: B({execs}, R) with exact R = {:.4} (paper rounds to {});",
        fig.analytic.p(),
        fig.paper_r
    );
    println!(
        "checkpoint: simulated mean X = {:.2}, mode = {}, TV distance to B = {:.4}, chi2 p = {:.3}",
        fig.histogram.mean(),
        fig.histogram.mode(),
        fig.tv_distance,
        fig.chi2_pvalue
    );
    println!(
        "directed refinement: TV distance to B(t, R²) = {:.4} (R² = {:.4}) — \
         the source-extinction factor the undirected model folds away",
        fig.tv_directed,
        fig.analytic_directed.p()
    );
    println!(
        "metric note: X is the paper's §4.2 per-member receipt count; the strict \
         group-wide success count averages {:.2}/20 at this n (see EXPERIMENTS.md)",
        fig.strict_success_mean
    );
}
