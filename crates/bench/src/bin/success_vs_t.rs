//! E9 — validating Eq. 5: the probability that a member is reached at
//! least once grows as `1 − (1 − R)^t` with the number of executions.
//!
//! This is the load-bearing assumption behind the paper's success
//! calculus (executions as independent Bernoulli trials); the experiment
//! measures the per-member hit rate at each `t` and overlays the
//! analytic curve, which now comes from the scenario API: the
//! [`AnalyticBackend`] report's `success_within_t` at `executions = t`.

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::distribution::PoissonFanout;
use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, Scenario};
use gossip_model::success;
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;

fn main() {
    let n = 1000;
    let (f, q) = (4.0, 0.9);
    let trials = scaled(300);
    let cfg = ExecutionConfig::new(n, q);
    let dist = PoissonFanout::new(f);
    let scenario = Scenario::new(n, FanoutSpec::poisson(f)).with_failure_ratio(q);

    let mut table = Table::new(
        format!("E9 — Pr(member reached within t executions), n = {n}, f = {f}, q = {q}, {trials} trials"),
        &["t", "measured", "Eq.5: 1-(1-R)^t"],
    );
    for t in 1..=6usize {
        let measured = experiment::success_within_t(&cfg, &dist, t, trials, base_seed());
        let analytic = AnalyticBackend
            .evaluate(&scenario.clone().with_executions(t as u32))
            .expect("valid scenario")
            .success_within_t;
        table.push_floats(&[t as f64, measured, analytic], 4);
    }
    table.print();
    table.save("e9_success_vs_t.csv");
    let r = AnalyticBackend
        .evaluate(&scenario)
        .expect("valid scenario")
        .reliability;
    println!(
        "checkpoint: Eq. 6 minimum t for ps = 0.999 at R = {r:.4} is {}",
        success::required_executions(r, 0.999).expect("achievable")
    );
}
