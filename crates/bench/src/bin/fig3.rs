//! Fig. 3 — minimum number of executions `t` for success probability
//! p_s = 0.999, as a function of per-execution reliability `S`
//! (analytic, paper Eq. 6: `t ≥ lg(1 − p_s)/lg(1 − S)`).
//!
//! Paper reference: t ≈ 20 near S = 0.3, dropping below 5 around S ≈
//! 0.75 and to ~1–2 as S → 1 (Fig. 3 plots S from 0.2 to ~1.05 with t up
//! to 20).

use gossip_bench::{ascii_plot, Table};
use gossip_model::sweep;

fn main() {
    let ps = 0.999;
    let curve = sweep::fig3_required_executions(ps, 0.20, 0.995, 60)
        .expect("Eq. 6 sweep is well-defined on this grid");

    let mut table = Table::new(
        "Fig. 3 — minimum executions t for Pr(success) ≥ 0.999 (Eq. 6)",
        &["S", "t_min"],
    );
    for p in &curve.points {
        table.push(vec![format!("{:.4}", p.x), format!("{}", p.y as u32)]);
    }
    table.print();
    table.save("fig3_required_executions.csv");

    let series = vec![(
        "t_min(S), ps=0.999",
        curve.points.iter().map(|p| (p.x, p.y)).collect::<Vec<_>>(),
    )];
    println!("{}", ascii_plot(&series, 70, 20));

    // Paper's §5.2 worked example: S = 0.967 → t = 3.
    let t_0967 = gossip_model::success::required_executions(0.967, ps)
        .expect("0.967 is a valid reliability");
    println!("checkpoint: t(S=0.967, ps=0.999) = {t_0967} (paper: \"greater than three\" → 3)");
}
