//! Fig. 3 — minimum number of executions `t` for success probability
//! p_s = 0.999, as a function of per-execution reliability `S`
//! (analytic, paper Eq. 6: `t ≥ lg(1 − p_s)/lg(1 − S)`).
//!
//! Ported to the scenario API: `t_min` is found by stepping the
//! scenario's `executions` knob until the [`AnalyticBackend`] report's
//! `success_within_t` (Eq. 5) crosses `p_s` — the closed form (Eq. 6)
//! is asserted to agree at every point.
//!
//! Paper reference: t ≈ 20 near S = 0.3, dropping below 5 around S ≈
//! 0.75 and to ~1–2 as S → 1.

use gossip_bench::{ascii_plot, Table};
use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, Scenario};
use gossip_model::{poisson_case, success};

fn main() {
    let ps = 0.999;
    let steps = 60;
    let (s_min, s_max) = (0.20, 0.995);

    let mut table = Table::new(
        "Fig. 3 — minimum executions t for Pr(success) ≥ 0.999 (Eq. 6)",
        &["S", "t_min"],
    );
    let mut points = Vec::with_capacity(steps);
    for i in 0..steps {
        let s = s_min + (s_max - s_min) * i as f64 / (steps - 1) as f64;
        // A scenario whose one-execution reliability is S (invert
        // Eq. 11 for the fanout at q = 1), then step t upward until the
        // reported Eq. 5 success probability clears p_s.
        let z = poisson_case::mean_fanout_for(s, 1.0).expect("Eq. 12 well-defined");
        let scenario = Scenario::new(1000, FanoutSpec::poisson(z));
        let mut t_min = 0;
        for t in 1..=64u32 {
            let report = AnalyticBackend
                .evaluate(&scenario.clone().with_executions(t))
                .expect("valid scenario");
            if report.success_within_t >= ps {
                t_min = t;
                break;
            }
        }
        assert!(t_min > 0, "t_min must exist for S = {s}");
        // The closed form must agree with the stepped search (the
        // scenario's reliability differs from S only by solver epsilon,
        // so allow the boundary step).
        let closed = success::required_executions(s, ps).expect("supercritical S");
        assert!(
            (t_min as i64 - closed as i64).abs() <= 1,
            "scenario search t = {t_min} vs Eq. 6 t = {closed} at S = {s}"
        );
        table.push(vec![format!("{s:.4}"), format!("{t_min}")]);
        points.push((s, t_min as f64));
    }
    table.print();
    table.save("fig3_required_executions.csv");

    let series = vec![("t_min(S), ps=0.999", points.clone())];
    println!("{}", ascii_plot(&series, 70, 18));

    println!(
        "checkpoint: t_min({:.2}) = {}, t_min({:.2}) = {} (paper: ~20 at small S, 1-2 near 1)",
        points[0].0,
        points[0].1,
        points.last().unwrap().0,
        points.last().unwrap().1
    );
}
