//! Figs. 5a/5b — reliability vs mean fanout in a **5000-node** group.
//!
//! Same procedure as Fig. 4; the paper observes the simulation "tallies
//! with the analytical results better than in Fig. 4, which indicates
//! that our modeling works better in larger scale systems". The
//! `finite_size` binary quantifies that scaling claim directly.

use gossip_bench::figures::{max_supercritical_gap, reliability_table, reliability_vs_fanout};
use gossip_bench::{ascii_plot, base_seed, scaled};
use gossip_model::sweep::paper_fanout_grid;

fn main() {
    let n = 5000;
    let reps = scaled(20);
    let panels: [(&str, &[f64]); 2] = [("a", &[0.1, 0.3, 0.5, 1.0]), ("b", &[0.4, 0.6, 0.8, 1.0])];
    for (panel, qs) in panels {
        let points = reliability_vs_fanout(n, qs, reps, base_seed());
        let title =
            format!("Fig. 5{panel} — reliability vs mean fanout, n = {n}, {reps} runs/point");
        let table = reliability_table(&title, qs, &points);
        table.print();
        table.save(&format!("fig5{panel}_reliability_n{n}.csv"));

        let grid = paper_fanout_grid();
        let series: Vec<(String, Vec<(f64, f64)>)> = qs
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                (
                    format!("sim q={q}"),
                    grid.iter()
                        .enumerate()
                        .map(|(fi, &f)| (f, points[qi * grid.len() + fi].simulated))
                        .collect(),
                )
            })
            .collect();
        let series_refs: Vec<(&str, Vec<(f64, f64)>)> = series
            .iter()
            .map(|(l, p)| (l.as_str(), p.clone()))
            .collect();
        println!("{}", ascii_plot(&series_refs, 70, 20));

        let gap = max_supercritical_gap(&points);
        println!(
            "checkpoint: max |sim − analysis| over supercritical points = {gap:.4} \
             (should be smaller than the Fig. 4 gap at n = 1000)\n"
        );
    }
}
