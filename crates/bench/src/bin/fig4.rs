//! Figs. 4a/4b — reliability vs mean fanout in a **1000-node** group:
//! simulation (20 runs per `{f, q}` point) against the analytic giant
//! component (Eq. 11).
//!
//! Paper procedure (§5.1): q ∈ {0.1, 0.3, 0.5, 1.0} (4a) and
//! {0.4, 0.6, 0.8, 1.0} (4b); f from 1.1 to 6.7 step 0.4; every critical
//! point respects q > 1/f; "the results of simulations tally with the
//! analytical results except very few points".

use gossip_bench::figures::{max_supercritical_gap, reliability_table, reliability_vs_fanout};
use gossip_bench::{ascii_plot, base_seed, scaled};
use gossip_model::sweep::paper_fanout_grid;

fn main() {
    run(1000, "fig4");
}

/// Shared driver for Figs. 4 (n = 1000) and 5 (n = 5000).
pub fn run(n: usize, tag: &str) {
    let reps = scaled(20); // paper: 20 runs per point
    let panels: [(&str, &[f64]); 2] = [("a", &[0.1, 0.3, 0.5, 1.0]), ("b", &[0.4, 0.6, 0.8, 1.0])];
    for (panel, qs) in panels {
        let points = reliability_vs_fanout(n, qs, reps, base_seed());
        let title =
            format!("Fig. {tag}{panel} — reliability vs mean fanout, n = {n}, {reps} runs/point");
        let table = reliability_table(&title, qs, &points);
        table.print();
        table.save(&format!("{tag}{panel}_reliability_n{n}.csv"));

        // Simulated series only (analytic curves are smooth; the plot is
        // for eyeballing agreement).
        let grid = paper_fanout_grid();
        let series: Vec<(String, Vec<(f64, f64)>)> = qs
            .iter()
            .enumerate()
            .map(|(qi, q)| {
                (
                    format!("sim q={q}"),
                    grid.iter()
                        .enumerate()
                        .map(|(fi, &f)| (f, points[qi * grid.len() + fi].simulated))
                        .collect(),
                )
            })
            .collect();
        let series_refs: Vec<(&str, Vec<(f64, f64)>)> = series
            .iter()
            .map(|(l, p)| (l.as_str(), p.clone()))
            .collect();
        println!("{}", ascii_plot(&series_refs, 70, 20));

        let gap = max_supercritical_gap(&points);
        println!(
            "checkpoint: max |sim − analysis| over supercritical points = {gap:.4} \
             (paper: curves \"tally\" except few points)\n"
        );
    }
}
