//! E14 — message loss as bond percolation (extension beyond the paper).
//!
//! The paper models crashes only; real networks also drop messages. The
//! generating-function model extends to joint site+bond percolation
//! (`gossip_model::loss`), predicting for Poisson fanout
//! `R = 1 − e^{−z(1−ℓ)qR}` and a critical loss `ℓ_c = 1 − 1/(zq)`.
//! This sweep validates both against the simulator's actual loss model.

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::distribution::PoissonFanout;
use gossip_model::loss::{poisson_reliability_with_loss, LossyGossip};
use gossip_netsim::{LatencyModel, NetworkConfig};
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;

fn main() {
    let n = 2000;
    let (f, q) = (4.0, 0.9);
    let reps = scaled(30);
    let dist = PoissonFanout::new(f);
    let loss_crit = LossyGossip::new(&dist, q, 0.0)
        .expect("valid parameters")
        .critical_loss()
        .expect("supercritical at zero loss");

    let mut table = Table::new(
        format!("E14 — reliability vs message loss, n = {n}, Po({f}), q = {q}, {reps} runs"),
        &["loss", "R analytic (bond+site)", "R simulated", "status"],
    );
    for i in 0..=16 {
        let loss = i as f64 * 0.05;
        let analytic = poisson_reliability_with_loss(f, q, loss).expect("valid loss");
        let cfg = ExecutionConfig::new(n, q).with_network(
            NetworkConfig::new(LatencyModel::constant_millis(1)).with_loss(loss),
        );
        let stats = experiment::reliability_conditional(
            &cfg,
            &dist,
            reps,
            base_seed().wrapping_add(i as u64),
            0.5 * analytic,
        );
        let sim = if stats.count() == 0 { 0.0 } else { stats.mean() };
        let status = if loss < loss_crit { "alive" } else { "DEAD (ℓ > ℓ_c)" };
        table.push(vec![
            format!("{loss:.2}"),
            format!("{analytic:.4}"),
            format!("{sim:.4}"),
            status.into(),
        ]);
    }
    table.print();
    table.save("e14_loss_sweep.csv");
    println!(
        "checkpoint: critical loss ℓ_c = 1 − 1/(z·q) = {loss_crit:.4}; \
         Poisson loss is exactly fanout thinning (R = f(z·(1−ℓ)·q))."
    );
}
