//! E14 — message loss as bond percolation (extension beyond the paper).
//!
//! The paper models crashes only; real networks also drop messages. The
//! generating-function model extends to joint site+bond percolation
//! (`gossip_model::loss`), predicting for Poisson fanout
//! `R = 1 − e^{−z(1−ℓ)qR}` and a critical loss `ℓ_c = 1 − 1/(zq)`.
//!
//! Ported to the scenario API: one [`SweepGrid`] over the loss axis,
//! evaluated by [`AnalyticBackend`] (the bond+site prediction) and by
//! [`NetSimBackend`] (the simulator's actual per-message loss model).

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::distribution::PoissonFanout;
use gossip_model::loss::LossyGossip;
use gossip_model::scenario::{AnalyticBackend, FanoutSpec, Scenario, SweepGrid};
use gossip_protocol::NetSimBackend;

fn main() {
    let n = 2000;
    let (f, q) = (4.0, 0.9);
    let reps = scaled(30);
    let losses: Vec<f64> = (0..=16).map(|i| i as f64 * 0.05).collect();

    let dist = PoissonFanout::new(f);
    let loss_crit = LossyGossip::new(&dist, q, 0.0)
        .expect("valid parameters")
        .critical_loss()
        .expect("supercritical at zero loss");

    let grid = SweepGrid::new(
        Scenario::new(n, FanoutSpec::poisson(f))
            .with_failure_ratio(q)
            .with_replications(reps)
            .with_seed(base_seed()),
    )
    .over_losses(&losses);
    let analytic = grid.run(&AnalyticBackend);
    let simulated = grid.run(&NetSimBackend);

    let mut table = Table::new(
        format!("E14 — reliability vs message loss, n = {n}, Po({f}), q = {q}, {reps} runs"),
        &[
            "loss",
            "R analytic (bond+site)",
            "R simulated (netsim)",
            "status",
        ],
    );
    for (ana, sim) in analytic.iter().zip(&simulated) {
        let loss = ana.scenario.loss;
        let analytic_r = ana
            .report
            .as_ref()
            .expect("analytic always prices")
            .reliability;
        let sim_r = sim
            .report
            .as_ref()
            .expect("netsim runs every cell")
            .reliability;
        let status = if loss < loss_crit {
            "alive"
        } else {
            "DEAD (ℓ > ℓ_c)"
        };
        table.push(vec![
            format!("{loss:.2}"),
            format!("{analytic_r:.4}"),
            format!("{sim_r:.4}"),
            status.into(),
        ]);
    }
    table.print();
    table.save("e14_loss_sweep.csv");
    println!(
        "checkpoint: critical loss ℓ_c = 1 − 1/(z·q) = {loss_crit:.4}; \
         Poisson loss is exactly fanout thinning (R = f(z·(1−ℓ)·q))."
    );
}
