//! E12 — fault ablation: reliability versus fault intensity for each of
//! the four fault families, at the paper's headline operating point
//! (n = 1000, Po(4) fanout), measured on the discrete-event simulator.
//!
//! For every family the table also carries the best i.i.d. prediction
//! the paper's machinery can make — Eq. 11 at an effective `q` or an
//! effective mean loss — and the divergence between the two. That
//! divergence is the point of the exercise: it locates where the
//! independent-failure analysis stops tracking a *structured* fault.
//!
//! * **churn** — symmetric join/leave at 0–100 members/s over a 200 ms
//!   horizon, on top of q = 0.9. The prediction ignores churn entirely
//!   (no closed form), so divergence grows with the rate.
//! * **zones** — k of 10 zones of a clustered overlay killed at t = 0,
//!   q = 1 otherwise; prediction is Eq. 11 at q = 1 − k/10.
//! * **bursty** — Gilbert-Elliott loss swept by stationary mean;
//!   prediction is Eq. 11 with i.i.d. loss at the same mean.
//! * **adversary** — f links blocked (worst-case vs random), q = 1;
//!   prediction treats the blocked fraction f/(n(n−1)) as extra i.i.d.
//!   loss — spectacularly wrong for the worst-case adversary, which
//!   silences the source with f = n − 1 ≈ 0.1% of the links.
//!
//! Writes `BENCH_fault_ablation.json` (workspace root or
//! `GOSSIP_SNAPSHOT_DIR`) so the measured break-down points are
//! committed and reviewable, plus the usual table/CSV.

use std::fmt::Write as _;
use std::path::PathBuf;

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, Scenario};
use gossip_model::{
    AdversaryStrategy, BurstySpec, ChurnSpec, FaultSpec, OverlaySpec, TopologySpec,
};
use gossip_protocol::NetSimBackend;

/// Divergence above which we call the paper's prediction broken.
const BREAKDOWN: f64 = 0.05;

struct Row {
    family: &'static str,
    intensity: String,
    measured_raw: f64,
    predicted: f64,
}

impl Row {
    fn divergence(&self) -> f64 {
        (self.measured_raw - self.predicted).abs()
    }
}

fn analytic_r(scenario: &Scenario) -> f64 {
    AnalyticBackend
        .evaluate(scenario)
        .expect("analytic prices")
        .reliability
}

fn netsim_raw(scenario: &Scenario) -> f64 {
    NetSimBackend
        .evaluate(scenario)
        .expect("netsim evaluates")
        .reliability_raw
        .expect("netsim reports raw")
}

fn main() {
    let n = 1000;
    let f = 4.0;
    let reps = scaled(30);
    let base = Scenario::new(n, FanoutSpec::poisson(f))
        .with_replications(reps)
        .with_seed(base_seed());
    let mut rows: Vec<Row> = Vec::new();

    // -- churn ---------------------------------------------------------
    // The prediction is churn-blind: Eq. 11 at q = 0.9 regardless of
    // rate. Joiners who arrive after quiescence sit unreached in the
    // denominator, so the measured curve sags as the rate climbs.
    let churn_base = base.clone().with_failure_ratio(0.9);
    let churn_prediction = analytic_r(&churn_base);
    for rate in [0.0, 5.0, 10.0, 20.0, 50.0, 100.0] {
        let scenario = if rate == 0.0 {
            churn_base.clone()
        } else {
            churn_base
                .clone()
                .with_faults(FaultSpec::none().with_churn(ChurnSpec::symmetric(rate, 200)))
        };
        rows.push(Row {
            family: "churn",
            intensity: format!("{rate}/s over 200ms, q=0.9"),
            measured_raw: netsim_raw(&scenario),
            predicted: churn_prediction,
        });
    }

    // -- correlated zone failures -------------------------------------
    // k of 10 zones die at t = 0 (source's zone 0 spared); the i.i.d.
    // stand-in is Eq. 11 at q = 1 − k/10, rescaled by the overlay's own
    // fault-free baseline so the divergence isolates the *correlation*
    // structure rather than the (already known, see E11) clustered-
    // overlay penalty.
    let clustered = TopologySpec::new(OverlaySpec::Clustered {
        zones: 10,
        intra: 5,
        inter: 1,
    });
    let zone_baseline = netsim_raw(&base.clone().with_topology(clustered));
    let analytic_q1 = analytic_r(&base.clone().with_failure_ratio(1.0));
    for k in 0..=5usize {
        let mut scenario = base.clone().with_topology(clustered);
        if k > 0 {
            let killed: Vec<usize> = (1..=k).collect();
            scenario = scenario.with_faults(FaultSpec::none().with_zone_failure(killed, 0));
        }
        let measured_raw = if k == 0 {
            zone_baseline
        } else {
            netsim_raw(&scenario)
        };
        let iid = analytic_r(&base.clone().with_failure_ratio(1.0 - k as f64 / 10.0));
        rows.push(Row {
            family: "zones",
            intensity: format!("{k}/10 zones killed at t=0, q=1"),
            measured_raw,
            predicted: iid / analytic_q1 * zone_baseline,
        });
    }

    // -- bursty (Gilbert-Elliott) loss --------------------------------
    // Sweep the stationary mean with a fixed bad-state exit rate
    // p_bg = 0.15 (mean burst length ≈ 6.7 transmissions) and
    // loss_bad = 0.8; the i.i.d. stand-in is Eq. 11 at the same mean.
    for mean in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let pi_bad = mean / 0.8;
        let p_bg = 0.15;
        let p_gb = pi_bad * p_bg / (1.0 - pi_bad);
        let scenario =
            base.clone()
                .with_failure_ratio(0.9)
                .with_faults(FaultSpec::none().with_bursty_loss(BurstySpec {
                    p_gb,
                    p_bg,
                    loss_good: 0.0,
                    loss_bad: 0.8,
                }));
        let predicted = analytic_r(&base.clone().with_failure_ratio(0.9).with_loss(mean));
        rows.push(Row {
            family: "bursty",
            intensity: format!("mean loss {mean}, burst ~6.7 tx, q=0.9"),
            measured_raw: netsim_raw(&scenario),
            predicted,
        });
    }

    // -- adversarial blocking -----------------------------------------
    // f blocked links out of n(n−1) ≈ 10^6; the i.i.d. stand-in treats
    // the blocked fraction as extra loss. The worst-case adversary
    // spends its budget on whole uplink fans starting at the source.
    let links = (n * (n - 1)) as f64;
    for strategy in [AdversaryStrategy::WorstCase, AdversaryStrategy::Random] {
        let tag = match strategy {
            AdversaryStrategy::WorstCase => "worst",
            AdversaryStrategy::Random => "random",
        };
        for f_links in [0usize, 250, 500, 999, 2000, 5000] {
            let scenario = if f_links == 0 {
                base.clone().with_failure_ratio(1.0)
            } else {
                base.clone()
                    .with_failure_ratio(1.0)
                    .with_faults(FaultSpec::none().with_adversary(f_links, strategy))
            };
            let predicted = analytic_r(
                &base
                    .clone()
                    .with_failure_ratio(1.0)
                    .with_loss(f_links as f64 / links),
            );
            rows.push(Row {
                family: "adversary",
                intensity: format!("f={f_links} {tag}, q=1"),
                measured_raw: netsim_raw(&scenario),
                predicted,
            });
        }
    }

    // -- report --------------------------------------------------------
    let mut table = Table::new(
        format!(
            "E12 — fault ablation, n = {n}, Po({f}) netsim backend, {reps} runs/point \
             (prediction = Eq. 11 at the i.i.d. equivalent)"
        ),
        &[
            "family",
            "intensity",
            "raw R",
            "iid prediction",
            "divergence",
        ],
    );
    let mut json_rows = String::new();
    for row in &rows {
        table.push(vec![
            row.family.to_string(),
            row.intensity.clone(),
            format!("{:.4}", row.measured_raw),
            format!("{:.4}", row.predicted),
            format!("{:.4}", row.divergence()),
        ]);
        let _ = writeln!(
            json_rows,
            "    {{\"family\": \"{}\", \"intensity\": \"{}\", \"reliability_raw\": {:.4}, \
             \"iid_prediction\": {:.4}, \"divergence\": {:.4}}},",
            row.family,
            row.intensity,
            row.measured_raw,
            row.predicted,
            row.divergence()
        );
    }
    table.print();
    table.save("e12_fault_ablation.csv");

    // Break-down points: first intensity per family where the i.i.d.
    // prediction stops tracking the measurement.
    println!();
    let mut breakdowns = String::new();
    for family in ["churn", "zones", "bursty", "adversary"] {
        let broke = rows
            .iter()
            .find(|r| r.family == family && r.divergence() > BREAKDOWN);
        match broke {
            Some(row) => {
                println!(
                    "breakdown[{family}]: prediction first off by > {BREAKDOWN} at {} \
                     (measured {:.4} vs predicted {:.4})",
                    row.intensity, row.measured_raw, row.predicted
                );
                let _ = writeln!(
                    breakdowns,
                    "    {{\"family\": \"{family}\", \"first_breakdown\": \"{}\", \
                     \"measured\": {:.4}, \"predicted\": {:.4}}},",
                    row.intensity, row.measured_raw, row.predicted
                );
            }
            None => {
                println!("breakdown[{family}]: prediction tracks everywhere on this grid");
                let _ = writeln!(
                    breakdowns,
                    "    {{\"family\": \"{family}\", \"first_breakdown\": null}},"
                );
            }
        }
    }

    // Headline sanity: the worst-case adversary at f = n − 1 blocks
    // ~0.1% of links and zeroes the broadcast; the i.i.d. equivalent
    // barely notices. Robust even at GOSSIP_REPS_SCALE=0.2.
    let headline = rows
        .iter()
        .find(|r| r.family == "adversary" && r.intensity.starts_with("f=999 worst"))
        .expect("headline row present");
    assert!(
        headline.measured_raw < 0.05,
        "worst-case f=n-1 must silence the source, got {:.4}",
        headline.measured_raw
    );
    assert!(
        headline.predicted > 0.9,
        "iid equivalent of 0.1% blocked links must predict near-full delivery, got {:.4}",
        headline.predicted
    );

    let json_rows = json_rows.trim_end().trim_end_matches(',').to_string();
    let breakdowns = breakdowns.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fault_ablation n={} Po({}) netsim backend\",\n",
            "  \"replications_per_point\": {},\n",
            "  \"breakdown_divergence\": {},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"breakdowns\": [\n{}\n  ]\n",
            "}}"
        ),
        n, f, reps, BREAKDOWN, json_rows, breakdowns
    );
    let dir = std::env::var("GOSSIP_SNAPSHOT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    let path = dir.join("BENCH_fault_ablation.json");
    std::fs::write(&path, json + "\n").expect("write snapshot");
    println!("wrote {}", path.display());
    println!(
        "checkpoint: the q_c machinery prices independent faults only — correlated \
         structure (bursts, zones, an adversary's aim) breaks the prediction at \
         intensities the i.i.d. equivalents barely register."
    );
}
