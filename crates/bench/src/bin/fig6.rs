//! Fig. 6 — distribution of the gossip-success count `X` among 20
//! executions, n = 2000, **f = 4.0, q = 0.9**, 100 simulations, against
//! the analysis line `B(20, 0.967)`.
//!
//! Paper procedure (§5.2): "for each pair of parameters, we run our
//! gossiping algorithm for 20 times in one simulation, and each
//! simulation is repeated for 100 times; then we report the distribution
//! of the number X".

use gossip_bench::figures::{success_count_figure, success_count_table};
use gossip_bench::{base_seed, scaled};

fn main() {
    run(4.0, 0.9, "fig6");
}

/// Shared driver for Figs. 6 and 7.
pub fn run(f: f64, q: f64, tag: &str) {
    let n = 2000;
    let execs = 20;
    let sims = scaled(100);
    let fig = success_count_figure(n, f, q, execs, sims, base_seed());
    let title = format!(
        "{} — Pr(X = k) for X = #successes among {execs} executions, n = {n}, f = {f}, q = {q}, {sims} sims",
        tag.to_uppercase()
    );
    let table = success_count_table(&title, &fig);
    table.print();
    table.save(&format!("{tag}_success_distribution_f{f}_q{q}.csv"));

    println!(
        "analysis line: B({execs}, R) with exact R = {:.4} (paper rounds to {});",
        fig.analytic.p(),
        fig.paper_r
    );
    println!(
        "checkpoint: simulated mean X = {:.2}, mode = {}, TV distance to B = {:.4}, chi2 p = {:.3}",
        fig.histogram.mean(),
        fig.histogram.mode(),
        fig.tv_distance,
        fig.chi2_pvalue
    );
    println!(
        "directed refinement: TV distance to B(t, R²) = {:.4} (R² = {:.4}) — \
         the source-extinction factor the undirected model folds away",
        fig.tv_directed,
        fig.analytic_directed.p()
    );
    println!(
        "metric note: X is the paper's §4.2 per-member receipt count; the strict \
         group-wide success count averages {:.2}/20 at this n (see EXPERIMENTS.md)",
        fig.strict_success_mean
    );
    println!(
        "paper checkpoint: both parameter pairs give the same one-execution reliability \
         (f·q = {:.2}), and Eq. 6 then requires t ≥ 3 at ps = 0.999\n",
        f * q
    );
}
