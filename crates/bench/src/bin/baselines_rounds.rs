//! E12 — dissemination dynamics: the related-work models of §2 against
//! the live protocol, round by round.
//!
//! The paper's model is *static* (it answers "how many, eventually", not
//! "how fast"); the pbcast recurrence and the SI epidemic model answer
//! the dynamics question but, as the paper argues, mispredict the
//! endpoint under failures (no critical point, no extinction). This
//! experiment shows both things at once: measured cumulative infected
//! fraction by hop (= round) vs the two baselines, with the paper-model
//! reliability as the measured end point's analytic twin.

use gossip_bench::{ascii_plot, base_seed, scaled, Table};
use gossip_model::baselines::pbcast::PbcastRecurrence;
use gossip_model::baselines::si::SiModel;
use gossip_model::distribution::PoissonFanout;
use gossip_model::poisson_case;
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;

fn main() {
    let n = 2000;
    let (f, q) = (4.0, 0.9);
    let reps = scaled(40);
    let analytic = poisson_case::reliability(f, q).expect("supercritical");

    let cfg = ExecutionConfig::new(n, q);
    let dist = PoissonFanout::new(f);
    let measured = experiment::hop_profile(&cfg, &dist, reps, base_seed(), 0.5 * analytic);

    let pbcast = PbcastRecurrence::new(n, f, q);
    let pbcast_traj = pbcast.trajectory(measured.len().saturating_sub(1).max(1));
    let si = SiModel::single_source(f, n).with_failures(q);

    let mut table = Table::new(
        format!(
            "E12 — infected fraction by round, n = {n}, Po({f}), q = {q} \
             (measured = hop profile over {reps} take-off executions)"
        ),
        &[
            "round",
            "measured",
            "pbcast recurrence",
            "SI epidemic",
            "paper model (endpoint)",
        ],
    );
    for (h, &m) in measured.iter().enumerate() {
        let pb = pbcast_traj.get(h).copied().unwrap_or(f64::NAN) / n as f64;
        // SI counts infected among all n; measured counts nonfailed
        // reached among nonfailed — rescale SI by 1/q for comparability.
        let si_frac = (si.infected_fraction(h as f64) / q).min(1.0);
        table.push_floats(&[h as f64, m, pb, si_frac, analytic], 4);
    }
    table.print();
    table.save("e12_baselines_rounds.csv");

    let series: Vec<(&str, Vec<(f64, f64)>)> = vec![
        (
            "measured",
            measured
                .iter()
                .enumerate()
                .map(|(h, &v)| (h as f64, v))
                .collect(),
        ),
        (
            "pbcast",
            pbcast_traj
                .iter()
                .enumerate()
                .map(|(h, &v)| (h as f64, v / n as f64))
                .collect(),
        ),
        (
            "SI",
            (0..measured.len())
                .map(|h| (h as f64, (si.infected_fraction(h as f64) / q).min(1.0)))
                .collect(),
        ),
    ];
    println!("{}", ascii_plot(&series, 70, 20));

    let final_measured = measured.last().copied().unwrap_or(0.0);
    let final_pbcast = pbcast_traj.last().copied().unwrap_or(0.0) / n as f64;
    println!("endpoints: measured {final_measured:.4} | paper model {analytic:.4} | pbcast {final_pbcast:.4} | SI → 1.0");
    println!(
        "checkpoint: the paper model nails the endpoint; the baselines track the ramp \
         but overshoot the endpoint (no extinction/critical point) — §2's critique, quantified."
    );
}
