//! E13 — stream sweep: per-message reliability and sustained throughput
//! of a k-message stream versus the per-node bandwidth cap B, measured
//! on the discrete-event simulator at the paper's headline operating
//! point (n = 1000, Po(4), 1 ms hops).
//!
//! The paper prices one message at a time, so its machinery predicts a
//! stream only under the i.i.d. extension: k concurrent broadcasts that
//! never contend. The sweep locates where that extension breaks:
//!
//! * **load sweep** — k ∈ {1, 4, 16, 64} × B ∈ {∞, 2, 4, 8} frames per
//!   round, loss-free, with the send queue bounded at 32 frames. While
//!   offered load (k · E[fanout] copies per relay burst) fits the frame
//!   budget, every row tracks the Eq. 11 closed form; past it, the
//!   bounded queue tail-drops whole fans and per-message reliability
//!   collapses. Rumor piggybacking (≤ 8 ids/frame) moves the same
//!   copies in an eighth of the frames and holds the line at equal B.
//! * **loss sweep** — the contended corner (k = 16, B = 4) against
//!   i.i.d. frame loss 0–0.3: a lost batched frame loses all its ids
//!   (shared fate), so batching's margin narrows as loss climbs but
//!   stays ahead of single-id frames.
//!
//! Writes `BENCH_stream_sweep.json` (workspace root or
//! `GOSSIP_SNAPSHOT_DIR`) so the measured collapse points are committed
//! and reviewable, plus the usual table/CSV.

use std::fmt::Write as _;
use std::path::PathBuf;

use gossip_bench::{base_seed, scaled, Table};
use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, Scenario};
use gossip_model::TrafficSpec;
use gossip_protocol::NetSimBackend;

struct Row {
    sweep: &'static str,
    k: usize,
    bandwidth: Option<usize>,
    batched: bool,
    loss: f64,
    reliability_mean: f64,
    reliability_min: f64,
    messages_per_sec: f64,
    p50: f64,
    p90: f64,
    p99: f64,
    copies_dropped: f64,
    predicted: f64,
}

impl Row {
    fn divergence(&self) -> f64 {
        (self.reliability_mean - self.predicted).abs()
    }

    fn cap_label(&self) -> String {
        self.bandwidth
            .map_or_else(|| "inf".into(), |b| b.to_string())
    }
}

fn measure(base: &Scenario, sweep: &'static str, spec: TrafficSpec, predicted: f64) -> Row {
    let scenario = base.clone().with_traffic(spec);
    let report = NetSimBackend.evaluate(&scenario).expect("netsim streams");
    let t = report.traffic.expect("stream scenarios report traffic");
    Row {
        sweep,
        k: spec.messages,
        bandwidth: spec.bandwidth,
        batched: spec.batched(),
        loss: scenario.loss,
        reliability_mean: t.reliability_mean,
        reliability_min: t.reliability_min,
        messages_per_sec: t.messages_per_sec.expect("netsim streams are timed"),
        p50: t.latency_rounds_p50.unwrap_or(0.0),
        p90: t.latency_rounds_p90.unwrap_or(0.0),
        p99: t.latency_rounds_p99.unwrap_or(0.0),
        copies_dropped: t.copies_dropped.unwrap_or(0.0),
        predicted,
    }
}

/// The i.i.d. stand-in: the single-message Eq. 11 closed form at this
/// loss rate, which an uncontended stream repeats per message.
fn iid_prediction(base: &Scenario) -> f64 {
    AnalyticBackend
        .evaluate(&base.clone().with_traffic(TrafficSpec::stream(1)))
        .expect("analytic prices the uncontended stream")
        .traffic
        .expect("analytic fills the traffic section")
        .reliability_mean
}

fn main() {
    let n = 1000;
    let f = 4.0;
    let reps = scaled(30);
    let base = Scenario::new(n, FanoutSpec::poisson(f))
        .with_replications(reps)
        .with_seed(base_seed());
    let mut rows: Vec<Row> = Vec::new();

    // -- load sweep: k × B × batching, loss-free ----------------------
    let loss_free_prediction = iid_prediction(&base);
    for k in [1usize, 4, 16, 64] {
        rows.push(measure(
            &base,
            "load",
            TrafficSpec::stream(k),
            loss_free_prediction,
        ));
        for b in [2usize, 4, 8] {
            let capped = TrafficSpec::stream(k)
                .with_bandwidth(b)
                .with_queue_capacity(32);
            rows.push(measure(&base, "load", capped, loss_free_prediction));
            rows.push(measure(
                &base,
                "load",
                capped.with_piggyback(8),
                loss_free_prediction,
            ));
        }
    }

    // -- loss sweep: the contended corner under frame loss ------------
    for loss in [0.0, 0.1, 0.2, 0.3] {
        let lossy = base.clone().with_loss(loss);
        let predicted = iid_prediction(&lossy);
        let capped = TrafficSpec::stream(16)
            .with_bandwidth(4)
            .with_queue_capacity(32);
        rows.push(measure(&lossy, "loss", capped, predicted));
        rows.push(measure(&lossy, "loss", capped.with_piggyback(8), predicted));
    }

    // -- report --------------------------------------------------------
    let mut table = Table::new(
        format!(
            "E13 — stream sweep, n = {n}, Po({f}) netsim backend, {reps} runs/point \
             (prediction = Eq. 11 per message, i.i.d. extension)"
        ),
        &[
            "sweep", "k", "B", "batch", "loss", "mean R", "min R", "msg/s", "p50", "p90", "p99",
            "dropped", "iid pred", "diverg",
        ],
    );
    let mut json_rows = String::new();
    for row in &rows {
        table.push(vec![
            row.sweep.to_string(),
            row.k.to_string(),
            row.cap_label(),
            if row.batched { "pb8" } else { "off" }.to_string(),
            format!("{:.1}", row.loss),
            format!("{:.4}", row.reliability_mean),
            format!("{:.4}", row.reliability_min),
            format!("{:.0}", row.messages_per_sec),
            format!("{:.0}", row.p50),
            format!("{:.0}", row.p90),
            format!("{:.0}", row.p99),
            format!("{:.0}", row.copies_dropped),
            format!("{:.4}", row.predicted),
            format!("{:.4}", row.divergence()),
        ]);
        let _ = writeln!(
            json_rows,
            "    {{\"sweep\": \"{}\", \"k\": {}, \"bandwidth\": {}, \"batched\": {}, \
             \"loss\": {:.1}, \"reliability_mean\": {:.4}, \"reliability_min\": {:.4}, \
             \"messages_per_sec\": {:.1}, \"latency_rounds_p50\": {:.0}, \
             \"latency_rounds_p90\": {:.0}, \"latency_rounds_p99\": {:.0}, \
             \"copies_dropped\": {:.0}, \"iid_prediction\": {:.4}, \"divergence\": {:.4}}},",
            row.sweep,
            row.k,
            row.bandwidth
                .map_or_else(|| "null".into(), |b| b.to_string()),
            row.batched,
            row.loss,
            row.reliability_mean,
            row.reliability_min,
            row.messages_per_sec,
            row.p50,
            row.p90,
            row.p99,
            row.copies_dropped,
            row.predicted,
            row.divergence()
        );
    }
    table.print();
    table.save("e13_stream_sweep.csv");

    // Collapse points: first (k, B) per batching mode where the i.i.d.
    // prediction stops tracking the loss-free measurement.
    println!();
    let mut collapses = String::new();
    for batched in [false, true] {
        let tag = if batched { "piggyback" } else { "unbatched" };
        let broke = rows.iter().find(|r| {
            r.sweep == "load"
                && r.batched == batched
                && r.bandwidth.is_some()
                && r.divergence() > 0.05
        });
        match broke {
            Some(row) => {
                println!(
                    "collapse[{tag}]: prediction first off by > 0.05 at k={}, B={} \
                     (measured {:.4} vs predicted {:.4})",
                    row.k,
                    row.cap_label(),
                    row.reliability_mean,
                    row.predicted
                );
                let _ = writeln!(
                    collapses,
                    "    {{\"mode\": \"{tag}\", \"first_collapse\": \"k={} B={}\", \
                     \"measured\": {:.4}, \"predicted\": {:.4}}},",
                    row.k,
                    row.cap_label(),
                    row.reliability_mean,
                    row.predicted
                );
            }
            None => {
                println!("collapse[{tag}]: prediction tracks everywhere on this grid");
                let _ = writeln!(
                    collapses,
                    "    {{\"mode\": \"{tag}\", \"first_collapse\": null}},"
                );
            }
        }
    }

    let find = |k: usize, b: Option<usize>, batched: bool| -> &Row {
        rows.iter()
            .find(|r| r.sweep == "load" && r.k == k && r.bandwidth == b && r.batched == batched)
            .expect("grid row present")
    };

    // Headline sanity, robust even at GOSSIP_REPS_SCALE=0.2:
    // (1) a single message does not feel a B = 2 cap;
    let single = find(1, Some(2), false);
    assert!(
        single.divergence() < 0.05,
        "k = 1 under B = 2 must track Eq. 11 ({:.4} vs {:.4})",
        single.reliability_mean,
        single.predicted
    );
    // (2) a k = 64 burst against B = 2 single-id frames collapses;
    let collapsed = find(64, Some(2), false);
    assert!(
        collapsed.reliability_mean < collapsed.predicted - 0.2,
        "k = 64 at B = 2 unbatched must collapse well below the prediction \
         ({:.4} vs {:.4})",
        collapsed.reliability_mean,
        collapsed.predicted
    );
    assert!(
        collapsed.copies_dropped > 0.0,
        "the collapse must be visible in the overflow ledger"
    );
    // (3) piggybacking at the same B sustains what single-id frames lose.
    let sustained = find(64, Some(2), true);
    assert!(
        sustained.reliability_mean >= collapsed.reliability_mean + 0.1,
        "at equal B, batching must sustain per-message reliability \
         ({:.4} vs {:.4})",
        sustained.reliability_mean,
        collapsed.reliability_mean
    );

    let json_rows = json_rows.trim_end().trim_end_matches(',').to_string();
    let collapses = collapses.trim_end().trim_end_matches(',').to_string();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"stream_sweep n={} Po({}) netsim backend, queue=32, piggyback<=8\",\n",
            "  \"replications_per_point\": {},\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"collapses\": [\n{}\n  ]\n",
            "}}"
        ),
        n, f, reps, json_rows, collapses
    );
    let dir = std::env::var("GOSSIP_SNAPSHOT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    let path = dir.join("BENCH_stream_sweep.json");
    std::fs::write(&path, json + "\n").expect("write snapshot");
    println!("wrote {}", path.display());
    println!(
        "checkpoint: the i.i.d. per-message prediction prices a stream only while \
         the frame budget is slack — once offered load crosses B, the bounded \
         queue's tail drops break it, and piggybacking is what buys the budget back."
    );
}
