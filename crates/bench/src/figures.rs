//! Shared experiment drivers for the figure binaries, built on the
//! unified `Scenario` → `Backend` → `Report` API.
//!
//! The Figs. 4/5 sweep is one [`SweepGrid`] evaluated twice — once by
//! [`AnalyticBackend`] (the Eq. 11 curves) and once by
//! [`ProtocolBackend`] (the paper's 20-runs-per-point procedure) — so
//! the binaries carry no per-layer glue of their own.

use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, Scenario, SweepGrid};
use gossip_model::sweep::paper_fanout_grid;
use gossip_protocol::backend::ProtocolBackend;
use gossip_protocol::experiment;
use gossip_stats::binomial::Binomial;
use gossip_stats::gof::{chi_square_pvalue, total_variation_distance};
use gossip_stats::histogram::IntHistogram;

use crate::Table;

/// One `{f, q}` measurement of the Figs. 4/5 procedure.
#[derive(Clone, Copy, Debug)]
pub struct ReliabilityPoint {
    /// Mean fanout `f`.
    pub f: f64,
    /// Nonfailed ratio `q`.
    pub q: f64,
    /// Simulated reliability, conditioned on take-off — the estimator of
    /// the giant-component size that the paper's analysis curves plot.
    pub simulated: f64,
    /// Unconditional mean over all replications (duds included); drops
    /// toward `R²` at moderate reliability — reported in the CSVs for
    /// transparency.
    pub simulated_raw: f64,
    /// Fraction of replications that took off.
    pub takeoff_rate: f64,
    /// Analytic reliability: the root of Eq. 11.
    pub analytic: f64,
}

/// The Figs. 4/5 scenario grid: Poisson fanout over the paper's grid,
/// one failure-ratio row per `q`, `reps` protocol runs per point.
pub fn fig45_grid(n: usize, qs: &[f64], reps: usize, base_seed: u64) -> SweepGrid {
    let base = Scenario::new(n, FanoutSpec::poisson(4.0))
        .with_replications(reps)
        .with_seed(base_seed);
    SweepGrid::new(base)
        .over_failure_ratios(qs)
        .over_poisson_means(&paper_fanout_grid())
}

/// Runs the Figs. 4/5 sweep: reliability vs mean fanout for each `q`,
/// on groups of `n` members; `reps` runs per point (paper: 20).
///
/// Points are ordered `q`-major (all fanouts of `qs[0]` first), the
/// layout [`reliability_table`] expects.
pub fn reliability_vs_fanout(
    n: usize,
    qs: &[f64],
    reps: usize,
    base_seed: u64,
) -> Vec<ReliabilityPoint> {
    let grid = fig45_grid(n, qs, reps, base_seed);
    let analytic = grid.run(&AnalyticBackend);
    let simulated = grid.run(&ProtocolBackend);
    // Cell order is fanout-major (the grid's outer axis); the table
    // layout wants q-major.
    let cells: Vec<ReliabilityPoint> = analytic
        .iter()
        .zip(&simulated)
        .map(|(ana, sim)| {
            let scenario = &ana.scenario;
            let f = match scenario.fanout {
                FanoutSpec::Poisson { mean } => mean,
                _ => unreachable!("fig45 grid is Poisson"),
            };
            let ana = ana.report.as_ref().expect("analytic evaluates every cell");
            let sim = sim.report.as_ref().expect("protocol evaluates every cell");
            ReliabilityPoint {
                f,
                q: scenario.q().expect("grid rows are failure ratios"),
                simulated: sim.reliability,
                simulated_raw: sim.reliability_raw.expect("protocol reports raw mean"),
                takeoff_rate: sim.takeoff_rate.expect("protocol reports take-off"),
                analytic: ana.reliability,
            }
        })
        .collect();
    let (nf, nq) = (paper_fanout_grid().len(), qs.len());
    (0..nq)
        .flat_map(|qi| (0..nf).map(move |fi| (fi, qi)))
        .map(|(fi, qi)| cells[fi * nq + qi])
        .collect()
}

/// Formats a [`reliability_vs_fanout`] sweep as a table with one
/// sim/analysis column pair per `q`.
pub fn reliability_table(title: &str, qs: &[f64], points: &[ReliabilityPoint]) -> Table {
    let grid = paper_fanout_grid();
    let mut headers = vec!["f".to_string()];
    for q in qs {
        headers.push(format!("sim q={q}"));
        headers.push(format!("ana q={q}"));
        headers.push(format!("raw q={q}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    for (fi, &f) in grid.iter().enumerate() {
        let mut row = vec![f];
        for (qi, _) in qs.iter().enumerate() {
            let p = &points[qi * grid.len() + fi];
            row.push(p.simulated);
            row.push(p.analytic);
            row.push(p.simulated_raw);
        }
        table.push_floats(&row, 4);
    }
    table
}

/// Largest |sim − analysis| across supercritical points (f·q > 1.2 —
/// clear of the transition, where finite-size rounding dominates).
pub fn max_supercritical_gap(points: &[ReliabilityPoint]) -> f64 {
    points
        .iter()
        .filter(|p| p.f * p.q > 1.2)
        .map(|p| (p.simulated - p.analytic).abs())
        .fold(0.0, f64::max)
}

/// The Figs. 6/7 procedure: distribution of the paper's §4.2 variable
/// `X` — executions (out of `execs`) in which a nonfailed member
/// received the message — over `sims` simulations, vs the analytic
/// `B(execs, R)` with `R` from Eq. 11.
pub struct SuccessCountFigure {
    /// Simulated histogram of `X` (per-member receipt count).
    pub histogram: IntHistogram,
    /// The analytic distribution the paper plots: `B(execs, R)`.
    pub analytic: Binomial,
    /// The paper's rounded reliability for these parameters (0.967).
    pub paper_r: f64,
    /// Total-variation distance between simulated pmf and analytic pmf.
    pub tv_distance: f64,
    /// Chi-square p-value of the fit.
    pub chi2_pvalue: f64,
    /// The *directed* refinement the paper's model misses: a member
    /// receives iff the source's dissemination takes off (prob. S) AND
    /// the member sits in the reachable giant component (prob. S) —
    /// `B(execs, S²)`. The measured histogram fits this line tighter.
    pub analytic_directed: Binomial,
    /// TV distance to the `B(execs, S²)` refinement.
    pub tv_directed: f64,
    /// For contrast: the strict group-wide success count (every
    /// nonfailed member reached) over an equal number of executions —
    /// essentially 0 at n in the thousands, which is how we know the
    /// paper's Figs. 6/7 plot the per-member variable (EXPERIMENTS.md).
    pub strict_success_mean: f64,
}

/// Runs the success-count experiment for `{f, q}` at group size `n`.
/// The per-execution histogram machinery stays on the experiment
/// harness (the §4.2 variable `X` is not a per-scenario scalar); the
/// analytic reference line comes from the scenario API.
pub fn success_count_figure(
    n: usize,
    f: f64,
    q: f64,
    execs: usize,
    sims: usize,
    base_seed: u64,
) -> SuccessCountFigure {
    let scenario = Scenario::new(n, FanoutSpec::poisson(f))
        .with_failure_ratio(q)
        .with_seed(base_seed);
    // The per-member histogram needs a `Clone` distribution, so the
    // experiment harness gets a concrete PoissonFanout — but both it and
    // the ExecutionConfig are derived from the scenario's own fields so
    // the analytic overlay and the simulation cannot diverge.
    let dist = match scenario.fanout {
        FanoutSpec::Poisson { mean } => gossip_model::PoissonFanout::new(mean),
        _ => unreachable!("success-count figures are Poisson"),
    };
    let cfg = gossip_protocol::engine::ExecutionConfig::new(
        scenario.n,
        scenario.q().expect("ratio failure model"),
    );
    let histogram =
        experiment::member_receipt_distribution(&cfg, &dist, execs, sims, scenario.seed);
    let strict = experiment::success_count_distribution(
        &cfg,
        &dist,
        execs,
        (sims / 10).max(1),
        scenario.seed ^ 0xDEAD,
    );

    let analytic_r = AnalyticBackend
        .evaluate(&scenario)
        .expect("parameters validated upstream")
        .reliability;
    let analytic = Binomial::new(execs as u64, analytic_r);
    let analytic_directed = Binomial::new(execs as u64, analytic_r * analytic_r);
    let sim_pmf = histogram.pmf_vector();
    let ana_pmf = analytic.pmf_vector();
    let tv = total_variation_distance(&sim_pmf, &ana_pmf);
    let tv_directed = total_variation_distance(&sim_pmf, &analytic_directed.pmf_vector());
    let chi = chi_square_pvalue(histogram.counts(), &ana_pmf, 5.0);
    SuccessCountFigure {
        histogram,
        analytic,
        paper_r: 0.967,
        tv_distance: tv,
        chi2_pvalue: chi.p_value,
        analytic_directed,
        tv_directed,
        strict_success_mean: strict.mean(),
    }
}

/// Formats a [`SuccessCountFigure`] as a table of `Pr(X = k)`.
pub fn success_count_table(title: &str, fig: &SuccessCountFigure) -> Table {
    let mut table = Table::new(
        title,
        &[
            "k",
            "Pr(X=k) sim",
            "Pr(X=k) B(t,R) [paper]",
            "Pr(X=k) B(t,R^2) [directed]",
        ],
    );
    for k in 0..fig.histogram.buckets() {
        table.push_floats(
            &[
                k as f64,
                fig.histogram.pmf(k),
                fig.analytic.pmf(k as u64),
                fig.analytic_directed.pmf(k as u64),
            ],
            4,
        );
    }
    table
}

/// Renders paired analytic/simulated sweep cells (same grid, two
/// backends) as a comparison table — the generic porting target for
/// sweep-style binaries.
pub fn backend_comparison_table(
    title: &str,
    x_label: &str,
    xs: &[f64],
    cells: &[(String, Vec<gossip_model::scenario::SweepCell>)],
) -> Table {
    let mut headers = vec![x_label.to_string()];
    for (name, _) in cells {
        headers.push(format!("R {name}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    for (i, &x) in xs.iter().enumerate() {
        let mut row = vec![x];
        for (_, backend_cells) in cells {
            row.push(
                backend_cells[i]
                    .report
                    .as_ref()
                    .map(|r| r.reliability)
                    .unwrap_or(f64::NAN),
            );
        }
        table.push_floats(&row, 4);
    }
    table
}
