//! Shared experiment drivers for the figure binaries.

use gossip_model::distribution::PoissonFanout;
use gossip_model::percolation::SitePercolation;
use gossip_model::sweep::paper_fanout_grid;
use gossip_protocol::engine::ExecutionConfig;
use gossip_protocol::experiment;
use gossip_stats::binomial::Binomial;
use gossip_stats::gof::{chi_square_pvalue, total_variation_distance};
use gossip_stats::histogram::IntHistogram;
use gossip_stats::rng::SplitMix64;

use crate::Table;

/// One `{f, q}` measurement of the Figs. 4/5 procedure.
pub struct ReliabilityPoint {
    /// Mean fanout `f`.
    pub f: f64,
    /// Nonfailed ratio `q`.
    pub q: f64,
    /// Simulated reliability, conditioned on take-off — the estimator of
    /// the giant-component size that the paper's analysis curves plot
    /// (the paper also "calculate\[s\] the size of giant component for
    /// each case"). For subcritical points this equals the raw mean.
    pub simulated: f64,
    /// Unconditional mean over all replications (duds included); drops
    /// toward `R²` at moderate reliability — reported in the CSVs for
    /// transparency.
    pub simulated_raw: f64,
    /// Fraction of replications that took off.
    pub takeoff_rate: f64,
    /// Analytic reliability: the root of Eq. 11.
    pub analytic: f64,
}

/// Runs the Figs. 4/5 sweep: reliability vs mean fanout for each `q`,
/// on groups of `n` members; `reps` runs per point (paper: 20).
pub fn reliability_vs_fanout(
    n: usize,
    qs: &[f64],
    reps: usize,
    base_seed: u64,
) -> Vec<ReliabilityPoint> {
    let grid = paper_fanout_grid();
    let mut points = Vec::with_capacity(qs.len() * grid.len());
    for (qi, &q) in qs.iter().enumerate() {
        let cfg = ExecutionConfig::new(n, q);
        for (fi, &f) in grid.iter().enumerate() {
            let dist = PoissonFanout::new(f);
            let seed = SplitMix64::derive(base_seed, (qi * 1000 + fi) as u64);
            let analytic = SitePercolation::new(&dist, q)
                .expect("q validated by ExecutionConfig")
                .reliability()
                .expect("Poisson percolation always converges");
            let outcomes = experiment::executions(&cfg, &dist, reps, seed);
            let mut raw = 0.0;
            let mut takeoff_sum = 0.0;
            let mut takeoffs = 0usize;
            // An execution "takes off" when it escapes the source's
            // neighbourhood; half the analytic prediction separates the
            // two modes cleanly. Subcritical points have one mode only.
            let threshold = 0.5 * analytic;
            for o in &outcomes {
                let r = o.reliability();
                raw += r;
                if analytic < 0.05 || r > threshold {
                    takeoff_sum += r;
                    takeoffs += 1;
                }
            }
            raw /= outcomes.len() as f64;
            let simulated = if takeoffs == 0 {
                0.0
            } else {
                takeoff_sum / takeoffs as f64
            };
            points.push(ReliabilityPoint {
                f,
                q,
                simulated,
                simulated_raw: raw,
                takeoff_rate: takeoffs as f64 / outcomes.len() as f64,
                analytic,
            });
        }
    }
    points
}

/// Formats a [`reliability_vs_fanout`] sweep as a table with one
/// sim/analysis column pair per `q`.
pub fn reliability_table(title: &str, qs: &[f64], points: &[ReliabilityPoint]) -> Table {
    let grid = paper_fanout_grid();
    let mut headers = vec!["f".to_string()];
    for q in qs {
        headers.push(format!("sim q={q}"));
        headers.push(format!("ana q={q}"));
        headers.push(format!("raw q={q}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    for (fi, &f) in grid.iter().enumerate() {
        let mut row = vec![f];
        for (qi, _) in qs.iter().enumerate() {
            let p = &points[qi * grid.len() + fi];
            row.push(p.simulated);
            row.push(p.analytic);
            row.push(p.simulated_raw);
        }
        table.push_floats(&row, 4);
    }
    table
}

/// Largest |sim − analysis| across supercritical points (f·q > 1.2 —
/// clear of the transition, where finite-size rounding dominates).
pub fn max_supercritical_gap(points: &[ReliabilityPoint]) -> f64 {
    points
        .iter()
        .filter(|p| p.f * p.q > 1.2)
        .map(|p| (p.simulated - p.analytic).abs())
        .fold(0.0, f64::max)
}

/// The Figs. 6/7 procedure: distribution of the paper's §4.2 variable
/// `X` — executions (out of `execs`) in which a nonfailed member
/// received the message — over `sims` simulations, vs the analytic
/// `B(execs, R)` with `R` from Eq. 11.
pub struct SuccessCountFigure {
    /// Simulated histogram of `X` (per-member receipt count).
    pub histogram: IntHistogram,
    /// The analytic distribution the paper plots: `B(execs, R)`.
    pub analytic: Binomial,
    /// The paper's rounded reliability for these parameters (0.967).
    pub paper_r: f64,
    /// Total-variation distance between simulated pmf and analytic pmf.
    pub tv_distance: f64,
    /// Chi-square p-value of the fit.
    pub chi2_pvalue: f64,
    /// The *directed* refinement the paper's model misses: a member
    /// receives iff the source's dissemination takes off (prob. S) AND
    /// the member sits in the reachable giant component (prob. S) —
    /// `B(execs, S²)`. The measured histogram fits this line tighter.
    pub analytic_directed: Binomial,
    /// TV distance to the `B(execs, S²)` refinement.
    pub tv_directed: f64,
    /// For contrast: the strict group-wide success count (every
    /// nonfailed member reached) over an equal number of executions —
    /// essentially 0 at n in the thousands, which is how we know the
    /// paper's Figs. 6/7 plot the per-member variable (EXPERIMENTS.md).
    pub strict_success_mean: f64,
}

/// Runs the success-count experiment for `{f, q}` at group size `n`.
pub fn success_count_figure(
    n: usize,
    f: f64,
    q: f64,
    execs: usize,
    sims: usize,
    base_seed: u64,
) -> SuccessCountFigure {
    let cfg = ExecutionConfig::new(n, q);
    let dist = PoissonFanout::new(f);
    let histogram = experiment::member_receipt_distribution(&cfg, &dist, execs, sims, base_seed);
    let strict = experiment::success_count_distribution(
        &cfg,
        &dist,
        execs,
        (sims / 10).max(1),
        base_seed ^ 0xDEAD,
    );

    let analytic_r = gossip_model::poisson_case::reliability(f, q)
        .expect("parameters validated upstream");
    let analytic = Binomial::new(execs as u64, analytic_r);
    let analytic_directed = Binomial::new(execs as u64, analytic_r * analytic_r);
    let sim_pmf = histogram.pmf_vector();
    let ana_pmf = analytic.pmf_vector();
    let tv = total_variation_distance(&sim_pmf, &ana_pmf);
    let tv_directed = total_variation_distance(&sim_pmf, &analytic_directed.pmf_vector());
    let chi = chi_square_pvalue(histogram.counts(), &ana_pmf, 5.0);
    SuccessCountFigure {
        histogram,
        analytic,
        paper_r: 0.967,
        tv_distance: tv,
        chi2_pvalue: chi.p_value,
        analytic_directed,
        tv_directed,
        strict_success_mean: strict.mean(),
    }
}

/// Formats a [`SuccessCountFigure`] as a table of `Pr(X = k)`.
pub fn success_count_table(title: &str, fig: &SuccessCountFigure) -> Table {
    let mut table = Table::new(
        title,
        &["k", "Pr(X=k) sim", "Pr(X=k) B(t,R) [paper]", "Pr(X=k) B(t,R^2) [directed]"],
    );
    for k in 0..fig.histogram.buckets() {
        table.push_floats(
            &[
                k as f64,
                fig.histogram.pmf(k),
                fig.analytic.pmf(k as u64),
                fig.analytic_directed.pmf(k as u64),
            ],
            4,
        );
    }
    table
}
