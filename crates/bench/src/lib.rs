//! Shared harness for the figure-reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index): it prints an
//! aligned table of the same series the paper plots and writes a CSV
//! into `results/`. This module holds the table/CSV/plot plumbing and
//! the experiment defaults so the binaries stay declarative.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Standard base seed for all figure reproductions (override with the
/// `GOSSIP_SEED` environment variable).
pub fn base_seed() -> u64 {
    std::env::var("GOSSIP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x1CC_2008) // "ICPP 2008"
}

/// Scale factor for replication counts (override with `GOSSIP_REPS_SCALE`,
/// e.g. `GOSSIP_REPS_SCALE=0.1` for a quick smoke run).
pub fn reps_scale() -> f64 {
    std::env::var("GOSSIP_REPS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Applies [`reps_scale`] to a nominal replication count (min 1).
pub fn scaled(reps: usize) -> usize {
    ((reps as f64 * reps_scale()).round() as usize).max(1)
}

/// The output directory for CSVs (`results/` at the workspace root, or
/// `GOSSIP_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("GOSSIP_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// A printable, CSV-writable table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Convenience: appends a row of floats with the given precision.
    pub fn push_floats(&mut self, values: &[f64], precision: usize) {
        self.push(values.iter().map(|v| format!("{v:.precision$}")).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    out.push_str("  ");
                }
                first = false;
                let _ = write!(out, "{cell:>w$}");
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("--");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        fs::write(path, out).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }

    /// Convenience: write into [`results_dir`] under the given file name.
    pub fn save(&self, file_name: &str) {
        self.write_csv(&results_dir().join(file_name));
    }
}

/// Renders labelled `(x, y)` series as a crude ASCII scatter plot —
/// enough to eyeball curve shapes (the actual comparison is numeric).
pub fn ascii_plot(series: &[(&str, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for (_, pts) in series {
        for &(x, y) in pts {
            xs.push(x);
            ys.push(y);
        }
    }
    if xs.is_empty() {
        return String::from("(no data)\n");
    }
    let (xmin, xmax) = bounds(&xs);
    let (ymin, ymax) = bounds(&ys);
    let mut grid = vec![vec![' '; width]; height];
    let marks = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    for (si, (_, pts)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in pts {
            let cx = scale_to(x, xmin, xmax, width - 1);
            let cy = scale_to(y, ymin, ymax, height - 1);
            grid[height - 1 - cy][cx] = mark;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "y ∈ [{ymin:.3}, {ymax:.3}]");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    let _ = writeln!(out, "+{}", "-".repeat(width));
    let _ = writeln!(out, " x ∈ [{xmin:.3}, {xmax:.3}]");
    for (si, (label, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", marks[si % marks.len()], label);
    }
    out
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

fn scale_to(v: f64, lo: f64, hi: f64, max_idx: usize) -> usize {
    (((v - lo) / (hi - lo)) * max_idx as f64)
        .round()
        .clamp(0.0, max_idx as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push(vec!["1".into(), "0.5".into()]);
        t.push_floats(&[2.0, 0.25], 2);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("0.25"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_arity_mismatch() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("gossip-bench-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        t.write_csv(&path);
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn ascii_plot_contains_marks() {
        let s = ascii_plot(
            &[
                ("up", vec![(0.0, 0.0), (1.0, 1.0)]),
                ("down", vec![(0.0, 1.0)]),
            ],
            20,
            8,
        );
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("up"));
    }

    #[test]
    fn empty_plot() {
        assert_eq!(ascii_plot(&[], 10, 5), "(no data)\n");
    }

    #[test]
    fn scaled_respects_min() {
        assert!(scaled(20) >= 1);
    }
}
pub mod figures;
