//! Criterion benches for fanout sampling and the statistics substrate —
//! one fanout draw happens per infected member per execution, so the
//! samplers are the hottest leaves of the whole Monte-Carlo stack.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gossip_model::distribution::{
    EmpiricalFanout, FanoutDistribution, FixedFanout, GeometricFanout, PoissonFanout,
    PowerLawFanout, UniformFanout,
};
use gossip_stats::binomial::Binomial;
use gossip_stats::poisson::Poisson;
use gossip_stats::rng::Xoshiro256StarStar;

fn bench_fanout_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions/sample");
    group.throughput(Throughput::Elements(1));
    let mut rng = Xoshiro256StarStar::new(1);

    let po = PoissonFanout::new(4.0);
    group.bench_function("poisson_z4", |b| b.iter(|| black_box(po.sample(&mut rng))));

    let fixed = FixedFanout::new(4);
    group.bench_function("fixed_4", |b| b.iter(|| black_box(fixed.sample(&mut rng))));

    let geo = GeometricFanout::with_mean(4.0);
    group.bench_function("geometric_mean4", |b| {
        b.iter(|| black_box(geo.sample(&mut rng)))
    });

    let uni = UniformFanout::new(2, 6);
    group.bench_function("uniform_2_6", |b| {
        b.iter(|| black_box(uni.sample(&mut rng)))
    });

    let pl = PowerLawFanout::new(2.5, 1, 100);
    group.bench_function("powerlaw_alias", |b| {
        b.iter(|| black_box(pl.sample(&mut rng)))
    });

    let emp = EmpiricalFanout::new(&[0.1, 0.2, 0.3, 0.2, 0.1, 0.1]);
    group.bench_function("empirical_alias", |b| {
        b.iter(|| black_box(emp.sample(&mut rng)))
    });
    group.finish();
}

fn bench_stats_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions/stats");
    let mut rng = Xoshiro256StarStar::new(2);
    group.bench_function("rng_next_u64", |b| b.iter(|| black_box(rng.next())));
    group.bench_function("rng_next_below_1000", |b| {
        b.iter(|| black_box(rng.next_below(1000)))
    });

    let po = Poisson::new(30.0);
    group.bench_function("poisson_sample_lambda30", |b| {
        b.iter(|| black_box(po.sample(&mut rng)))
    });
    group.bench_function("poisson_cdf", |b| {
        b.iter(|| black_box(po.cdf(black_box(25))))
    });

    let bin = Binomial::new(20, 0.967);
    group.bench_function("binomial_pmf_vector_20", |b| {
        b.iter(|| black_box(bin.pmf_vector()))
    });
    group.finish();
}

fn bench_generating_function_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions/genfun_g0");
    let geo = GeometricFanout::with_mean(6.0);
    group.bench_function("series_geometric", |b| b.iter(|| black_box(geo.g0(0.63))));
    let po = PoissonFanout::new(6.0);
    group.bench_function("closed_poisson", |b| b.iter(|| black_box(po.g0(0.63))));
    group.finish();
}

criterion_group!(
    benches,
    bench_fanout_samplers,
    bench_stats_substrate,
    bench_generating_function_eval
);
criterion_main!(benches);
