//! Criterion benches for the random-graph substrate: configuration-model
//! generation, gossip-digraph construction, component censuses, and
//! union-find — the inner loops of the graph-level validation
//! experiments.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossip_model::distribution::PoissonFanout;
use gossip_rgraph::reach::reach;
use gossip_rgraph::{components, percolate, ConfigurationModel, GossipGraphBuilder, UnionFind};
use gossip_stats::rng::Xoshiro256StarStar;

fn bench_configuration_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphs/configuration_model");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let dist = PoissonFanout::new(4.0);
            let model = ConfigurationModel::new(&dist, n);
            let mut rng = Xoshiro256StarStar::new(1);
            b.iter(|| black_box(model.generate(&mut rng)))
        });
    }
    group.finish();
}

fn bench_gossip_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphs/gossip_digraph");
    for &n in &[1_000usize, 5_000, 50_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let dist = PoissonFanout::new(4.0);
            let builder = GossipGraphBuilder::new(&dist, n, 0.9);
            let mut rng = Xoshiro256StarStar::new(2);
            b.iter(|| black_box(builder.build(&mut rng)))
        });
    }
    group.finish();
}

fn bench_census_and_reach(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphs/analysis");
    let dist = PoissonFanout::new(4.0);
    let n = 50_000;
    let g = ConfigurationModel::new(&dist, n).generate(&mut Xoshiro256StarStar::new(3));
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("census_50k", |b| {
        b.iter(|| components::census(black_box(&g)))
    });
    group.bench_function("percolate_50k_q0.8", |b| {
        let mut rng = Xoshiro256StarStar::new(4);
        b.iter(|| percolate(black_box(&g), 0.8, &[], &mut rng))
    });
    let gossip = GossipGraphBuilder::new(&dist, n, 0.9).build(&mut Xoshiro256StarStar::new(5));
    group.bench_function("directed_reach_50k", |b| {
        b.iter(|| reach(black_box(&gossip)))
    });
    group.finish();
}

fn bench_union_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphs/unionfind");
    let n = 100_000u32;
    // Pre-generated random union pairs.
    let mut rng = Xoshiro256StarStar::new(6);
    let pairs: Vec<(u32, u32)> = (0..n)
        .map(|_| {
            (
                rng.next_below(n as u64) as u32,
                rng.next_below(n as u64) as u32,
            )
        })
        .collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("union_100k_random_pairs", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new(n as usize);
            for &(a, bb) in &pairs {
                uf.union(a, bb);
            }
            black_box(uf.component_count())
        })
    });
    group.bench_function("reset_reuse_100k", |b| {
        let mut uf = UnionFind::new(n as usize);
        b.iter(|| {
            uf.reset();
            for &(a, bb) in &pairs {
                uf.union(a, bb);
            }
            black_box(uf.largest())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_configuration_model,
    bench_gossip_graph,
    bench_census_and_reach,
    bench_union_find
);
criterion_main!(benches);
