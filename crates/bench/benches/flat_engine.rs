//! Criterion benches pitting the flat struct-of-arrays engine against
//! the classic per-replication-allocation paths on the same scenarios.
//! Future PRs touching the hot loops (bitset frontiers, the alias
//! sampler, stub-pair percolation, arena reuse) measure against these
//! baselines; the committed `BENCH_scaling.json` holds the wall-clock
//! numbers at n = 10⁶/10⁷ that criterion's sample sizes cannot reach.
//!
//! Pinned baselines (container CI class machine, Po(4), q = 0.9,
//! 4 replications per iteration):
//!
//! | bench                     | classic     | flat        | speedup |
//! |---------------------------|-------------|-------------|---------|
//! | graph, n = 20 000         | 16.5 ms     |  5.3 ms     | 3.1×    |
//! | graph, n = 100 000        | 68.7 ms     | 25.2 ms     | 2.7×    |
//! | protocol, n = 20 000      | 55.0 ms     |  4.3 ms     | 12.8×   |

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossip_model::scenario::{Backend, EngineSpec, FanoutSpec, Scenario};
use gossip_protocol::ProtocolBackend;
use gossip_rgraph::GraphBackend;

/// The headline operating point at a size where both engines finish a
/// criterion sample quickly: Po(4), q = 0.9, a handful of replications.
fn headline(n: usize, engine: EngineSpec) -> Scenario {
    Scenario::new(n, FanoutSpec::poisson(4.0))
        .with_failure_ratio(0.9)
        .with_replications(4)
        .with_seed(0xF1A7)
        .with_engine(engine)
}

fn bench_graph_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_engine/graph");
    group.sample_size(10);
    for &n in &[20_000usize, 100_000] {
        group.throughput(Throughput::Elements(n as u64 * 4));
        for (label, engine) in [("classic", EngineSpec::Classic), ("flat", EngineSpec::Flat)] {
            let scenario = headline(n, engine);
            group.bench_with_input(BenchmarkId::new(label, n), &scenario, |b, scenario| {
                b.iter(|| GraphBackend.evaluate(black_box(scenario)).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_protocol_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_engine/protocol");
    group.sample_size(10);
    let n = 20_000;
    group.throughput(Throughput::Elements(n as u64 * 4));
    for (label, engine) in [("classic", EngineSpec::Classic), ("flat", EngineSpec::Flat)] {
        let scenario = headline(n, engine);
        group.bench_with_input(BenchmarkId::new(label, n), &scenario, |b, scenario| {
            b.iter(|| ProtocolBackend.evaluate(black_box(scenario)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph_engines, bench_protocol_engines);
criterion_main!(benches);
