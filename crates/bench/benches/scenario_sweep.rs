//! Criterion benches for the `SweepGrid` hot path — the entry point
//! every figure binary and cross-validation test now funnels through.
//! Future PRs optimizing the scenario layer (cell materialization, the
//! parallel fan-out, per-cell solver work) measure against this
//! baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossip_model::scenario::{AnalyticBackend, Backend, FanoutSpec, Scenario, SweepGrid};
use gossip_rgraph::GraphBackend;

/// The Figs. 4/5-shaped grid: paper fanout axis × four failure ratios.
fn fig45_like_grid(n: usize, reps: usize) -> SweepGrid {
    let means: Vec<f64> = gossip_model::sweep::paper_fanout_grid();
    SweepGrid::new(
        Scenario::new(n, FanoutSpec::poisson(4.0))
            .with_replications(reps)
            .with_seed(0xBE7C),
    )
    .over_poisson_means(&means)
    .over_failure_ratios(&[0.4, 0.6, 0.8, 1.0])
}

fn bench_cell_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario/materialize");
    let grid = fig45_like_grid(1000, 20);
    group.throughput(Throughput::Elements(grid.len() as u64));
    group.bench_function("fig45_grid_60_cells", |b| {
        b.iter(|| black_box(&grid).scenarios())
    });
    group.finish();
}

fn bench_analytic_sweep(c: &mut Criterion) {
    // The analytic backend's per-cell cost is the Eq. 11 fixed-point
    // solve; the sweep fans cells over all cores.
    let mut group = c.benchmark_group("scenario/analytic_sweep");
    group.sample_size(20);
    for &cells in &[15usize, 60] {
        let means: Vec<f64> = (0..cells).map(|i| 1.1 + i as f64 * 0.1).collect();
        let grid =
            SweepGrid::new(Scenario::new(1000, FanoutSpec::poisson(4.0)).with_failure_ratio(0.9))
                .over_poisson_means(&means);
        group.throughput(Throughput::Elements(cells as u64));
        group.bench_with_input(BenchmarkId::from_parameter(cells), &grid, |b, grid| {
            b.iter(|| grid.run(&AnalyticBackend))
        });
    }
    group.finish();
}

fn bench_analytic_single_cell(c: &mut Criterion) {
    // Per-cell floor: scenario validation + distribution build + solver.
    let mut group = c.benchmark_group("scenario/analytic_cell");
    let scenario = Scenario::new(1000, FanoutSpec::poisson(4.0)).with_failure_ratio(0.9);
    group.throughput(Throughput::Elements(1));
    group.bench_function("poisson_headline", |b| {
        b.iter(|| AnalyticBackend.evaluate(black_box(&scenario)).unwrap())
    });
    let mixture = Scenario::new(
        1000,
        FanoutSpec::Mixture {
            components: vec![
                (0.8, FanoutSpec::fixed(2)),
                (0.2, FanoutSpec::poisson(12.0)),
            ],
        },
    )
    .with_failure_ratio(0.9);
    group.bench_function("mixture_series_solver", |b| {
        b.iter(|| AnalyticBackend.evaluate(black_box(&mixture)).unwrap())
    });
    group.finish();
}

fn bench_graph_backend_cell(c: &mut Criterion) {
    // The graph backend's cost is graph generation + union-find census
    // per replication; n = 5000 with 4 reps is one acceptance-test cell.
    let mut group = c.benchmark_group("scenario/graph_cell");
    group.sample_size(10);
    let scenario = Scenario::new(5000, FanoutSpec::poisson(4.0))
        .with_failure_ratio(0.9)
        .with_replications(4);
    group.throughput(Throughput::Elements(scenario.n as u64 * 4));
    group.bench_function("n5000_reps4", |b| {
        b.iter(|| GraphBackend.evaluate(black_box(&scenario)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cell_materialization,
    bench_analytic_sweep,
    bench_analytic_single_cell,
    bench_graph_backend_cell
);
criterion_main!(benches);
