//! Criterion benches for the discrete-event simulator core: event queue
//! throughput and end-to-end gossip executions at the paper's group
//! sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gossip_model::distribution::PoissonFanout;
use gossip_netsim::queue::EventQueue;
use gossip_netsim::{EventKind, SimTime};
use gossip_protocol::engine::{run_push, ExecutionConfig, MembershipKind};
use gossip_stats::rng::Xoshiro256StarStar;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/event_queue");
    for &n in &[1_000usize, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("schedule_pop_random", n), &n, |b, &n| {
            let mut rng = Xoshiro256StarStar::new(7);
            let times: Vec<u64> = (0..n).map(|_| rng.next_below(1_000_000)).collect();
            b.iter(|| {
                let mut q: EventQueue<u32> = EventQueue::with_capacity(n);
                for &t in &times {
                    q.schedule(SimTime::from_nanos(t), 0, EventKind::Timer { id: t });
                }
                let mut last = 0u64;
                while let Some(e) = q.pop() {
                    last = e.time.as_nanos();
                }
                black_box(last)
            })
        });
    }
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/execution");
    group.sample_size(20);
    for &n in &[1_000usize, 5_000] {
        // The paper's group sizes (Figs. 4 and 5).
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("push_po4_q0.9", n), &n, |b, &n| {
            let cfg = ExecutionConfig::new(n, 0.9);
            let dist = PoissonFanout::new(4.0);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_push(&cfg, &dist, seed))
            })
        });
    }
    group.finish();
}

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/membership");
    group.sample_size(20);
    let n = 2_000;
    let dist = PoissonFanout::new(5.0);
    group.bench_function("full_view_execution", |b| {
        let cfg = ExecutionConfig::new(n, 0.9);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_push(&cfg, &dist, seed))
        })
    });
    group.bench_function("scamp_execution_incl_build", |b| {
        let cfg = ExecutionConfig::new(n, 0.9).with_membership(MembershipKind::Scamp { c: 2 });
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_push(&cfg, &dist, seed))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_execution,
    bench_membership
);
criterion_main!(benches);
