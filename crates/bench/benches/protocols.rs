//! Criterion benches comparing protocol costs at matched reliability —
//! the performance side of the protocol-comparison experiments.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gossip_model::distribution::{FanoutDistribution, FixedFanout, PoissonFanout};
use gossip_netsim::membership::FullView;
use gossip_netsim::{LatencyModel, NetworkConfig, SimDuration, Simulator};
use gossip_protocol::engine::{run_execution, ExecutionConfig};
use gossip_protocol::{Flooding, GossipMessage, MessageId, PushGossip, RoundBasedGossip};

const N: usize = 1_000;

fn bench_push_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/one_execution_n1000");
    group.sample_size(20);
    group.throughput(Throughput::Elements(N as u64));
    let cfg = ExecutionConfig::new(N, 0.9);

    let poisson: Arc<dyn FanoutDistribution> = Arc::new(PoissonFanout::new(4.0));
    group.bench_function("push_poisson4", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_execution(
                &cfg,
                |_| PushGossip::new(poisson.clone()),
                seed,
            ))
        })
    });

    let fixed: Arc<dyn FanoutDistribution> = Arc::new(FixedFanout::new(4));
    group.bench_function("push_fixed4", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_execution(
                &cfg,
                |_| PushGossip::new(fixed.clone()),
                seed,
            ))
        })
    });

    group.bench_function("rounds_f2_r3", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_execution(
                &cfg,
                |_| RoundBasedGossip::new(2, 3, SimDuration::from_millis(10)),
                seed,
            ))
        })
    });
    group.finish();
}

fn bench_flooding_smallgroup(c: &mut Criterion) {
    // Flooding over a full view is O(n²); bench at a small n to keep the
    // comparison honest without dominating bench wall-time.
    let mut group = c.benchmark_group("protocols/flooding");
    group.sample_size(20);
    let n = 200;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("flood_full_view_n200", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim: Simulator<GossipMessage, Flooding> = Simulator::new(
                (0..n).map(|_| Flooding::new()).collect(),
                NetworkConfig::new(LatencyModel::constant_millis(1)),
                Box::new(FullView::new(n)),
                seed,
            );
            sim.inject(0, 0, GossipMessage::new(MessageId(seed), &b"m"[..]));
            sim.run_to_quiescence();
            black_box(sim.metrics().messages_sent)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_push_variants, bench_flooding_smallgroup);
criterion_main!(benches);
