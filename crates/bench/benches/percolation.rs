//! Criterion benches for the analytic percolation solver — the code the
//! model evaluates once per figure point; design loops (bisection over
//! the solver) amplify its cost by ~50×.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gossip_model::distribution::{
    EmpiricalFanout, FanoutDistribution, GeometricFanout, PoissonFanout,
};
use gossip_model::{design, poisson_case, SitePercolation};

fn bench_reliability_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("percolation/reliability");
    for &(z, q) in &[(4.0, 0.9), (1.2, 0.9), (2.0, 0.51)] {
        // Near-critical parameters stress the fixed-point iteration.
        group.bench_with_input(
            BenchmarkId::new("poisson_generic", format!("z{z}_q{q}")),
            &(z, q),
            |b, &(z, q)| {
                let dist = PoissonFanout::new(z);
                b.iter(|| {
                    SitePercolation::new(black_box(&dist), black_box(q))
                        .unwrap()
                        .reliability()
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("poisson_lambertw", format!("z{z}_q{q}")),
            &(z, q),
            |b, &(z, q)| b.iter(|| poisson_case::reliability(black_box(z), black_box(q)).unwrap()),
        );
    }
    group.finish();
}

fn bench_series_distributions(c: &mut Criterion) {
    // Distributions without closed forms exercise the truncated-series
    // generating functions inside the fixed-point loop.
    let mut group = c.benchmark_group("percolation/series_based");
    let geo = GeometricFanout::with_mean(4.0);
    group.bench_function("geometric_mean4_q0.9", |b| {
        b.iter(|| {
            SitePercolation::new(black_box(&geo), 0.9)
                .unwrap()
                .reliability()
                .unwrap()
        })
    });
    let weights: Vec<f64> = (0..64).map(|k| ((k % 7) + 1) as f64).collect();
    let emp = EmpiricalFanout::new(&weights);
    group.bench_function("empirical_64_q0.9", |b| {
        b.iter(|| {
            SitePercolation::new(black_box(&emp), 0.9)
                .unwrap()
                .reliability()
                .unwrap()
        })
    });
    group.finish();
}

fn bench_design_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("percolation/design");
    group.bench_function("min_nonfailed_ratio_po6_target0.9", |b| {
        let dist = PoissonFanout::new(6.0);
        b.iter(|| design::min_nonfailed_ratio(black_box(&dist), 0.9).unwrap())
    });
    group.bench_function("required_scale_poisson_q0.8", |b| {
        b.iter(|| design::required_scale(PoissonFanout::new, 0.8, 0.95, 0.1, 50.0).unwrap())
    });
    group.finish();
}

fn bench_generating_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("percolation/genfun");
    let geo = GeometricFanout::with_mean(4.0);
    group.bench_function("g1_series_eval", |b| b.iter(|| geo.g1(black_box(0.7))));
    let po = PoissonFanout::new(4.0);
    group.bench_function("g1_closed_form_eval", |b| b.iter(|| po.g1(black_box(0.7))));
    group.finish();
}

criterion_group!(
    benches,
    bench_reliability_solver,
    bench_series_distributions,
    bench_design_inverse,
    bench_generating_functions
);
criterion_main!(benches);
