//! Sampling a [`ChurnSpec`](crate::ChurnSpec) into one execution's
//! concrete join/leave schedule.

use gossip_stats::poisson::Poisson;
use gossip_stats::rng::Xoshiro256StarStar;

use crate::spec::ChurnSpec;

const NS_PER_MS: u64 = 1_000_000;

/// One execution's realized churn: who joins and who leaves, when (in
/// virtual nanoseconds), both sorted by time.
///
/// Join ids are brand new — `n, n+1, …, n+K−1` in arrival order — so an
/// engine sized for `n + K` nodes can keep joiners dormant until their
/// join time. Leaves pick distinct existing members uniformly,
/// excluding the source (the paper's source is immortal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnPlan {
    /// `(virtual time ns, new member id)`, ids `n..n+K`, time-sorted.
    pub joins: Vec<(u64, u32)>,
    /// `(virtual time ns, existing member id)`, time-sorted, distinct
    /// non-source members.
    pub leaves: Vec<(u64, u32)>,
}

impl ChurnPlan {
    /// Samples the plan for a group of `n` initial members. Pure in
    /// `(spec, n, source, seed)`.
    ///
    /// Event counts are Poisson with mean `rate × horizon` (leaves
    /// capped at `n − 1`: the source cannot leave and nobody leaves
    /// twice); event times are uniform over the horizon.
    pub fn sample(spec: &ChurnSpec, n: usize, source: u32, seed: u64) -> ChurnPlan {
        let mut rng = Xoshiro256StarStar::new(seed);
        let horizon_secs = spec.horizon_ms as f64 / 1000.0;
        let horizon_ns = (spec.horizon_ms * NS_PER_MS).max(1);
        let join_count = Poisson::new(spec.join_per_sec * horizon_secs).sample(&mut rng) as usize;
        let leave_count = (Poisson::new(spec.leave_per_sec * horizon_secs).sample(&mut rng)
            as usize)
            .min(n.saturating_sub(1));

        let mut join_times: Vec<u64> = (0..join_count)
            .map(|_| rng.next_below(horizon_ns))
            .collect();
        join_times.sort_unstable();
        let joins: Vec<(u64, u32)> = join_times
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, (n + i) as u32))
            .collect();

        let mut leavers: Vec<u32> = Vec::with_capacity(leave_count);
        while leavers.len() < leave_count {
            let v = rng.next_below(n as u64) as u32;
            if v == source || leavers.contains(&v) {
                continue;
            }
            leavers.push(v);
        }
        let mut leaves: Vec<(u64, u32)> = leavers
            .into_iter()
            .map(|v| (rng.next_below(horizon_ns), v))
            .collect();
        leaves.sort_unstable();

        ChurnPlan { joins, leaves }
    }

    /// Members present at the end of the run: the initial group, plus
    /// everyone who joined, minus everyone who left.
    pub fn final_population(&self, n: usize) -> usize {
        n + self.joins.len() - self.leaves.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate: f64) -> ChurnSpec {
        ChurnSpec::symmetric(rate, 200)
    }

    #[test]
    fn join_ids_are_fresh_and_contiguous() {
        let plan = ChurnPlan::sample(&spec(50.0), 100, 0, 1);
        for (i, &(_, id)) in plan.joins.iter().enumerate() {
            assert_eq!(id as usize, 100 + i);
        }
        assert!(plan.joins.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn leavers_are_distinct_existing_non_source() {
        let plan = ChurnPlan::sample(&spec(80.0), 50, 3, 2);
        let mut seen = Vec::new();
        for &(_, v) in &plan.leaves {
            assert!(v != 3, "source must not leave");
            assert!((v as usize) < 50, "leavers are initial members");
            assert!(!seen.contains(&v), "no member leaves twice");
            seen.push(v);
        }
        assert!(plan.leaves.len() <= 49);
    }

    #[test]
    fn population_is_conserved() {
        let plan = ChurnPlan::sample(&spec(30.0), 200, 0, 3);
        assert_eq!(
            plan.final_population(200),
            200 + plan.joins.len() - plan.leaves.len()
        );
    }

    #[test]
    fn zero_rates_yield_empty_plan() {
        let plan = ChurnPlan::sample(&ChurnSpec::symmetric(0.0, 0), 100, 0, 4);
        assert!(plan.joins.is_empty());
        assert!(plan.leaves.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ChurnPlan::sample(&spec(40.0), 120, 0, 9);
        let b = ChurnPlan::sample(&spec(40.0), 120, 0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn times_stay_inside_horizon() {
        let plan = ChurnPlan::sample(&spec(100.0), 100, 0, 5);
        let horizon_ns = 200 * NS_PER_MS;
        for &(t, _) in plan.joins.iter().chain(&plan.leaves) {
            assert!(t < horizon_ns);
        }
    }
}
