//! The Gilbert-Elliott two-state Markov loss channel.
//!
//! State `Good` loses a transmission with probability `loss_good`,
//! state `Bad` with `loss_bad`; after every transmission the chain
//! moves `Good → Bad` with probability `p_gb` and `Bad → Good` with
//! `p_bg`. The stationary distribution puts mass
//! `π_bad = p_gb / (p_gb + p_bg)` on the bad state, so the long-run
//! mean loss rate is `(1 − π_bad)·loss_good + π_bad·loss_bad` — the
//! i.i.d. rate an observer who ignores correlation would fit. The whole
//! point of the channel is that at *equal mean rate* the losses clump:
//! a sender caught in the bad state drops most of its relay fan at
//! once, which hurts a one-shot push protocol strictly more than the
//! same loss mass sprinkled independently (the mixture of thinned
//! fanout laws has the same mean but a larger extinction probability).

use gossip_stats::rng::Xoshiro256StarStar;

use crate::spec::BurstySpec;

/// Channel parameters plus the closed-form stationary quantities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// Good → bad transition probability per transmission.
    pub p_gb: f64,
    /// Bad → good transition probability per transmission.
    pub p_bg: f64,
    /// Loss probability in the good state.
    pub loss_good: f64,
    /// Loss probability in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Builds the channel from its spec (assumed validated: all
    /// probabilities in `[0, 1]`, `p_gb + p_bg > 0`).
    pub fn new(spec: &BurstySpec) -> Self {
        GilbertElliott {
            p_gb: spec.p_gb,
            p_bg: spec.p_bg,
            loss_good: spec.loss_good,
            loss_bad: spec.loss_bad,
        }
    }

    /// Stationary probability of the bad state,
    /// `π_bad = p_gb / (p_gb + p_bg)`.
    pub fn stationary_bad(&self) -> f64 {
        self.p_gb / (self.p_gb + self.p_bg)
    }

    /// Long-run mean loss rate — the i.i.d. rate this channel matches.
    pub fn mean_loss(&self) -> f64 {
        let pi_bad = self.stationary_bad();
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

/// One chain instance — per *sender*, shared by all of its outgoing
/// links, advanced once per transmission (the bursty-fade regime: a
/// node's whole relay batch tends to share channel state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeChain {
    bad: bool,
}

impl GeChain {
    /// Starts a chain from the stationary distribution (one draw from
    /// `rng`), so the channel has no warm-up transient.
    pub fn start(ge: &GilbertElliott, rng: &mut Xoshiro256StarStar) -> Self {
        GeChain {
            bad: rng.next_bool(ge.stationary_bad()),
        }
    }

    /// A chain pinned to a known state (tests and doc examples).
    pub fn in_state(bad: bool) -> Self {
        GeChain { bad }
    }

    /// Whether the chain currently sits in the bad state.
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// One transmission: draws the loss outcome from the current state,
    /// then advances the chain. Returns `true` when the transmission is
    /// lost.
    pub fn transmit(&mut self, ge: &GilbertElliott, rng: &mut Xoshiro256StarStar) -> bool {
        let lost = rng.next_bool(if self.bad { ge.loss_bad } else { ge.loss_good });
        if self.bad {
            if rng.next_bool(ge.p_bg) {
                self.bad = false;
            }
        } else if rng.next_bool(ge.p_gb) {
            self.bad = true;
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> GilbertElliott {
        GilbertElliott::new(&BurstySpec {
            p_gb: 0.05,
            p_bg: 0.15,
            loss_good: 0.0,
            loss_bad: 0.8,
        })
    }

    #[test]
    fn stationary_closed_form() {
        let ge = channel();
        assert!((ge.stationary_bad() - 0.25).abs() < 1e-12);
        assert!((ge.mean_loss() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empirical_loss_matches_mean() {
        let ge = channel();
        let mut rng = Xoshiro256StarStar::new(7);
        let mut chain = GeChain::start(&ge, &mut rng);
        let trials = 200_000;
        let lost = (0..trials)
            .filter(|_| chain.transmit(&ge, &mut rng))
            .count();
        let rate = lost as f64 / trials as f64;
        assert!(
            (rate - ge.mean_loss()).abs() < 0.01,
            "empirical {rate} vs closed form {}",
            ge.mean_loss()
        );
    }

    #[test]
    fn losses_are_bursty() {
        // P(loss | previous loss) must exceed the marginal loss rate:
        // that conditional lift is the burstiness the spec promises.
        let ge = channel();
        let mut rng = Xoshiro256StarStar::new(11);
        let mut chain = GeChain::start(&ge, &mut rng);
        let mut prev = false;
        let (mut after_loss, mut after_loss_lost, mut losses, mut total) = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..200_000 {
            let lost = chain.transmit(&ge, &mut rng);
            total += 1;
            if lost {
                losses += 1;
            }
            if prev {
                after_loss += 1;
                if lost {
                    after_loss_lost += 1;
                }
            }
            prev = lost;
        }
        let marginal = losses as f64 / total as f64;
        let conditional = after_loss_lost as f64 / after_loss as f64;
        assert!(
            conditional > marginal + 0.2,
            "conditional {conditional} should exceed marginal {marginal}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let ge = channel();
        let run = |seed| {
            let mut rng = Xoshiro256StarStar::new(seed);
            let mut chain = GeChain::start(&ge, &mut rng);
            (0..64)
                .map(|_| chain.transmit(&ge, &mut rng))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(42), run(42));
    }
}
