//! The oblivious link-blocking adversary (Doerr et al.).
//!
//! The adversary commits to a static set of up to `f` blocked directed
//! links *before* the protocol flips any coin — it sees the group and
//! the parameters, never the random choices. Every transmission over a
//! blocked link is silently dropped for the whole execution.

use gossip_stats::rng::Xoshiro256StarStar;

use crate::spec::{AdversarySpec, AdversaryStrategy};

/// The committed blocked-link set of one execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockedLinks {
    /// Sorted `(from, to)` pairs for binary-search lookup.
    links: Vec<(u32, u32)>,
}

impl BlockedLinks {
    /// Commits the adversary's choice for a group of `n` members.
    ///
    /// * [`AdversaryStrategy::WorstCase`] is deterministic: it cuts
    ///   whole uplink fans in id order starting at the source — the
    ///   strongest static play against a push protocol, since silencing
    ///   a sender wastes *all* of its relay budget. At `f ≥ n − 1` the
    ///   source cannot reach anyone and reliability collapses to the
    ///   source alone, even though only a fraction `f / n(n−1) ≈ 1/n`
    ///   of links is blocked.
    /// * [`AdversaryStrategy::Random`] draws `f` distinct directed
    ///   links from a seeded stream — the baseline showing how little
    ///   the same budget hurts without targeting.
    pub fn build(n: usize, source: u32, spec: &AdversarySpec, seed: u64) -> Self {
        let edge_count = n.saturating_mul(n.saturating_sub(1));
        let f = spec.f.min(edge_count);
        let mut links: Vec<(u32, u32)> = Vec::with_capacity(f);
        match spec.strategy {
            AdversaryStrategy::WorstCase => {
                let order =
                    std::iter::once(source).chain((0..n as u32).filter(move |&v| v != source));
                'fill: for from in order {
                    for to in 0..n as u32 {
                        if to == from {
                            continue;
                        }
                        if links.len() == f {
                            break 'fill;
                        }
                        links.push((from, to));
                    }
                }
            }
            AdversaryStrategy::Random => {
                let mut rng = Xoshiro256StarStar::new(seed);
                while links.len() < f {
                    let a = rng.next_below(n as u64) as u32;
                    let b = rng.next_below(n as u64) as u32;
                    if a == b || links.contains(&(a, b)) {
                        continue;
                    }
                    links.push((a, b));
                }
            }
        }
        links.sort_unstable();
        BlockedLinks { links }
    }

    /// Whether the adversary blocks the directed link `from → to`.
    pub fn blocks(&self, from: u32, to: u32) -> bool {
        self.links.binary_search(&(from, to)).is_ok()
    }

    /// Number of blocked links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when no link is blocked.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_silences_the_source_first() {
        let spec = AdversarySpec {
            f: 9,
            strategy: AdversaryStrategy::WorstCase,
        };
        let blocked = BlockedLinks::build(10, 0, &spec, 0);
        assert_eq!(blocked.len(), 9);
        for to in 1..10u32 {
            assert!(blocked.blocks(0, to), "source uplink to {to} must be cut");
        }
        assert!(!blocked.blocks(1, 2));
    }

    #[test]
    fn worst_case_spills_into_next_fan() {
        let spec = AdversarySpec {
            f: 12,
            strategy: AdversaryStrategy::WorstCase,
        };
        // Source 3: its 9-link fan first, then node 0's fan in id order.
        let blocked = BlockedLinks::build(10, 3, &spec, 0);
        assert!(blocked.blocks(3, 9));
        assert!(blocked.blocks(0, 1));
        assert!(blocked.blocks(0, 2));
        assert!(blocked.blocks(0, 3));
        assert!(!blocked.blocks(0, 4), "budget exhausted after 12 links");
    }

    #[test]
    fn random_links_are_distinct_and_seeded() {
        let spec = AdversarySpec {
            f: 40,
            strategy: AdversaryStrategy::Random,
        };
        let a = BlockedLinks::build(20, 0, &spec, 7);
        let b = BlockedLinks::build(20, 0, &spec, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        let c = BlockedLinks::build(20, 0, &spec, 8);
        assert_ne!(a, c, "different seeds should differ (a.s.)");
    }

    #[test]
    fn budget_capped_at_edge_count() {
        let spec = AdversarySpec {
            f: 1_000_000,
            strategy: AdversaryStrategy::WorstCase,
        };
        let blocked = BlockedLinks::build(5, 0, &spec, 0);
        assert_eq!(blocked.len(), 20);
    }
}
