//! # gossip-faults — fault models beyond the paper's i.i.d. world
//!
//! The source paper prices exactly two hazards: members crash
//! independently before the broadcast starts (site percolation with
//! survival probability `q`), and messages are lost independently with
//! a uniform probability (bond percolation). Both assumptions are load
//! bearing — the generating-function calculus of Eqs. 3–12 needs
//! independence — and both are violated by the failure modes real
//! deployments actually see. This crate describes those violations as
//! data, so every evaluation layer of the workspace can inject them and
//! measure where the paper's predictions stop tracking reality.
//!
//! Four fault families ride on a [`FaultSpec`] (default: all absent,
//! which every backend treats as a byte-identical passthrough of the
//! classic `FailureSpec`/loss knobs):
//!
//! * **Membership churn** ([`ChurnSpec`]) — Poisson joins and leaves
//!   during dissemination. Joins bootstrap into the membership view
//!   mid-run; leaves are fail-stop crashes at sampled virtual times.
//!   Sampled into a concrete [`ChurnPlan`] per execution.
//! * **Correlated zone failures** ([`ZoneFailureSpec`]) — kill whole
//!   zones of a `Clustered` overlay at one scheduled virtual time, the
//!   partition/datacenter-loss pattern of Malkhi et al.'s WAN multicast
//!   work. Crashes are maximally correlated, the exact opposite of the
//!   paper's i.i.d. site percolation.
//! * **Bursty loss** ([`BurstySpec`]) — a two-state Gilbert-Elliott
//!   Markov channel ([`GilbertElliott`], [`GeChain`]) replacing i.i.d.
//!   loss: per-sender chain state makes consecutive relays share fate.
//! * **Adversarial blocking** ([`AdversarySpec`]) — an oblivious
//!   adversary blocks up to `f` directed links for the whole run
//!   (Doerr et al.'s model), with a worst-case selector that cuts
//!   uplinks starting at the source and a seeded random baseline
//!   ([`BlockedLinks`]).
//!
//! The spec validates against the group size and topology
//! ([`FaultSpec::validate`], typed [`FaultError`] mirroring the
//! topology crate's error shape) and knows which degenerate corners
//! still reduce to the paper's closed forms ([`FaultSpec::reduce`]),
//! so the analytic backend can keep covering them.

pub mod adversary;
pub mod churn;
pub mod gilbert;
pub mod spec;

pub use adversary::BlockedLinks;
pub use churn::ChurnPlan;
pub use gilbert::{GeChain, GilbertElliott};
pub use spec::{
    zone_members, AdversarySpec, AdversaryStrategy, BurstySpec, ChurnSpec, FaultError,
    FaultReduction, FaultSpec, ZoneFailureSpec,
};
