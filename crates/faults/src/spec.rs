//! Serde-friendly fault descriptions and their validation.
//!
//! A [`FaultSpec`] is pure data riding on the scenario: which fault
//! families are active and with what parameters. Nothing here samples
//! randomness or touches an engine — the concrete realizations
//! ([`crate::ChurnPlan`], [`crate::BlockedLinks`], [`crate::GeChain`])
//! are built per execution by the backends from seed-derived streams.

use serde::{Deserialize, Serialize};
use std::fmt;

use gossip_topology::{OverlaySpec, TopologySpec};

/// A malformed fault parameter. Field-compatible with the model layer's
/// `InvalidParameter` error (and the topology crate's `TopologyError`)
/// so callers can map it losslessly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultError {
    /// Parameter name, e.g. `"join_per_sec"`.
    pub name: &'static str,
    /// Offending value.
    pub value: f64,
    /// Human-readable domain description.
    pub requirement: &'static str,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault parameter {} = {}: {}",
            self.name, self.value, self.requirement
        )
    }
}

impl std::error::Error for FaultError {}

fn invalid(name: &'static str, value: f64, requirement: &'static str) -> FaultError {
    FaultError {
        name,
        value,
        requirement,
    }
}

/// Poisson membership churn over a virtual-time horizon.
///
/// Joins and leaves arrive as independent Poisson processes over
/// `[0, horizon_ms]` of virtual time. A join adds a brand-new member
/// (ids `n, n+1, …` in arrival order) that bootstraps into the
/// membership view and participates from its join time onward; a leave
/// fail-stop crashes a uniformly chosen existing non-source member.
/// Members that left by the end of the run drop out of the reliability
/// denominator (the crash-schedule convention); members that joined are
/// counted in it — a joiner that arrives after dissemination quiesced
/// never hears the broadcast, which is exactly the churn cost the
/// paper's static model cannot price.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Expected joins per second of virtual time (`≥ 0`).
    pub join_per_sec: f64,
    /// Expected leaves per second of virtual time (`≥ 0`).
    pub leave_per_sec: f64,
    /// Churn window in virtual milliseconds (events sample uniformly
    /// within it).
    pub horizon_ms: u64,
}

impl ChurnSpec {
    /// Equal join and leave rates over the given window.
    pub fn symmetric(rate_per_sec: f64, horizon_ms: u64) -> Self {
        ChurnSpec {
            join_per_sec: rate_per_sec,
            leave_per_sec: rate_per_sec,
            horizon_ms,
        }
    }
}

/// Correlated zone failures: whole zones of a `Clustered` overlay
/// fail-stop together at one scheduled virtual time.
///
/// Zone membership follows the clustered generator's layout exactly
/// (contiguous id blocks, see [`zone_members`]). The source member is
/// immune even when its home zone is listed, mirroring the paper's
/// immortal source; every other member of a listed zone is crashed by
/// the end of the run and leaves the reliability denominator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ZoneFailureSpec {
    /// Indices of the zones to kill (each `< zones` of the overlay).
    pub zones: Vec<usize>,
    /// Virtual time of the correlated failure, in milliseconds
    /// (`0` = the zones are dead from the start).
    pub at_ms: u64,
}

/// Gilbert-Elliott bursty loss: a two-state (good/bad) Markov channel
/// replacing the scenario's i.i.d. loss.
///
/// Each *sender* carries one chain over all of its outgoing links — a
/// node caught in the bad state loses most of its relay batch at once
/// (a bursty fade), which is what distinguishes the channel from i.i.d.
/// loss at the same mean rate in a one-shot push protocol. The chain
/// advances one step per transmission; its stationary loss rate has the
/// closed form implemented by [`crate::GilbertElliott::mean_loss`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BurstySpec {
    /// Good → bad transition probability per transmission (`∈ [0, 1]`).
    pub p_gb: f64,
    /// Bad → good transition probability per transmission (`∈ [0, 1]`).
    pub p_bg: f64,
    /// Loss probability while in the good state (`∈ [0, 1]`).
    pub loss_good: f64,
    /// Loss probability while in the bad state (`∈ [0, 1]`).
    pub loss_bad: f64,
}

/// How the oblivious adversary picks its blocked links.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversaryStrategy {
    /// Doerr-style worst case against push: cut whole uplink fans in id
    /// order starting at the source (`f ≥ n − 1` silences the source
    /// entirely).
    WorstCase,
    /// `f` distinct directed links chosen uniformly from a seeded
    /// stream — the "how bad is a *random* adversary" baseline.
    Random,
}

/// An oblivious adversary that blocks up to `f` directed links for the
/// whole execution (chosen before the protocol's coins are flipped, per
/// Doerr et al.'s model).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdversarySpec {
    /// Number of directed links blocked (`< n(n−1)`).
    pub f: usize,
    /// Worst-case or seeded-random link selection.
    pub strategy: AdversaryStrategy,
}

/// The fault families riding on one scenario. The default (all absent)
/// is a strict no-op: every backend keeps its classic code path bit for
/// bit.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Poisson join/leave churn during dissemination.
    pub churn: Option<ChurnSpec>,
    /// Correlated whole-zone crashes on a clustered overlay.
    pub zone_failure: Option<ZoneFailureSpec>,
    /// Gilbert-Elliott bursty loss (replaces i.i.d. loss; the scenario's
    /// `loss` knob must stay 0 when enabled).
    pub bursty_loss: Option<BurstySpec>,
    /// Oblivious adversarial link blocking.
    pub adversary: Option<AdversarySpec>,
}

/// What a [`FaultSpec`] means to a layer that only knows the paper's
/// closed forms (see [`FaultSpec::reduce`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultReduction {
    /// Behaves exactly like the fault-free scenario.
    Noop,
    /// Equivalent to extra i.i.d. per-message loss at this rate
    /// (composes with the scenario's own loss knob as independent
    /// thinning).
    ExtraIidLoss(f64),
    /// No closed form — the analytic layer must decline with this
    /// explanation.
    Unsupported(&'static str),
}

impl FaultSpec {
    /// The fault-free spec (same as `FaultSpec::default()`).
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Adds membership churn.
    pub fn with_churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Adds a correlated zone failure.
    pub fn with_zone_failure(mut self, zones: Vec<usize>, at_ms: u64) -> Self {
        self.zone_failure = Some(ZoneFailureSpec { zones, at_ms });
        self
    }

    /// Adds Gilbert-Elliott bursty loss.
    pub fn with_bursty_loss(mut self, bursty: BurstySpec) -> Self {
        self.bursty_loss = Some(bursty);
        self
    }

    /// Adds adversarial link blocking.
    pub fn with_adversary(mut self, f: usize, strategy: AdversaryStrategy) -> Self {
        self.adversary = Some(AdversarySpec { f, strategy });
        self
    }

    /// True for the all-absent spec: every backend must treat it as a
    /// byte-identical passthrough of the classic failure/loss knobs.
    pub fn is_default(&self) -> bool {
        self == &FaultSpec::default()
    }

    /// Checks every present family's parameter domain against the group
    /// size and topology.
    pub fn validate(&self, n: usize, topology: &TopologySpec) -> Result<(), FaultError> {
        if let Some(c) = &self.churn {
            if !c.join_per_sec.is_finite() || c.join_per_sec < 0.0 {
                return Err(invalid(
                    "join_per_sec",
                    c.join_per_sec,
                    "churn rates must be finite and >= 0",
                ));
            }
            if !c.leave_per_sec.is_finite() || c.leave_per_sec < 0.0 {
                return Err(invalid(
                    "leave_per_sec",
                    c.leave_per_sec,
                    "churn rates must be finite and >= 0",
                ));
            }
            if (c.join_per_sec > 0.0 || c.leave_per_sec > 0.0) && c.horizon_ms == 0 {
                return Err(invalid(
                    "horizon_ms",
                    c.horizon_ms as f64,
                    "churn with nonzero rates needs a positive horizon",
                ));
            }
        }
        if let Some(z) = &self.zone_failure {
            let zones = match topology.overlay {
                OverlaySpec::Clustered { zones, .. } => zones,
                _ => {
                    return Err(invalid(
                        "zone_failure",
                        z.zones.len() as f64,
                        "correlated zone failures need a Clustered topology",
                    ))
                }
            };
            for &zone in &z.zones {
                if zone >= zones {
                    return Err(invalid(
                        "zone",
                        zone as f64,
                        "zone index must be below the clustered overlay's zone count",
                    ));
                }
            }
            // The engines convert at_ms to nanoseconds of virtual time;
            // a value past u64::MAX / 1e6 would wrap the clock.
            if z.at_ms > u64::MAX / 1_000_000 {
                return Err(invalid(
                    "at_ms",
                    z.at_ms as f64,
                    "zone-failure time must fit the nanosecond clock (at_ms <= u64::MAX / 1e6)",
                ));
            }
        }
        if let Some(b) = &self.bursty_loss {
            for (name, value) in [
                ("p_gb", b.p_gb),
                ("p_bg", b.p_bg),
                ("loss_good", b.loss_good),
                ("loss_bad", b.loss_bad),
            ] {
                if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                    return Err(invalid(
                        name,
                        value,
                        "Gilbert-Elliott probabilities must lie in [0, 1]",
                    ));
                }
            }
            if b.p_gb + b.p_bg == 0.0 {
                return Err(invalid(
                    "p_gb",
                    b.p_gb,
                    "the Gilbert-Elliott chain needs p_gb + p_bg > 0 to mix",
                ));
            }
        }
        if let Some(a) = &self.adversary {
            let edge_count = n.saturating_mul(n.saturating_sub(1));
            if a.f >= edge_count {
                return Err(invalid(
                    "f",
                    a.f as f64,
                    "the adversary must block fewer links than the complete digraph has (f < n(n-1))",
                ));
            }
        }
        Ok(())
    }

    /// Whether any family present here changes link-level or membership
    /// dynamics *during* the run (churn, bursty loss) — the families a
    /// static percolation layer cannot express. Returns the first
    /// offender's description for a typed refusal.
    pub fn first_dynamic_family(&self) -> Option<&'static str> {
        if self.churn.is_some() {
            return Some("membership churn (the percolation graph is static; use the protocol, netsim, or runtime backend)");
        }
        if self.bursty_loss.is_some() {
            return Some("bursty (Gilbert-Elliott) loss (per-sender channel state is dynamic; use the protocol, netsim, or runtime backend)");
        }
        None
    }

    /// Maps degenerate corners back onto the paper's closed forms so the
    /// analytic layer keeps covering them; everything genuinely novel is
    /// a typed refusal.
    pub fn reduce(&self) -> FaultReduction {
        if let Some(c) = &self.churn {
            if c.join_per_sec > 0.0 || c.leave_per_sec > 0.0 {
                return FaultReduction::Unsupported(
                    "membership churn (no closed form for mid-dissemination joins and leaves)",
                );
            }
        }
        if let Some(z) = &self.zone_failure {
            if !z.zones.is_empty() {
                return FaultReduction::Unsupported(
                    "correlated zone failures (member crashes are not independent, breaking the site-percolation reduction)",
                );
            }
        }
        if let Some(a) = &self.adversary {
            if a.f > 0 {
                return FaultReduction::Unsupported(
                    "adversarial link blocking (worst-case link removal has no i.i.d. equivalent)",
                );
            }
        }
        if let Some(b) = &self.bursty_loss {
            if (b.loss_good - b.loss_bad).abs() > 1e-12 {
                return FaultReduction::Unsupported(
                    "bursty (Gilbert-Elliott) loss (correlated link state breaks the i.i.d. bond-percolation reduction)",
                );
            }
            if b.loss_good > 0.0 {
                return FaultReduction::ExtraIidLoss(b.loss_good);
            }
        }
        FaultReduction::Noop
    }

    /// Compact human-readable description, e.g.
    /// `churn(j=2,l=2,h=200ms)+adv(f=999,worst)`. Empty for the default.
    pub fn label(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(c) = &self.churn {
            parts.push(format!(
                "churn(j={},l={},h={}ms)",
                c.join_per_sec, c.leave_per_sec, c.horizon_ms
            ));
        }
        if let Some(z) = &self.zone_failure {
            let zones: Vec<String> = z.zones.iter().map(|z| z.to_string()).collect();
            parts.push(format!("zones([{}]@{}ms)", zones.join(","), z.at_ms));
        }
        if let Some(b) = &self.bursty_loss {
            parts.push(format!(
                "ge(pgb={},pbg={},lg={},lb={})",
                b.p_gb, b.p_bg, b.loss_good, b.loss_bad
            ));
        }
        if let Some(a) = &self.adversary {
            let strategy = match a.strategy {
                AdversaryStrategy::WorstCase => "worst",
                AdversaryStrategy::Random => "rand",
            };
            parts.push(format!("adv(f={},{})", a.f, strategy));
        }
        parts.join("+")
    }
}

/// Members of zone `zone` in the clustered layout over `n` members and
/// `zones` zones — contiguous id blocks with sizes differing by at most
/// one, matching the `gossip-topology` generator exactly:
/// zone `z` covers `[⌈zn/zones⌉, ⌈(z+1)n/zones⌉)`.
pub fn zone_members(n: usize, zones: usize, zone: usize) -> std::ops::Range<usize> {
    (zone * n).div_ceil(zones)..((zone + 1) * n).div_ceil(zones)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_topology::TopologySpec;

    fn clustered(zones: usize) -> TopologySpec {
        TopologySpec::new(OverlaySpec::Clustered {
            zones,
            intra: 4,
            inter: 1,
        })
    }

    #[test]
    fn default_is_default_and_unlabelled() {
        let spec = FaultSpec::default();
        assert!(spec.is_default());
        assert_eq!(spec.label(), "");
        assert_eq!(spec.reduce(), FaultReduction::Noop);
        assert!(spec.validate(100, &TopologySpec::default()).is_ok());
    }

    #[test]
    fn rejects_negative_churn_rates() {
        let spec = FaultSpec::none().with_churn(ChurnSpec {
            join_per_sec: -1.0,
            leave_per_sec: 0.0,
            horizon_ms: 100,
        });
        let err = spec.validate(100, &TopologySpec::default()).unwrap_err();
        assert_eq!(err.name, "join_per_sec");
        let spec = FaultSpec::none().with_churn(ChurnSpec {
            join_per_sec: 0.0,
            leave_per_sec: f64::NAN,
            horizon_ms: 100,
        });
        assert_eq!(
            spec.validate(100, &TopologySpec::default())
                .unwrap_err()
                .name,
            "leave_per_sec"
        );
        let spec = FaultSpec::none().with_churn(ChurnSpec::symmetric(5.0, 0));
        assert_eq!(
            spec.validate(100, &TopologySpec::default())
                .unwrap_err()
                .name,
            "horizon_ms"
        );
    }

    #[test]
    fn zone_failure_needs_clustered_topology() {
        let spec = FaultSpec::none().with_zone_failure(vec![0], 10);
        let err = spec.validate(100, &TopologySpec::default()).unwrap_err();
        assert_eq!(err.name, "zone_failure");
        assert!(spec.validate(100, &clustered(5)).is_ok());
    }

    #[test]
    fn zone_index_must_be_in_range() {
        let spec = FaultSpec::none().with_zone_failure(vec![5], 10);
        let err = spec.validate(100, &clustered(5)).unwrap_err();
        assert_eq!(err.name, "zone");
        assert_eq!(err.value, 5.0);
    }

    #[test]
    fn zone_failure_time_must_fit_the_nanosecond_clock() {
        let spec = FaultSpec::none().with_zone_failure(vec![0], u64::MAX / 1_000_000 + 1);
        let err = spec.validate(100, &clustered(5)).unwrap_err();
        assert_eq!(err.name, "at_ms");
        let ok = FaultSpec::none().with_zone_failure(vec![0], u64::MAX / 1_000_000);
        assert!(ok.validate(100, &clustered(5)).is_ok());
    }

    #[test]
    fn bursty_probabilities_must_be_unit_interval() {
        let bad = BurstySpec {
            p_gb: 0.1,
            p_bg: 1.5,
            loss_good: 0.0,
            loss_bad: 0.8,
        };
        let spec = FaultSpec::none().with_bursty_loss(bad);
        assert_eq!(
            spec.validate(100, &TopologySpec::default())
                .unwrap_err()
                .name,
            "p_bg"
        );
        let frozen = BurstySpec {
            p_gb: 0.0,
            p_bg: 0.0,
            loss_good: 0.0,
            loss_bad: 0.8,
        };
        let spec = FaultSpec::none().with_bursty_loss(frozen);
        assert_eq!(
            spec.validate(100, &TopologySpec::default())
                .unwrap_err()
                .requirement,
            "the Gilbert-Elliott chain needs p_gb + p_bg > 0 to mix"
        );
    }

    #[test]
    fn adversary_bounded_by_edge_count() {
        let spec = FaultSpec::none().with_adversary(90, AdversaryStrategy::WorstCase);
        assert!(spec.validate(10, &TopologySpec::default()).is_err());
        let spec = FaultSpec::none().with_adversary(89, AdversaryStrategy::WorstCase);
        assert!(spec.validate(10, &TopologySpec::default()).is_ok());
    }

    #[test]
    fn reductions_cover_degenerate_corners() {
        // Zero-rate churn, empty zone list, f = 0: all noops.
        let spec = FaultSpec::none()
            .with_churn(ChurnSpec::symmetric(0.0, 100))
            .with_zone_failure(vec![], 10)
            .with_adversary(0, AdversaryStrategy::Random);
        assert_eq!(spec.reduce(), FaultReduction::Noop);
        // Equal-state bursty loss is plain i.i.d. loss.
        let spec = FaultSpec::none().with_bursty_loss(BurstySpec {
            p_gb: 0.2,
            p_bg: 0.3,
            loss_good: 0.25,
            loss_bad: 0.25,
        });
        assert_eq!(spec.reduce(), FaultReduction::ExtraIidLoss(0.25));
        // Real burstiness has no closed form.
        let spec = FaultSpec::none().with_bursty_loss(BurstySpec {
            p_gb: 0.05,
            p_bg: 0.15,
            loss_good: 0.0,
            loss_bad: 0.8,
        });
        assert!(matches!(spec.reduce(), FaultReduction::Unsupported(_)));
        assert!(matches!(
            FaultSpec::none()
                .with_churn(ChurnSpec::symmetric(5.0, 100))
                .reduce(),
            FaultReduction::Unsupported(_)
        ));
    }

    #[test]
    fn labels_compose() {
        let spec = FaultSpec::none()
            .with_churn(ChurnSpec::symmetric(2.0, 200))
            .with_zone_failure(vec![0, 3], 5)
            .with_adversary(999, AdversaryStrategy::WorstCase);
        assert_eq!(
            spec.label(),
            "churn(j=2,l=2,h=200ms)+zones([0,3]@5ms)+adv(f=999,worst)"
        );
    }

    #[test]
    fn zone_members_matches_clustered_layout() {
        // n = 10, zones = 3: generator's zone_of(v) = v * zones / n.
        let zone_of = |v: usize| v * 3 / 10;
        for zone in 0..3 {
            for v in zone_members(10, 3, zone) {
                assert_eq!(zone_of(v), zone, "member {v} of zone {zone}");
            }
        }
        let total: usize = (0..3).map(|z| zone_members(10, 3, z).len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn serde_round_trip() {
        let spec = FaultSpec::none()
            .with_churn(ChurnSpec::symmetric(3.0, 150))
            .with_bursty_loss(BurstySpec {
                p_gb: 0.05,
                p_bg: 0.15,
                loss_good: 0.0,
                loss_bad: 0.8,
            })
            .with_adversary(42, AdversaryStrategy::Random);
        let json = serde::json::to_string(&spec).unwrap();
        let back: FaultSpec = serde::json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
