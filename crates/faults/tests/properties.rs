//! Property-based invariants of the fault models: the Gilbert-Elliott
//! chain's stationary loss rate matches its closed form and is
//! seed-deterministic; churn plans conserve the population accounting.

use gossip_faults::{BurstySpec, ChurnPlan, ChurnSpec, GeChain, GilbertElliott};
use gossip_stats::rng::Xoshiro256StarStar;
use proptest::prelude::*;

/// Mixing-friendly Gilbert-Elliott parameters: transition probabilities
/// bounded away from 0 and 1 so 40k transmissions see both states often.
fn ge_params() -> impl Strategy<Value = BurstySpec> {
    (1u32..=8, 1u32..=8, 0u32..=4, 4u32..=10).prop_map(|(gb, bg, lg, lb)| BurstySpec {
        p_gb: gb as f64 / 10.0,
        p_bg: bg as f64 / 10.0,
        loss_good: lg as f64 / 10.0,
        loss_bad: lb as f64 / 10.0,
    })
}

proptest! {
    #[test]
    fn ge_stationary_loss_matches_closed_form(spec in ge_params(), seed in 0u64..1_000_000) {
        let ge = GilbertElliott::new(&spec);
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut chain = GeChain::start(&ge, &mut rng);
        let trials = 40_000u32;
        let lost = (0..trials).filter(|_| chain.transmit(&ge, &mut rng)).count();
        let rate = lost as f64 / trials as f64;
        // Correlated samples widen the CI; 0.04 absolute tolerance holds
        // comfortably for chains that flip every few steps.
        prop_assert!(
            (rate - ge.mean_loss()).abs() < 0.04,
            "empirical {} vs closed form {} for {:?}",
            rate,
            ge.mean_loss(),
            spec
        );
    }

    #[test]
    fn ge_chain_is_seed_deterministic(spec in ge_params(), seed in 0u64..1_000_000) {
        let ge = GilbertElliott::new(&spec);
        let run = || {
            let mut rng = Xoshiro256StarStar::new(seed);
            let mut chain = GeChain::start(&ge, &mut rng);
            (0..256).map(|_| chain.transmit(&ge, &mut rng)).collect::<Vec<bool>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn churn_plan_conserves_population(
        n in 10usize..500,
        rate in 0u32..=100,
        horizon_ms in 1u64..500,
        seed in 0u64..1_000_000,
    ) {
        let spec = ChurnSpec::symmetric(rate as f64, horizon_ms);
        let plan = ChurnPlan::sample(&spec, n, 0, seed);
        // Size conservation: initial + joins − leaves = final population.
        prop_assert_eq!(plan.final_population(n), n + plan.joins.len() - plan.leaves.len());
        // Nobody leaves twice, the source never leaves, leavers exist.
        let mut leavers: Vec<u32> = plan.leaves.iter().map(|&(_, v)| v).collect();
        leavers.sort_unstable();
        let unique = leavers.len();
        leavers.dedup();
        prop_assert_eq!(leavers.len(), unique, "duplicate leaver");
        prop_assert!(leavers.iter().all(|&v| v != 0 && (v as usize) < n));
        prop_assert!(plan.leaves.len() < n);
        // Join ids are exactly n..n+K in time order.
        for (i, &(_, id)) in plan.joins.iter().enumerate() {
            prop_assert_eq!(id as usize, n + i);
        }
    }
}
