//! Serde-friendly traffic descriptions and their validation.
//!
//! A [`TrafficSpec`] is pure data riding on the scenario: how many
//! concurrent messages, how they arrive, and what per-node budget moves
//! them. Nothing here samples randomness — the concrete injection plan
//! is built per execution by [`crate::injection_rounds`] and the stream
//! engine runs it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Hard upper bound on message ids per wire frame — keeps the engine's
/// frames inline (no per-frame allocation on the hot path).
pub const MAX_FRAME_IDS: usize = 16;

/// A malformed traffic parameter. Field-compatible with the model
/// layer's `InvalidParameter` error (and the topology and faults
/// crates' error shapes) so callers can map it losslessly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficError {
    /// Parameter name, e.g. `"messages"`.
    pub name: &'static str,
    /// Offending value.
    pub value: f64,
    /// Human-readable domain description.
    pub requirement: &'static str,
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid traffic parameter {} = {}: {}",
            self.name, self.value, self.requirement
        )
    }
}

impl std::error::Error for TrafficError {}

fn invalid(name: &'static str, value: f64, requirement: &'static str) -> TrafficError {
    TrafficError {
        name,
        value,
        requirement,
    }
}

/// When the k messages of a stream enter the system, in rounds of the
/// stream engine's clock. All plans are seed-deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Every message is injected at round 0 (a burst).
    AllAtOnce,
    /// Message `m` is injected at round `m · every_rounds`.
    FixedInterval {
        /// Rounds between consecutive injections (`≥ 1`).
        every_rounds: u64,
    },
    /// Poisson arrivals: inter-injection gaps are i.i.d. exponential
    /// with mean `1 / rate_per_round`, sampled from the seed stream.
    Poisson {
        /// Expected injections per round (`> 0`, finite).
        rate_per_round: f64,
    },
}

/// Whether relays pack multiple message ids into one wire frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchingSpec {
    /// One message id per frame — the bandwidth cap counts message
    /// copies, exactly the single-message protocol repeated k times.
    Off,
    /// Rumor piggybacking: ids that arrive together relay together —
    /// one fanout draw per arrival group, up to `frame_limit` ids per
    /// frame, so a frame of the per-round budget carries several
    /// message copies.
    Piggyback {
        /// Maximum message ids per frame (`1 ..= MAX_FRAME_IDS`).
        frame_limit: usize,
    },
}

/// A sustained multi-message workload riding on one scenario: the
/// source streams `messages` concurrent rumors under per-node budget
/// pressure. `Scenario.traffic = None` (the default) means the classic
/// single-message execution, byte for byte.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Number of concurrent messages k (`≥ 1`).
    pub messages: usize,
    /// Injection plan for the k messages.
    pub arrival: ArrivalSpec,
    /// Per-node bandwidth cap: at most B frames transmitted per node
    /// per round (`None` = uncapped). With batching off a frame is one
    /// message copy, so B caps message-copies per round.
    pub bandwidth: Option<usize>,
    /// Bounded send-queue capacity in frames; a relay generated while
    /// the queue is full is dropped and accounted as overflow.
    pub queue_capacity: usize,
    /// Rumor batching/piggybacking policy.
    pub batching: BatchingSpec,
}

impl TrafficSpec {
    /// A stream of `messages` concurrent rumors with the defaults: a
    /// round-0 burst, no bandwidth cap, a 1024-frame queue, batching
    /// off.
    pub fn stream(messages: usize) -> Self {
        TrafficSpec {
            messages,
            arrival: ArrivalSpec::AllAtOnce,
            bandwidth: None,
            queue_capacity: 1024,
            batching: BatchingSpec::Off,
        }
    }

    /// Sets the injection plan.
    pub fn with_arrival(mut self, arrival: ArrivalSpec) -> Self {
        self.arrival = arrival;
        self
    }

    /// Caps each node at `frames` transmissions per round.
    pub fn with_bandwidth(mut self, frames: usize) -> Self {
        self.bandwidth = Some(frames);
        self
    }

    /// Sets the bounded send-queue capacity in frames.
    pub fn with_queue_capacity(mut self, frames: usize) -> Self {
        self.queue_capacity = frames;
        self
    }

    /// Enables rumor piggybacking with up to `frame_limit` ids per
    /// frame.
    pub fn with_piggyback(mut self, frame_limit: usize) -> Self {
        self.batching = BatchingSpec::Piggyback { frame_limit };
        self
    }

    /// Message ids one wire frame may carry: 1 with batching off,
    /// `frame_limit` with piggybacking.
    pub fn frame_limit(&self) -> usize {
        match self.batching {
            BatchingSpec::Off => 1,
            BatchingSpec::Piggyback { frame_limit } => frame_limit,
        }
    }

    /// True when piggybacking is enabled.
    pub fn batched(&self) -> bool {
        matches!(self.batching, BatchingSpec::Piggyback { .. })
    }

    /// Checks every parameter domain.
    pub fn validate(&self) -> Result<(), TrafficError> {
        if self.messages == 0 {
            return Err(invalid(
                "messages",
                0.0,
                "a traffic stream needs at least one message (k >= 1)",
            ));
        }
        if self.messages > 65_536 {
            return Err(invalid(
                "messages",
                self.messages as f64,
                "at most 65536 concurrent messages per stream",
            ));
        }
        match self.arrival {
            ArrivalSpec::AllAtOnce => {}
            ArrivalSpec::FixedInterval { every_rounds } => {
                if every_rounds == 0 {
                    return Err(invalid(
                        "every_rounds",
                        0.0,
                        "fixed-interval arrivals need at least one round between injections",
                    ));
                }
            }
            ArrivalSpec::Poisson { rate_per_round } => {
                if !(rate_per_round.is_finite() && rate_per_round > 0.0) {
                    return Err(invalid(
                        "rate_per_round",
                        rate_per_round,
                        "Poisson arrival rate must be finite and > 0",
                    ));
                }
            }
        }
        if self.bandwidth == Some(0) {
            return Err(invalid(
                "bandwidth",
                0.0,
                "bandwidth cap must allow at least one frame per round (or None = uncapped)",
            ));
        }
        if self.queue_capacity == 0 {
            return Err(invalid(
                "queue_capacity",
                0.0,
                "send queue needs room for at least one frame",
            ));
        }
        if let BatchingSpec::Piggyback { frame_limit } = self.batching {
            if frame_limit == 0 || frame_limit > MAX_FRAME_IDS {
                return Err(invalid(
                    "frame_limit",
                    frame_limit as f64,
                    "piggyback frame limit must lie in 1..=16",
                ));
            }
        }
        Ok(())
    }

    /// One-line description, e.g. `stream(k=16,B=4,q=32,batch=8)`.
    pub fn label(&self) -> String {
        let mut label = format!("stream(k={}", self.messages);
        match self.arrival {
            ArrivalSpec::AllAtOnce => {}
            ArrivalSpec::FixedInterval { every_rounds } => {
                label.push_str(&format!(",every={every_rounds}r"));
            }
            ArrivalSpec::Poisson { rate_per_round } => {
                label.push_str(&format!(",po({rate_per_round}/r)"));
            }
        }
        if let Some(b) = self.bandwidth {
            label.push_str(&format!(",B={b}"));
        }
        label.push_str(&format!(",q={}", self.queue_capacity));
        if let BatchingSpec::Piggyback { frame_limit } = self.batching {
            label.push_str(&format!(",batch={frame_limit}"));
        }
        label.push(')');
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(TrafficSpec::stream(1).validate().is_ok());
        assert!(TrafficSpec::stream(64)
            .with_bandwidth(4)
            .with_queue_capacity(32)
            .with_piggyback(8)
            .with_arrival(ArrivalSpec::Poisson {
                rate_per_round: 0.5
            })
            .validate()
            .is_ok());
    }

    #[test]
    fn rejects_malformed_parameters() {
        let bad = [
            TrafficSpec::stream(0),
            TrafficSpec::stream(1 << 20),
            TrafficSpec::stream(4).with_bandwidth(0),
            TrafficSpec::stream(4).with_queue_capacity(0),
            TrafficSpec::stream(4).with_piggyback(0),
            TrafficSpec::stream(4).with_piggyback(MAX_FRAME_IDS + 1),
            TrafficSpec::stream(4).with_arrival(ArrivalSpec::FixedInterval { every_rounds: 0 }),
            TrafficSpec::stream(4).with_arrival(ArrivalSpec::Poisson {
                rate_per_round: -1.0,
            }),
            TrafficSpec::stream(4).with_arrival(ArrivalSpec::Poisson {
                rate_per_round: f64::NAN,
            }),
        ];
        for spec in bad {
            assert!(spec.validate().is_err(), "{spec:?} should be rejected");
        }
    }

    #[test]
    fn error_is_field_compatible() {
        let err = TrafficSpec::stream(0).validate().unwrap_err();
        assert_eq!(err.name, "messages");
        assert!(err.to_string().contains("messages"));
    }

    #[test]
    fn label_mentions_knobs() {
        let label = TrafficSpec::stream(16)
            .with_bandwidth(4)
            .with_queue_capacity(32)
            .with_piggyback(8)
            .label();
        assert_eq!(label, "stream(k=16,B=4,q=32,batch=8)");
        assert_eq!(TrafficSpec::stream(1).label(), "stream(k=1,q=1024)");
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = TrafficSpec::stream(16)
            .with_bandwidth(4)
            .with_piggyback(8)
            .with_arrival(ArrivalSpec::Poisson {
                rate_per_round: 0.25,
            });
        let json = serde::json::to_string(&spec).unwrap();
        let back: TrafficSpec = serde::json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
