//! The traffic section every backend fills the same way, plus the
//! histogram percentile helper behind the latency figures.

use serde::{Deserialize, Serialize};

/// Per-stream results a backend appends to its `Report` when the
/// scenario carries a [`crate::TrafficSpec`]; `None` fields are metrics
/// the producing layer has no clock or wire for.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Number of concurrent messages k in the stream.
    pub messages: usize,
    /// Mean per-message reliability: the average over messages of each
    /// message's take-off-conditioned reliability.
    pub reliability_mean: f64,
    /// Worst per-message reliability across the k messages.
    pub reliability_min: f64,
    /// Sustained throughput: k divided by the simulated seconds to
    /// stream quiescence (timed backends only).
    pub messages_per_sec: Option<f64>,
    /// Median delivery latency in rounds from a message's injection to
    /// a member's first receipt.
    pub latency_rounds_p50: Option<f64>,
    /// 90th-percentile delivery latency in rounds.
    pub latency_rounds_p90: Option<f64>,
    /// 99th-percentile delivery latency in rounds.
    pub latency_rounds_p99: Option<f64>,
    /// Mean message copies put on the wire per replication.
    pub copies_sent: Option<f64>,
    /// Mean copies dropped at full send queues per replication — the
    /// typed overflow accounting of the bounded queue.
    pub copies_dropped: Option<f64>,
    /// Mean copies lost in transit per replication.
    pub copies_lost: Option<f64>,
    /// True when rumor piggybacking was active.
    pub batched: bool,
}

/// Nearest-rank percentile of a histogram whose index is the value
/// (`histogram[v]` = number of observations equal to `v`); `None` on an
/// empty histogram. `p` is a fraction in `[0, 1]`.
pub fn percentile(histogram: &[u64], p: f64) -> Option<f64> {
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (value, &count) in histogram.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return Some(value as f64);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        // Values: 1×0, 8×1, 1×2.
        let hist = [1, 8, 1];
        assert_eq!(percentile(&hist, 0.5), Some(1.0));
        assert_eq!(percentile(&hist, 0.05), Some(0.0));
        assert_eq!(percentile(&hist, 0.99), Some(2.0));
        assert_eq!(percentile(&hist, 0.0), Some(0.0));
        assert_eq!(percentile(&hist, 1.0), Some(2.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[0, 0], 0.5), None);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = TrafficReport {
            messages: 16,
            reliability_mean: 0.97,
            reliability_min: 0.91,
            messages_per_sec: Some(1234.5),
            latency_rounds_p50: Some(4.0),
            latency_rounds_p90: Some(7.0),
            latency_rounds_p99: Some(11.0),
            copies_sent: Some(64_000.0),
            copies_dropped: Some(120.0),
            copies_lost: Some(640.0),
            batched: true,
        };
        let json = serde::json::to_string(&report).unwrap();
        let back: TrafficReport = serde::json::from_str(&json).unwrap();
        assert_eq!(report, back);
        // Untimed layers leave the clocked metrics null.
        let untimed = TrafficReport {
            messages_per_sec: None,
            ..report
        };
        let json = serde::json::to_string(&untimed).unwrap();
        assert!(json.contains("\"messages_per_sec\":null"), "{json}");
    }
}
