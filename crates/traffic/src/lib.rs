//! # gossip-traffic — sustained multi-message traffic for gossip multicast
//!
//! Every layer of the workspace disseminates a single message per
//! execution; the paper's reliability model, however, is meant to
//! predict *production* multicast, where a source streams k concurrent
//! rumors and every node juggles them under a per-link budget. This
//! crate describes that workload as data and evaluates it with a
//! round-synchronous stream engine:
//!
//! * [`TrafficSpec`] — serde-friendly description riding on the model
//!   layer's `Scenario`: k concurrent messages, a seed-deterministic
//!   injection plan ([`ArrivalSpec`]: all-at-once, fixed-interval, or
//!   Poisson arrivals), a per-node bandwidth cap of B frames per round,
//!   a bounded send queue with typed overflow accounting, and rumor
//!   batching ([`BatchingSpec`]: multiple message ids piggybacked per
//!   wire frame, amortizing fanout draws).
//! * [`injection_rounds`] — the arrival plan sampled into concrete
//!   per-message injection rounds, a pure function of the seed.
//! * [`run_stream`] — the engine: per-round event coalescing, one
//!   arena-reused receipt bitset per message, bounded FIFO send queues,
//!   per-frame loss draws, and exact copy conservation counters
//!   ([`StreamCounters`]). Fanout sampling is injected as a closure so
//!   this crate stays below the model layer in the dependency DAG.
//! * [`TrafficReport`] — what backends report back: per-message
//!   reliability min/mean, sustained messages/sec, and delivery-latency
//!   p50/p90/p99 in rounds ([`percentile`]).
//!
//! The default (`Scenario.traffic = None`) is a strict passthrough: no
//! code path in any backend changes, byte for byte.

pub mod engine;
pub mod plan;
pub mod report;
pub mod spec;

pub use engine::{run_stream, Frame, StreamCounters, StreamOutcome, StreamParams, StreamScratch};
pub use plan::{injection_rounds, TRAFFIC_PLAN_STREAM};
pub use report::{percentile, TrafficReport};
pub use spec::{ArrivalSpec, BatchingSpec, TrafficError, TrafficSpec, MAX_FRAME_IDS};
