//! Sampling an [`ArrivalSpec`] into concrete injection rounds.

use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};

use crate::spec::ArrivalSpec;

/// Seed-stream tag for injection plans, disjoint from every other
/// stream tag in the workspace so traffic arrivals never correlate
/// with crash draws or relay coins.
pub const TRAFFIC_PLAN_STREAM: u64 = 0x7AFF1C;

/// The round each of `messages` messages is injected at, nondecreasing,
/// a pure function of `(seed, arrival)`.
///
/// `AllAtOnce` puts every message at round 0; `FixedInterval` spaces
/// them `every_rounds` apart; `Poisson` draws exponential gaps with
/// mean `1 / rate_per_round` from the `(seed, TRAFFIC_PLAN_STREAM)`
/// stream and floors the cumulative arrival times to rounds.
pub fn injection_rounds(arrival: &ArrivalSpec, messages: usize, seed: u64) -> Vec<u64> {
    match *arrival {
        ArrivalSpec::AllAtOnce => vec![0; messages],
        ArrivalSpec::FixedInterval { every_rounds } => {
            (0..messages as u64).map(|m| m * every_rounds).collect()
        }
        ArrivalSpec::Poisson { rate_per_round } => {
            let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, TRAFFIC_PLAN_STREAM));
            let mut at = 0.0_f64;
            (0..messages)
                .map(|_| {
                    // Inverse-CDF exponential gap; 1 - u in (0, 1] keeps
                    // ln away from 0.
                    let u = rng.next_f64();
                    at += -(1.0 - u).ln() / rate_per_round;
                    // A degenerate (absurdly slow) plan still fits u64.
                    at.min(u64::MAX as f64 / 2.0) as u64
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_at_once_is_a_burst() {
        assert_eq!(injection_rounds(&ArrivalSpec::AllAtOnce, 4, 7), vec![0; 4]);
    }

    #[test]
    fn fixed_interval_spaces_evenly() {
        let plan = injection_rounds(&ArrivalSpec::FixedInterval { every_rounds: 3 }, 4, 7);
        assert_eq!(plan, vec![0, 3, 6, 9]);
    }

    #[test]
    fn poisson_is_deterministic_and_monotone() {
        let arrival = ArrivalSpec::Poisson {
            rate_per_round: 0.5,
        };
        let a = injection_rounds(&arrival, 64, 0x1CC_2008);
        let b = injection_rounds(&arrival, 64, 0x1CC_2008);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "{a:?}");
        let other = injection_rounds(&arrival, 64, 0x1CC_2009);
        assert_ne!(a, other, "distinct seeds should give distinct plans");
    }

    #[test]
    fn poisson_rate_sets_the_pace() {
        // Mean gap 1/rate: 256 messages at rate 0.25 span ~1024 rounds.
        let plan = injection_rounds(
            &ArrivalSpec::Poisson {
                rate_per_round: 0.25,
            },
            256,
            42,
        );
        let last = *plan.last().unwrap() as f64;
        assert!(
            (512.0..2048.0).contains(&last),
            "256 arrivals at 0.25/round ended at {last}"
        );
    }
}
