//! Property-based invariants of the traffic subsystem: injection plans
//! are seed-deterministic and monotone, and the stream engine conserves
//! every message copy — injected relays end up delivered, dropped,
//! lost, absorbed by a crashed member, or duplicate, with nothing in
//! flight at quiescence.

use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};
use gossip_traffic::{injection_rounds, run_stream, ArrivalSpec, StreamParams, StreamScratch};
use proptest::prelude::*;

fn arrivals() -> impl Strategy<Value = ArrivalSpec> {
    (0u8..3, 1u64..=16, 1u32..=40).prop_map(|(kind, every_rounds, rate)| match kind {
        0 => ArrivalSpec::AllAtOnce,
        1 => ArrivalSpec::FixedInterval { every_rounds },
        _ => ArrivalSpec::Poisson {
            rate_per_round: rate as f64 / 10.0,
        },
    })
}

proptest! {
    #[test]
    fn injection_plans_are_deterministic_and_monotone(
        arrival in arrivals(),
        messages in 1usize..128,
        seed in 0u64..1_000_000,
    ) {
        let a = injection_rounds(&arrival, messages, seed);
        let b = injection_rounds(&arrival, messages, seed);
        prop_assert_eq!(&a, &b, "same seed must give the same plan");
        prop_assert_eq!(a.len(), messages);
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "plan must be nondecreasing: {:?}", a);
    }

    #[test]
    fn stream_engine_conserves_copies(
        n in 8usize..200,
        messages in 1usize..24,
        bandwidth in (0usize..6).prop_map(|b| if b == 0 { None } else { Some(b) }),
        queue_capacity in 1usize..64,
        frame_limit in 1usize..=8,
        loss in 0u32..=40,
        fanout in 0usize..8,
        dead in 0u32..=50,
        seed in 0u64..1_000_000,
    ) {
        let loss = loss as f64 / 100.0;
        let injections = injection_rounds(&ArrivalSpec::FixedInterval { every_rounds: 2 }, messages, seed);
        // A deterministic crash pattern; the source stays alive.
        let mut crash_rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, 0xFA11));
        let alive: Vec<bool> = (0..n)
            .map(|v| v == 0 || !crash_rng.next_bool(dead as f64 / 100.0))
            .collect();
        let p = StreamParams {
            n,
            source: 0,
            injections: &injections,
            bandwidth,
            queue_capacity,
            frame_limit,
            loss,
            alive: &alive,
        };
        let mut scratch = StreamScratch::new();
        let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, 1));
        let mut hist = Vec::new();
        let out = run_stream(&p, &mut scratch, &mut rng, &mut |r| {
            // A noisy fanout in [0, fanout]: exercises zero draws too.
            r.next_below(fanout as u64 + 1) as usize
        }, &mut hist);
        let c = out.counters;
        // Conservation at quiescence: every created copy was sent or
        // dropped; every sent copy is classified exactly once.
        prop_assert_eq!(c.copies_created, c.copies_dropped + c.copies_sent);
        prop_assert_eq!(
            c.copies_sent,
            c.copies_lost + c.copies_to_crashed + c.copies_delivered + c.copies_duplicate
        );
        // Deliveries recorded in the latency histogram = wire deliveries
        // plus the k source receipts.
        let recorded: u64 = hist.iter().sum();
        prop_assert_eq!(recorded, c.copies_delivered + messages as u64);
        // Reached counts never exceed the alive population, and the sum
        // of first receipts matches the reached totals.
        let alive_count = alive.iter().filter(|&&a| a).count() as u32;
        prop_assert!(out.reached.iter().all(|&r| r >= 1 && r <= alive_count));
        let total_reached: u64 = out.reached.iter().map(|&r| r as u64).sum();
        prop_assert_eq!(total_reached, c.copies_delivered + messages as u64);
    }

    #[test]
    fn uncapped_lossless_stream_is_bandwidth_invariant(
        n in 16usize..120,
        messages in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        // With no contention (huge B, huge queue) the cap value cannot
        // change anything: B = n and B = unlimited must agree exactly.
        let injections = vec![0u64; messages];
        let alive = vec![true; n];
        let run = |bandwidth: Option<usize>| {
            let p = StreamParams {
                n,
                source: 0,
                injections: &injections,
                bandwidth,
                queue_capacity: 1 << 14,
                frame_limit: 1,
                loss: 0.0,
                alive: &alive,
            };
            let mut scratch = StreamScratch::new();
            let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, 2));
            let mut hist = Vec::new();
            let out = run_stream(&p, &mut scratch, &mut rng, &mut |r| {
                r.next_below(4) as usize
            }, &mut hist);
            (out.reached, out.counters)
        };
        let capped = run(Some(8 * n));
        let uncapped = run(None);
        prop_assert_eq!(capped.0, uncapped.0);
        prop_assert_eq!(capped.1, uncapped.1);
    }
}
