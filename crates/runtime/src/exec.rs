//! One live broadcast execution: spawn node actors on real threads,
//! inject the message at the source, run the paper's push algorithm
//! over a [`Transport`], and measure the outcome.
//!
//! ## Determinism
//!
//! Every random draw — crash pattern, fanout, targets, loss, latency —
//! comes from a per-node generator seeded by `(execution seed, node
//! id)`, and a node relays on *first* receipt no matter which copy wins
//! the race. The set of messages that ever exists is therefore a pure
//! function of the seed, independent of thread interleaving, and so is
//! everything the [`ExecOutcome`] reports: delivery metrics come from
//! the actors' own records, and dissemination depth is the BFS depth
//! over the recorded successful relays (the scheduling-independent
//! min-hop, not the racy first-arrival hop). The one exception is
//! anything gated on a message's *virtual arrival stamp* — scheduled
//! mid-run crashes, churn join gates, and the joined-member target
//! filter — where the stamp of the physically first copy decides;
//! documented as best-effort.
//!
//! ## Faults
//!
//! The [`gossip_faults::FaultSpec`] riding on the scenario injects into
//! the live run directly: churn adds dormant actors that ignore frames
//! stamped before their join time (and removes leavers via the crash
//! schedule), correlated zone failures become scheduled crashes of
//! whole zones, Gilbert-Elliott bursty loss replaces the i.i.d. loss
//! draw with a per-sender two-state chain, and an adversary's blocked
//! links drop matching frames at the sender before any loss draw.
//!
//! ## Quiescence
//!
//! The push protocol relays once per node, so a broadcast is over when
//! no message is in flight; the shared [`Fabric`] counter detects that
//! exactly (see its docs), and a deadline watchdog aborts a wedged run
//! rather than hanging the caller.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gossip_faults::{zone_members, BlockedLinks, ChurnPlan, FaultSpec, GeChain, GilbertElliott};
use gossip_model::distribution::FanoutDistribution;
use gossip_model::scenario::{FailureSpec, LatencySpec};
use gossip_model::ModelError;
use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};
use gossip_topology::{select_targets, OverlaySpec, PeerSelection, Topology, TopologySpec};

use crate::transport::{Endpoint, Fabric, Transport};
use crate::wire::WireMessage;

/// Seed-stream tags (mixed into `SplitMix64::derive`) so the failure
/// pattern, the overlay wiring, and per-node draws are decorrelated.
const FAILURE_STREAM: u64 = 0xFA11;
const NODE_STREAM: u64 = 0x0A_C708; // "ACTOR"
const TOPOLOGY_STREAM: u64 = 0x7090; // "TOPO"
/// Same tags the protocol engine uses for its churn plan and blocked
/// links, so fault draws are comparable across the two layers.
const CHURN_STREAM: u64 = 0xC4A2;
const ADVERSARY_STREAM: u64 = 0xAD7E;

/// A structured overlay instantiated for one execution: actors gossip
/// only along its edges, targets picked by the configured policy.
struct Overlay {
    topology: Topology,
    selection: PeerSelection,
}

/// Read-only per-execution context shared by every shard thread: the
/// overlay (if structured), the adversary's blocked links, the
/// Gilbert-Elliott channel parameters, and the join schedule indexed by
/// member id (`None` = no churn, so the hot path pays nothing).
struct ExecCtx {
    overlay: Option<Overlay>,
    blocked: Option<BlockedLinks>,
    ge: Option<GilbertElliott>,
    join_at: Option<Vec<Option<u64>>>,
}

/// Everything one execution needs, borrowed from the backend.
pub(crate) struct ExecParams<'a> {
    /// Group size.
    pub n: usize,
    /// Source member (immortal under the paper's failure model).
    pub source: u32,
    /// Fanout distribution `P`.
    pub dist: &'a dyn FanoutDistribution,
    /// Independent per-message loss probability.
    pub loss: f64,
    /// Latency model feeding the virtual clock (and real pacing).
    pub latency: LatencySpec,
    /// Failure model.
    pub failure: &'a FailureSpec,
    /// Fault families injected on top of the failure model.
    pub faults: &'a FaultSpec,
    /// Structured overlay to gossip over (`None` = complete graph with
    /// uniform selection, the paper's baseline). Rebuilt per execution
    /// from the execution seed so overlays resample across replications.
    pub topology: Option<&'a TopologySpec>,
    /// Flood instead of push: relay to every other member (on an
    /// overlay: to the whole neighbour list).
    pub flood: bool,
    /// Shard threads to multiplex node actors over.
    pub shards: usize,
    /// Real-time pacing (µs of wall-clock per ms of virtual latency).
    pub pacing_micros_per_milli: u64,
    /// Watchdog deadline for one execution.
    pub deadline: Duration,
}

/// Measured results of one live execution.
pub(crate) struct ExecOutcome {
    /// Members in the reliability denominator (alive, never scheduled
    /// to crash).
    pub nonfailed: usize,
    /// Denominator members that received the message.
    pub nonfailed_reached: usize,
    /// Messages handed to the transport, injection included.
    pub messages_sent: u64,
    /// Messages that died in transit (injected loss + dead peers).
    pub messages_lost: u64,
    /// BFS relay depth of the delivered set (the paper's "rounds").
    pub depth: u32,
    /// True when the watchdog aborted the run instead of quiescence.
    pub timed_out: bool,
}

impl ExecOutcome {
    /// Reliability `n_rece / n_nonfailed` (paper §4.2).
    pub fn reliability(&self) -> f64 {
        if self.nonfailed == 0 {
            0.0
        } else {
            self.nonfailed_reached as f64 / self.nonfailed as f64
        }
    }

    /// Messages per nonfailed member — the protocol's unit cost.
    pub fn messages_per_member(&self) -> f64 {
        if self.nonfailed == 0 {
            0.0
        } else {
            self.messages_sent as f64 / self.nonfailed as f64
        }
    }
}

/// One recorded relay attempt.
struct Edge {
    to: u32,
    lost: bool,
}

/// A planned relay: the edge it records plus the frame to put on the
/// wire (absent when sender-side loss already killed it).
struct Relay {
    edge_idx: usize,
    to: u32,
    msg: WireMessage,
}

/// Per-node protocol state — the actor.
struct Actor {
    id: u32,
    n: u32,
    rng: Xoshiro256StarStar,
    /// Virtual time this node crashes at (`None` = stays up).
    crash_at_ns: Option<u64>,
    /// Virtual time this node joins at (`None` = initial member).
    join_at_ns: Option<u64>,
    /// This node's uplink state of the Gilbert-Elliott channel (`None`
    /// = i.i.d. loss). One chain per sender: consecutive transmissions
    /// share the burst, which is the whole point of the model.
    chain: Option<GeChain>,
    delivered: bool,
    edges: Vec<Edge>,
}

impl Actor {
    fn new(
        id: u32,
        total: usize,
        exec_seed: u64,
        crash_at_ns: Option<u64>,
        join_at_ns: Option<u64>,
        ge: Option<&GilbertElliott>,
    ) -> Self {
        let node_seed = SplitMix64::derive(SplitMix64::derive(exec_seed, NODE_STREAM), id as u64);
        let mut rng = Xoshiro256StarStar::new(node_seed);
        // The chain starts from a stationary draw so short executions
        // see the long-run loss mix (drawn only when bursty loss is on,
        // keeping the fault-free rng stream untouched).
        let chain = ge.map(|ge| GeChain::start(ge, &mut rng));
        Actor {
            id,
            n: total as u32,
            rng,
            crash_at_ns,
            join_at_ns,
            chain,
            delivered: false,
            edges: Vec::new(),
        }
    }

    /// Fig. 1, live: on first receipt draw `f ~ P`, pick `f` distinct
    /// targets — uniform over the group on the complete graph, by the
    /// peer-selection policy over the neighbour list on an overlay —
    /// and relay; duplicates are discarded. Returns the relays that
    /// survived sender-side loss injection.
    fn handle(&mut self, msg: &WireMessage, p: &ExecParams<'_>, ctx: &ExecCtx) -> Vec<Relay> {
        if let Some(join_at) = self.join_at_ns {
            if msg.arrival_virtual_ns < join_at {
                return Vec::new(); // arrived before this process joined
            }
        }
        if let Some(crash_at) = self.crash_at_ns {
            if msg.arrival_virtual_ns >= crash_at {
                return Vec::new(); // arrived at a crashed process
            }
        }
        if self.delivered {
            return Vec::new(); // duplicate receipt: discard (Fig. 1)
        }
        self.delivered = true;
        let targets = match &ctx.overlay {
            Some(ov) if p.flood => ov.topology.neighbors(self.id).to_vec(),
            Some(ov) => {
                let fanout = p.dist.sample(&mut self.rng);
                let mut picks = Vec::new();
                select_targets(
                    &ov.topology,
                    ov.selection,
                    self.id,
                    fanout,
                    &mut self.rng,
                    &mut picks,
                );
                picks
            }
            None => {
                let fanout = if p.flood {
                    self.n as usize - 1
                } else {
                    p.dist.sample(&mut self.rng)
                };
                match &ctx.join_at {
                    Some(join_at) => {
                        self.pick_joined_targets(fanout, join_at, msg.arrival_virtual_ns)
                    }
                    None => self.pick_targets(fanout),
                }
            }
        };
        let mut relays = Vec::with_capacity(targets.len());
        for to in targets {
            // The adversary's verdict comes first and skips the loss
            // draw entirely, so blocking links never perturbs the
            // chain/rng stream of the surviving ones.
            let lost = if ctx.blocked.as_ref().is_some_and(|b| b.blocks(self.id, to)) {
                true
            } else if let (Some(ge), Some(chain)) = (&ctx.ge, &mut self.chain) {
                chain.transmit(ge, &mut self.rng)
            } else {
                self.rng.next_f64() < p.loss
            };
            let latency_ns = draw_latency_ns(&mut self.rng, p.latency);
            let edge_idx = self.edges.len();
            self.edges.push(Edge { to, lost });
            if !lost {
                relays.push(Relay {
                    edge_idx,
                    to,
                    msg: WireMessage {
                        id: msg.id,
                        from: self.id,
                        hop: msg.hop + 1,
                        arrival_virtual_ns: msg.arrival_virtual_ns.saturating_add(latency_ns),
                        ids: Vec::new(),
                    },
                });
            }
        }
        relays
    }

    /// `f` distinct uniform members other than self (all of them when
    /// `f` exceeds the view).
    fn pick_targets(&mut self, f: usize) -> Vec<u32> {
        let others = (self.n - 1) as usize;
        if f >= others {
            return (0..self.n).filter(|&v| v != self.id).collect();
        }
        let mut chosen: Vec<u32> = Vec::with_capacity(f);
        while chosen.len() < f {
            let mut v = self.rng.next_below(self.n as u64 - 1) as u32;
            if v >= self.id {
                v += 1;
            }
            if !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        chosen
    }

    /// The churn-aware analogue of [`Actor::pick_targets`]: `f`
    /// distinct uniform members among those already joined at the
    /// sender's virtual time `now_ns` (everyone eligible when `f`
    /// exceeds that view). Mirrors the netsim `DynamicView`: gossip
    /// never targets a member that has not joined yet.
    fn pick_joined_targets(&mut self, f: usize, join_at: &[Option<u64>], now_ns: u64) -> Vec<u32> {
        let joined: Vec<u32> = (0..self.n)
            .filter(|&v| v != self.id && join_at[v as usize].is_none_or(|t| t <= now_ns))
            .collect();
        if f >= joined.len() {
            return joined;
        }
        let mut chosen: Vec<u32> = Vec::with_capacity(f);
        while chosen.len() < f {
            let v = joined[self.rng.next_below(joined.len() as u64) as usize];
            if !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        chosen
    }
}

/// Draws one edge latency in virtual nanoseconds.
fn draw_latency_ns(rng: &mut Xoshiro256StarStar, spec: LatencySpec) -> u64 {
    const NS_PER_MS: u64 = 1_000_000;
    match spec {
        LatencySpec::ConstantMillis { ms } => ms * NS_PER_MS,
        LatencySpec::UniformMillis { lo_ms, hi_ms } => {
            let span = (hi_ms - lo_ms) * NS_PER_MS;
            lo_ms * NS_PER_MS + rng.next_below(span + 1)
        }
        LatencySpec::ExponentialMillis { mean_ms } => {
            let u = rng.next_f64();
            (-(mean_ms as f64) * (1.0 - u).max(f64::MIN_POSITIVE).ln() * NS_PER_MS as f64) as u64
        }
    }
}

/// The group's failure layout for one execution: who starts alive, who
/// crashes when, who joins when, and who counts in the reliability
/// denominator. Vectors are sized `n` plus this execution's churn
/// joiners (ids `n..`).
struct FailureLayout {
    alive: Vec<bool>,
    crash_at_ns: Vec<Option<u64>>,
    join_at_ns: Vec<Option<u64>>,
    counted: Vec<bool>,
}

fn failure_layout(
    n: usize,
    source: u32,
    failure: &FailureSpec,
    faults: &FaultSpec,
    topology: Option<&TopologySpec>,
    exec_seed: u64,
) -> FailureLayout {
    let mut alive = vec![true; n];
    let mut crash_at_ns: Vec<Option<u64>> = vec![None; n];
    let mut counted = vec![true; n];
    match failure {
        FailureSpec::None => {}
        FailureSpec::Random { q } => {
            // The paper's model: each non-source member is up with
            // probability q, independently; the source is immortal.
            let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(exec_seed, FAILURE_STREAM));
            for i in 0..n {
                if i as u32 != source && rng.next_f64() >= *q {
                    alive[i] = false;
                    counted[i] = false;
                }
            }
        }
        FailureSpec::Schedule { crashes } => {
            // A scheduled member is crashed by the end of the run, so it
            // leaves the denominator (matching the netsim convention);
            // time 0 means it never participates at all.
            for &(t_ns, member) in crashes {
                let i = member as usize;
                counted[i] = false;
                if t_ns == 0 {
                    alive[i] = false;
                } else {
                    crash_at_ns[i] =
                        Some(crash_at_ns[i].map_or(t_ns, |existing| existing.min(t_ns)));
                }
            }
        }
    }
    // A correlated zone failure is a scheduled crash of every member of
    // the killed zones (source immune), resolved against the Clustered
    // overlay's zone count. Applied before churn so zones index the
    // initial membership only.
    if let Some(zf) = &faults.zone_failure {
        let zone_count = match topology.map(|spec| spec.overlay) {
            Some(OverlaySpec::Clustered { zones, .. }) => zones,
            _ => unreachable!("validate() requires a Clustered overlay for zone failures"),
        };
        const NS_PER_MS: u64 = 1_000_000;
        for &zone in &zf.zones {
            for member in zone_members(n, zone_count, zone) {
                if member as u32 == source {
                    continue;
                }
                counted[member] = false;
                if zf.at_ms == 0 {
                    alive[member] = false;
                } else {
                    let t_ns = zf.at_ms * NS_PER_MS;
                    crash_at_ns[member] =
                        Some(crash_at_ns[member].map_or(t_ns, |existing| existing.min(t_ns)));
                }
            }
        }
    }
    // Churn: joiners extend the group (alive from the start so they
    // hold an endpoint, gated on their join stamp by the actor; they
    // count in the denominator — alive at end); leavers become
    // scheduled crashes and leave the denominator.
    let mut join_at_ns: Vec<Option<u64>> = vec![None; n];
    if let Some(churn) = &faults.churn {
        let plan = ChurnPlan::sample(
            churn,
            n,
            source,
            SplitMix64::derive(exec_seed, CHURN_STREAM),
        );
        for &(at_ns, id) in &plan.joins {
            debug_assert_eq!(id as usize, alive.len(), "joiner ids are dense above n");
            alive.push(true);
            crash_at_ns.push(None);
            counted.push(true);
            join_at_ns.push(Some(at_ns));
        }
        for &(at_ns, member) in &plan.leaves {
            let i = member as usize;
            counted[i] = false;
            crash_at_ns[i] = Some(crash_at_ns[i].map_or(at_ns, |existing| existing.min(at_ns)));
        }
    }
    FailureLayout {
        alive,
        crash_at_ns,
        join_at_ns,
        counted,
    }
}

/// Processes one frame on an actor: run the protocol, put surviving
/// relays on the wire, settle the frame.
fn process<E: Endpoint>(
    actor: &mut Actor,
    ep: &mut E,
    msg: &WireMessage,
    p: &ExecParams<'_>,
    ctx: &ExecCtx,
    fabric: &Fabric,
) {
    let relays = actor.handle(msg, p, ctx);
    for relay in relays {
        if !ep.send(relay.to, &relay.msg) {
            // Peer unreachable: the relay died in transit.
            actor.edges[relay.edge_idx].lost = true;
        }
    }
    fabric.message_settled();
}

/// The loop a shard thread runs: round-robin over its actors' inboxes
/// until the fabric reports quiescence (or the deadline trips).
fn shard_loop<E: Endpoint>(
    mut group: Vec<(Actor, E)>,
    p: &ExecParams<'_>,
    ctx: &ExecCtx,
    fabric: &Fabric,
    epoch: Instant,
) -> Vec<Actor> {
    // Frames held back by real-time pacing until their scaled virtual
    // arrival time: (actor index, due, frame).
    let mut held: Vec<(usize, Instant, WireMessage)> = Vec::new();
    loop {
        let mut progressed = false;
        for (idx, (actor, ep)) in group.iter_mut().enumerate() {
            while let Some(msg) = ep.poll() {
                if p.pacing_micros_per_milli > 0 {
                    let wall_us = msg.arrival_virtual_ns / 1_000_000 * p.pacing_micros_per_milli;
                    let due = epoch + Duration::from_micros(wall_us);
                    if Instant::now() < due {
                        held.push((idx, due, msg));
                        continue;
                    }
                }
                process(actor, ep, &msg, p, ctx, fabric);
                progressed = true;
            }
        }
        let now = Instant::now();
        let mut i = 0;
        while i < held.len() {
            if held[i].1 <= now {
                let (idx, _, msg) = held.swap_remove(i);
                let (actor, ep) = &mut group[idx];
                process(actor, ep, &msg, p, ctx, fabric);
                progressed = true;
            } else {
                i += 1;
            }
        }
        if fabric.is_done() {
            break;
        }
        if !progressed {
            if epoch.elapsed() > p.deadline {
                fabric.abort();
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    group.into_iter().map(|(actor, _)| actor).collect()
}

/// BFS depth of the delivered set over the recorded successful relays —
/// the scheduling-independent dissemination depth.
fn bfs_depth(n: usize, source: u32, delivered: &[bool], adjacency: &[Vec<u32>]) -> u32 {
    let mut depth: Vec<Option<u32>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    let mut max_depth = 0;
    if delivered[source as usize] {
        depth[source as usize] = Some(0);
        queue.push_back(source);
    }
    while let Some(u) = queue.pop_front() {
        let d = depth[u as usize].expect("queued nodes have depth");
        for &v in &adjacency[u as usize] {
            if delivered[v as usize] && depth[v as usize].is_none() {
                depth[v as usize] = Some(d + 1);
                max_depth = max_depth.max(d + 1);
                queue.push_back(v);
            }
        }
    }
    max_depth
}

/// Runs one live broadcast over `transport`.
pub(crate) fn run_execution<T: Transport>(
    transport: &T,
    p: &ExecParams<'_>,
    exec_seed: u64,
) -> Result<ExecOutcome, ModelError>
where
    T::Endpoint: 'static,
{
    let overlay = p.topology.map(|spec| Overlay {
        topology: spec.build(p.n, SplitMix64::derive(exec_seed, TOPOLOGY_STREAM)),
        selection: spec.selection,
    });
    let layout = failure_layout(p.n, p.source, p.failure, p.faults, p.topology, exec_seed);
    // Churn joiners extend the group beyond `p.n` for this execution.
    let total = layout.alive.len();
    let nonfailed = layout.counted.iter().filter(|&&c| c).count();
    if !layout.alive[p.source as usize] {
        // The source itself is scheduled dead at start: nothing spreads.
        return Ok(ExecOutcome {
            nonfailed,
            nonfailed_reached: 0,
            messages_sent: 0,
            messages_lost: 0,
            depth: 0,
            timed_out: false,
        });
    }
    let ctx = ExecCtx {
        overlay,
        blocked: p.faults.adversary.as_ref().map(|adv| {
            BlockedLinks::build(
                total,
                p.source,
                adv,
                SplitMix64::derive(exec_seed, ADVERSARY_STREAM),
            )
        }),
        ge: p.faults.bursty_loss.as_ref().map(GilbertElliott::new),
        join_at: p.faults.churn.is_some().then(|| layout.join_at_ns.clone()),
    };

    let fabric = Fabric::new();
    let mut endpoints = transport.open(total, &layout.alive, &fabric)?;

    // Pair every alive member with its actor and inject at the source.
    let mut pairs: Vec<(Actor, T::Endpoint)> = Vec::with_capacity(total);
    for (id, slot) in endpoints.iter_mut().enumerate() {
        if let Some(ep) = slot.take() {
            pairs.push((
                Actor::new(
                    id as u32,
                    total,
                    exec_seed,
                    layout.crash_at_ns[id],
                    layout.join_at_ns[id],
                    ctx.ge.as_ref(),
                ),
                ep,
            ));
        }
    }
    {
        let source_pair = pairs
            .iter_mut()
            .find(|(actor, _)| actor.id == p.source)
            .expect("alive source has an endpoint");
        let injected = source_pair
            .1
            .send(p.source, &WireMessage::injection(exec_seed, p.source));
        debug_assert!(injected, "sending to the alive source cannot fail");
    }

    // Multiplex actors over the shard threads, round-robin so node ids
    // spread evenly, and run to quiescence.
    let shards = p.shards.clamp(1, pairs.len().max(1));
    let mut groups: Vec<Vec<(Actor, T::Endpoint)>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, pair) in pairs.into_iter().enumerate() {
        groups[i % shards].push(pair);
    }
    let epoch = Instant::now();
    let fabric_ref: &Arc<Fabric> = &fabric;
    let ctx_ref = &ctx;
    let actors: Vec<Actor> = crossbeam::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| scope.spawn(move |_| shard_loop(group, p, ctx_ref, fabric_ref, epoch)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard thread panicked"))
            .collect()
    })
    .expect("runtime scope");

    // Assemble the outcome from the actors' own records.
    let mut delivered = vec![false; total];
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); total];
    let mut messages_sent = 1u64; // the injection
    let mut messages_lost = 0u64;
    for actor in &actors {
        delivered[actor.id as usize] = actor.delivered;
        for edge in &actor.edges {
            messages_sent += 1;
            if edge.lost {
                messages_lost += 1;
            } else {
                adjacency[actor.id as usize].push(edge.to);
            }
        }
    }
    let nonfailed_reached = (0..total)
        .filter(|&i| layout.counted[i] && delivered[i])
        .count();
    Ok(ExecOutcome {
        nonfailed,
        nonfailed_reached,
        messages_sent,
        messages_lost,
        depth: bfs_depth(total, p.source, &delivered, &adjacency),
        timed_out: fabric.timed_out(),
    })
}
