//! A concurrent actor-per-node gossip **runtime**: the paper's push
//! protocol (Fan, Cao, Wu, Raynal — ICPP 2008, Fig. 1) running live on
//! real OS threads, exchanging typed messages over a pluggable
//! [`Transport`].
//!
//! The other four backends *model* the protocol — generating functions,
//! percolation, a Monte-Carlo engine, a discrete-event simulator. This
//! crate *executes* it: every member is an actor with its own RNG and
//! inbox, relays race each other through a real wire (in-process
//! mailboxes or loopback TCP sockets), and reliability is measured from
//! what actually arrived. Agreement between this layer and the models
//! is the repo's end-to-end fidelity check.
//!
//! ## Layout
//!
//! * [`wire`] — the typed [`WireMessage`] frame (serde, one JSON line
//!   over TCP) carrying the virtual-clock arrival stamp.
//! * [`transport`] — the [`Transport`]/[`Endpoint`] traits and the
//!   [`Fabric`] in-flight counter that detects quiescence.
//! * [`channel`] — [`ChannelTransport`]: mutex-guarded in-process
//!   mailboxes; deterministic replay (byte-identical reports per seed).
//! * [`tcp`] — [`TcpTransport`]: real `std::net` loopback sockets with
//!   maelstrom-style line-delimited JSON framing; connection refusal to
//!   crashed members doubles as fault injection.
//! * [`backend`] — [`RuntimeBackend`], the [`Backend`] impl that runs
//!   seed-derived replications and reduces them with the same take-off
//!   conditioning as the protocol backend.
//!
//! Faults come from the scenario, not from chance: per-message loss
//! (`Scenario::loss`) and latency draws are injected sender-side from
//! seed-derived RNG streams; crash-at-start and crash-schedule faults
//! (`FailureSpec`) decide who binds an endpoint and who dies at which
//! virtual time.
//!
//! ```
//! use gossip_model::scenario::{Backend, FanoutSpec, Scenario};
//! use gossip_runtime::RuntimeBackend;
//!
//! let scenario = Scenario::new(128, FanoutSpec::poisson(6.0))
//!     .with_failure_ratio(0.9)
//!     .with_replications(5);
//! let report = RuntimeBackend::channel().evaluate(&scenario).unwrap();
//! assert!(report.reliability > 0.8);
//! assert_eq!(report.transport.as_deref(), Some("channel"));
//! ```

#![deny(missing_docs)]

pub mod backend;
pub mod channel;
mod exec;
mod stream;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use backend::{shard_count, RuntimeBackend, TransportKind};
pub use channel::ChannelTransport;
pub use tcp::TcpTransport;
pub use transport::{Endpoint, Fabric, Transport};
pub use wire::WireMessage;

#[cfg(doc)]
use gossip_model::scenario::Backend;

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::scenario::{Backend, FailureSpec, FanoutSpec, Scenario};

    /// The crash-schedule convention matches netsim: members crashed
    /// after dissemination finished leave the denominator, so survivor
    /// reliability stays high.
    #[test]
    fn runtime_runs_crash_schedules() {
        let crashes: Vec<(u64, u32)> = (0..100).map(|v| (1_000_000_000, v + 1)).collect();
        let scenario = Scenario::new(200, FanoutSpec::poisson(6.0))
            .with_failure(FailureSpec::Schedule { crashes })
            .with_replications(3);
        let report = RuntimeBackend::channel().evaluate(&scenario).unwrap();
        assert!(report.reliability > 0.9, "r = {}", report.reliability);
    }

    /// Crash at virtual time 0 = never participates: the member is
    /// unreachable from the start and out of the denominator.
    #[test]
    fn crash_at_zero_is_dead_at_start() {
        let crashes: Vec<(u64, u32)> = (0..50).map(|v| (0, v + 1)).collect();
        let scenario = Scenario::new(100, FanoutSpec::poisson(6.0))
            .with_failure(FailureSpec::Schedule { crashes })
            .with_replications(3);
        let report = RuntimeBackend::channel().evaluate(&scenario).unwrap();
        assert!(report.reliability > 0.8, "r = {}", report.reliability);
        assert!(report.messages_lost.unwrap() > 0.0, "sends to the dead");
    }
}
