//! Live multi-message streams: the [`TrafficSpec`] workload executed by
//! real node actors over a real [`Transport`].
//!
//! Where `gossip-traffic`'s round engine *simulates* the stream in one
//! loop, this module runs it: the source injects k rumors per its
//! injection plan, every actor relays first receipts per message, and
//! two traffic mechanisms ride on the virtual clock:
//!
//! * **Piggybacking** — an arrival group of new message indices travels
//!   as one [`WireMessage`] with up to `frame_limit` ids in its `ids`
//!   field: one fanout draw and one frame-budget slot amortized over
//!   the whole group (a dropped or lost frame loses all of them —
//!   shared fate, exactly like the round engine).
//! * **Token-bucket pacing** — each node may put at most B frames on
//!   the wire per virtual round (one round = the constant hop latency).
//!   The bucket is arithmetic on the virtual clock: a frame scheduled
//!   past the budget is deferred whole rounds (queueing delay that
//!   compounds downstream), and a backlog deeper than `queue_capacity`
//!   frames tail-drops, counted per id.
//!
//! ## Determinism, scoped honestly
//!
//! With batching off, every relay decision for message m at node v is
//! drawn from an RNG derived from `(execution seed, v, m)` — the
//! delivered set per message is a pure function of the seed, exactly
//! like the single-message execution. With piggybacking on, the *group*
//! a node relays depends on which frame physically arrived first, so
//! batched live streams are best-effort deterministic: aggregates are
//! stable, byte-identity is not promised (the round engine is the
//! deterministic reference for batched streams). Token-bucket state is
//! shared across messages and therefore also order-dependent; its
//! effects are likewise aggregate-level.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gossip_model::distribution::FanoutDistribution;
use gossip_model::loss::LossyGossip;
use gossip_model::percolation::SitePercolation;
use gossip_model::scenario::{FailureSpec, LatencySpec, ProtocolSpec, Report, Scenario};
use gossip_model::{success, ModelError};
use gossip_stats::descriptive::OnlineStats;
use gossip_stats::parallel::in_parallel_worker;
use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};
use gossip_traffic::{
    injection_rounds, percentile, TrafficReport, TrafficSpec, TRAFFIC_PLAN_STREAM,
};

use crate::backend::{shard_count, SOURCE};
use crate::transport::{Endpoint, Fabric, Transport};
use crate::wire::WireMessage;

const NS_PER_MS: u64 = 1_000_000;
/// Seed-stream tags: the failure draw matches the single-message
/// execution (`0xFA11`); relay draws get a stream-specific tag mixed
/// with `(node, message)` so unbatched relays are order-independent.
const FAILURE_STREAM: u64 = 0xFA11;
const STREAM_NODE: u64 = 0x7AFF3C;

/// The virtual-clock token bucket: B frame slots per round of
/// `round_ns`, deferral in whole rounds, tail-drop past `capacity`
/// queued frames. Uncapped buckets send at the ready time unchanged.
struct Bucket {
    round_ns: u64,
    bandwidth: u64,
    capacity: u64,
    /// Next window with free slots, and slots used in it.
    window: u64,
    used: u64,
}

impl Bucket {
    fn new(round_ns: u64, bandwidth: Option<usize>, capacity: usize) -> Self {
        Bucket {
            round_ns: round_ns.max(1),
            bandwidth: bandwidth.map_or(u64::MAX, |b| b as u64),
            capacity: capacity as u64,
            window: 0,
            used: 0,
        }
    }

    /// Schedules a frame that becomes ready at `ready_ns`: the virtual
    /// send time (≥ ready), or `None` when the backlog would exceed the
    /// queue capacity.
    fn schedule(&mut self, ready_ns: u64) -> Option<u64> {
        if self.bandwidth == u64::MAX {
            return Some(ready_ns);
        }
        let w = ready_ns / self.round_ns;
        if w > self.window {
            self.window = w;
            self.used = 0;
        }
        let backlog = (self.window - w).saturating_mul(self.bandwidth) + self.used;
        if backlog >= self.capacity {
            return None;
        }
        let send_ns = ready_ns.max(self.window * self.round_ns);
        self.used += 1;
        if self.used >= self.bandwidth {
            self.window += 1;
            self.used = 0;
        }
        Some(send_ns)
    }
}

/// Per-node stream state: one receipt flag per message, the shared
/// token bucket, and locally accumulated metrics merged after join.
struct StreamActor {
    id: u32,
    n: u32,
    exec_seed: u64,
    seen: Vec<bool>,
    bucket: Bucket,
    /// Delivery-delay histogram in rounds since each message's
    /// injection (source receipts land in bin 0).
    hist: Vec<u64>,
    max_round: u64,
    copies_created: u64,
    copies_dropped: u64,
    copies_sent: u64,
    frames_sent: u64,
    copies_lost: u64,
}

/// Everything one live stream execution needs.
pub(crate) struct StreamExecParams<'a> {
    pub n: usize,
    pub dist: &'a dyn FanoutDistribution,
    pub loss: f64,
    pub hop_ms: u64,
    pub spec: &'a TrafficSpec,
    pub injections: &'a [u64],
    pub q: f64,
    pub shards: usize,
    pub pacing_micros_per_milli: u64,
    pub deadline: Duration,
}

/// Measured results of one live stream execution.
struct StreamExecOutcome {
    nonfailed: usize,
    /// Per message: counted members holding it at quiescence.
    reached: Vec<u32>,
    hist: Vec<u64>,
    max_round: u64,
    copies_dropped: u64,
    copies_sent: u64,
    copies_lost: u64,
    timed_out: bool,
}

impl StreamActor {
    fn new(id: u32, total: usize, exec_seed: u64, p: &StreamExecParams<'_>) -> Self {
        StreamActor {
            id,
            n: total as u32,
            exec_seed,
            seen: vec![false; p.injections.len()],
            bucket: Bucket::new(
                p.hop_ms * NS_PER_MS,
                p.spec.bandwidth,
                p.spec.queue_capacity,
            ),
            hist: Vec::new(),
            max_round: 0,
            copies_created: 0,
            copies_dropped: 0,
            copies_sent: 0,
            frames_sent: 0,
            copies_lost: 0,
        }
    }

    fn record_delivery(&mut self, msg: u32, arrival_ns: u64, p: &StreamExecParams<'_>) {
        let inject_round = p.injections[msg as usize];
        let inject_ns = inject_round * p.hop_ms * NS_PER_MS;
        let delta_rounds = arrival_ns.saturating_sub(inject_ns) / (p.hop_ms * NS_PER_MS).max(1);
        let idx = delta_rounds as usize;
        if self.hist.len() <= idx {
            self.hist.resize(idx + 1, 0);
        }
        self.hist[idx] += 1;
        self.max_round = self.max_round.max(inject_round + delta_rounds);
    }

    /// Relays one arrival group of new message indices: one fanout draw
    /// for the whole group, frames chunked to the frame limit, each
    /// scheduled through the token bucket and loss-drawn. The RNG is
    /// derived from `(seed, node, first id of the group)`, which makes
    /// unbatched relays (groups of one) order-independent.
    fn relay_group<E: Endpoint>(
        &mut self,
        ep: &mut E,
        group: &[u32],
        ready_ns: u64,
        p: &StreamExecParams<'_>,
    ) {
        let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(
            SplitMix64::derive(
                SplitMix64::derive(self.exec_seed, STREAM_NODE),
                self.id as u64,
            ),
            group[0] as u64,
        ));
        let others = (self.n - 1) as usize;
        let fanout = p.dist.sample(&mut rng).min(others);
        let mut targets: Vec<u32> = Vec::with_capacity(fanout);
        while targets.len() < fanout {
            let mut v = rng.next_below(self.n as u64 - 1) as u32;
            if v >= self.id {
                v += 1;
            }
            if !targets.contains(&v) {
                targets.push(v);
            }
        }
        let frame_limit = p.spec.frame_limit();
        for &to in &targets {
            for chunk in group.chunks(frame_limit) {
                self.copies_created += chunk.len() as u64;
                let Some(send_ns) = self.bucket.schedule(ready_ns) else {
                    self.copies_dropped += chunk.len() as u64;
                    continue;
                };
                self.frames_sent += 1;
                self.copies_sent += chunk.len() as u64;
                let lost = p.loss > 0.0 && rng.next_f64() < p.loss;
                if lost {
                    self.copies_lost += chunk.len() as u64;
                    continue;
                }
                let msg = WireMessage {
                    id: self.exec_seed,
                    from: self.id,
                    hop: 1,
                    arrival_virtual_ns: send_ns + p.hop_ms * NS_PER_MS,
                    ids: chunk.to_vec(),
                };
                if !ep.send(to, &msg) {
                    // Crashed peer: absorbed in transit, same ledger
                    // line as channel loss.
                    self.copies_lost += chunk.len() as u64;
                }
            }
        }
    }

    /// Processes one frame: mark unseen ids delivered, then relay them —
    /// as one piggybacked group when batching is on, id by id when off.
    fn handle<E: Endpoint>(&mut self, msg: &WireMessage, ep: &mut E, p: &StreamExecParams<'_>) {
        let mut new_ids: Vec<u32> = Vec::with_capacity(msg.ids.len());
        for &m in &msg.ids {
            if !self.seen[m as usize] {
                self.seen[m as usize] = true;
                self.record_delivery(m, msg.arrival_virtual_ns, p);
                new_ids.push(m);
            }
        }
        if new_ids.is_empty() {
            return;
        }
        if p.spec.batched() {
            self.relay_group(ep, &new_ids, msg.arrival_virtual_ns, p);
        } else {
            for m in new_ids {
                self.relay_group(ep, std::slice::from_ref(&m), msg.arrival_virtual_ns, p);
            }
        }
    }
}

/// The shard loop for streams: round-robin over the shard's actors
/// until the fabric quiesces, with the same real-time pacing hold-back
/// as the single-message loop.
fn shard_loop<E: Endpoint>(
    mut group: Vec<(StreamActor, E)>,
    p: &StreamExecParams<'_>,
    fabric: &Fabric,
    epoch: Instant,
) -> Vec<StreamActor> {
    let mut held: Vec<(usize, Instant, WireMessage)> = Vec::new();
    loop {
        let mut progressed = false;
        for (idx, (actor, ep)) in group.iter_mut().enumerate() {
            while let Some(msg) = ep.poll() {
                if p.pacing_micros_per_milli > 0 {
                    let wall_us = msg.arrival_virtual_ns / 1_000_000 * p.pacing_micros_per_milli;
                    let due = epoch + Duration::from_micros(wall_us);
                    if Instant::now() < due {
                        held.push((idx, due, msg));
                        continue;
                    }
                }
                actor.handle(&msg, ep, p);
                fabric.message_settled();
                progressed = true;
            }
        }
        let now = Instant::now();
        let mut i = 0;
        while i < held.len() {
            if held[i].1 <= now {
                let (idx, _, msg) = held.swap_remove(i);
                let (actor, ep) = &mut group[idx];
                actor.handle(&msg, ep, p);
                fabric.message_settled();
                progressed = true;
            } else {
                i += 1;
            }
        }
        if fabric.is_done() {
            break;
        }
        if !progressed {
            if epoch.elapsed() > p.deadline {
                fabric.abort();
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    group.into_iter().map(|(actor, _)| actor).collect()
}

/// Runs one live stream execution over `transport`.
fn run_stream_execution<T: Transport>(
    transport: &T,
    p: &StreamExecParams<'_>,
    exec_seed: u64,
) -> Result<StreamExecOutcome, ModelError>
where
    T::Endpoint: 'static,
{
    let n = p.n;
    let k = p.injections.len();
    // The paper's failure model, same stream tag as the single-message
    // execution: each non-source member up with probability q.
    let mut alive = vec![true; n];
    if p.q < 1.0 {
        let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(exec_seed, FAILURE_STREAM));
        for (i, flag) in alive.iter_mut().enumerate() {
            if i as u32 != SOURCE && rng.next_f64() >= p.q {
                *flag = false;
            }
        }
    }
    let nonfailed = alive.iter().filter(|&&a| a).count();

    let fabric = Fabric::new();
    let mut endpoints = transport.open(n, &alive, &fabric)?;
    let mut pairs: Vec<(StreamActor, T::Endpoint)> = Vec::with_capacity(nonfailed);
    for (id, slot) in endpoints.iter_mut().enumerate() {
        if let Some(ep) = slot.take() {
            pairs.push((StreamActor::new(id as u32, n, exec_seed, p), ep));
        }
    }

    // Inject the plan at the source: messages sharing an injection
    // round form one arrival group, so piggybacking applies to bursts.
    {
        let (_, source_ep) = pairs
            .iter_mut()
            .find(|(actor, _)| actor.id == SOURCE)
            .expect("the source is immortal");
        let frame_limit = p.spec.frame_limit();
        let mut start = 0usize;
        while start < k {
            let round = p.injections[start];
            let mut end = start;
            while end < k && p.injections[end] == round {
                end += 1;
            }
            let group: Vec<u32> = (start as u32..end as u32).collect();
            let chunk_size = if p.spec.batched() { frame_limit } else { 1 };
            for chunk in group.chunks(chunk_size) {
                let injected = source_ep.send(
                    SOURCE,
                    &WireMessage {
                        id: exec_seed,
                        from: SOURCE,
                        hop: 0,
                        arrival_virtual_ns: round * p.hop_ms * NS_PER_MS,
                        ids: chunk.to_vec(),
                    },
                );
                debug_assert!(injected, "sending to the alive source cannot fail");
            }
            start = end;
        }
    }

    let shards = p.shards.clamp(1, pairs.len().max(1));
    let mut groups: Vec<Vec<(StreamActor, T::Endpoint)>> =
        (0..shards).map(|_| Vec::new()).collect();
    for (i, pair) in pairs.into_iter().enumerate() {
        groups[i % shards].push(pair);
    }
    let epoch = Instant::now();
    let fabric_ref: &Arc<Fabric> = &fabric;
    let actors: Vec<StreamActor> = crossbeam::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| scope.spawn(move |_| shard_loop(group, p, fabric_ref, epoch)))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("stream shard thread panicked"))
            .collect()
    })
    .expect("runtime stream scope");

    let mut reached = vec![0u32; k];
    let mut hist: Vec<u64> = Vec::new();
    let mut max_round = 0u64;
    let (mut dropped, mut sent, mut lost) = (0u64, 0u64, 0u64);
    for actor in &actors {
        for (m, &seen) in actor.seen.iter().enumerate() {
            if seen {
                reached[m] += 1;
            }
        }
        if hist.len() < actor.hist.len() {
            hist.resize(actor.hist.len(), 0);
        }
        for (total, &count) in hist.iter_mut().zip(&actor.hist) {
            *total += count;
        }
        max_round = max_round.max(actor.max_round);
        dropped += actor.copies_dropped;
        sent += actor.copies_sent;
        lost += actor.copies_lost;
    }
    Ok(StreamExecOutcome {
        nonfailed,
        reached,
        hist,
        max_round,
        copies_dropped: dropped,
        copies_sent: sent,
        copies_lost: lost,
        timed_out: fabric.timed_out(),
    })
}

/// Why this scenario's stream cannot run live, if it can't. Live
/// streams model the paper's base system only: complete view, push
/// relay, static crashes, constant hop latency (the token bucket's
/// round is the hop).
fn check_stream_support(backend: &'static str, scenario: &Scenario) -> Result<(), ModelError> {
    let what = if scenario.protocol != ProtocolSpec::Push {
        Some("multi-message traffic for flood variants (live streams use the push relay)")
    } else if !scenario.topology.is_default() {
        Some("multi-message traffic over structured overlays (live streams run on the complete view)")
    } else if !scenario.faults.is_default() {
        Some("multi-message traffic under dynamic fault injection (live streams model static crashes only)")
    } else if matches!(scenario.failure, FailureSpec::Schedule { .. }) {
        Some(
            "crash schedules under multi-message traffic (live streams draw static crashes from q)",
        )
    } else if !matches!(scenario.latency, LatencySpec::ConstantMillis { .. }) {
        Some("multi-message traffic under stochastic latency (the token bucket's round is the constant hop; use ConstantMillis)")
    } else {
        None
    };
    match what {
        Some(what) => Err(ModelError::Unsupported { backend, what }),
        None => Ok(()),
    }
}

/// Evaluates the scenario's [`TrafficSpec`] live: sequential
/// replications (each already fans out over shard threads), per-message
/// take-off conditioning, and the same [`TrafficReport`] shape as the
/// simulation backends — with throughput priced on the virtual clock,
/// so reports stay free of wall-clock scheduling noise.
pub(crate) fn evaluate_stream_over<T: Transport>(
    transport: &T,
    scenario: &Scenario,
    backend_name: String,
) -> Result<Report, ModelError>
where
    T::Endpoint: 'static,
{
    check_stream_support(transport.name(), scenario)?;
    let spec = scenario
        .traffic
        .expect("stream evaluation is only dispatched when traffic is present");
    let q = scenario
        .q()
        .expect("crash schedules were refused by check_stream_support");
    let hop_ms = match scenario.latency {
        LatencySpec::ConstantMillis { ms } => ms.max(1),
        _ => unreachable!("stochastic latency was refused by check_stream_support"),
    };
    let dist = scenario.fanout.build()?;
    let k = spec.messages;
    let injections = injection_rounds(
        &spec.arrival,
        k,
        SplitMix64::derive(scenario.seed, TRAFFIC_PLAN_STREAM),
    );
    let params = StreamExecParams {
        n: scenario.n,
        dist: &*dist,
        loss: scenario.loss,
        hop_ms,
        spec: &spec,
        injections: &injections,
        q,
        shards: shard_count(
            scenario.n,
            scenario.runtime.max_threads,
            in_parallel_worker(),
        ),
        pacing_micros_per_milli: scenario.runtime.pacing_micros_per_milli,
        deadline: Duration::from_secs(scenario.runtime.watchdog_or_default()),
    };

    let mut outcomes: Vec<StreamExecOutcome> = Vec::with_capacity(scenario.replications);
    for rep in 0..scenario.replications {
        let seed = SplitMix64::derive(scenario.seed, rep as u64);
        let outcome = run_stream_execution(transport, &params, seed)?;
        if outcome.timed_out {
            return Err(ModelError::NoConvergence {
                what: "runtime stream quiescence (a live execution hit its watchdog deadline)",
                iterations: rep,
            });
        }
        outcomes.push(outcome);
    }

    // Take-off conditioning per message at half the single-message
    // analytic prediction, mirroring the simulation stream backends.
    let prediction = LossyGossip::new(&*dist, q, scenario.loss)
        .and_then(|m| m.reliability())
        .unwrap_or(1.0);
    let threshold = if prediction < 0.05 {
        0.0
    } else {
        0.5 * prediction
    };
    let mut per_message: Vec<OnlineStats> = (0..k).map(|_| OnlineStats::new()).collect();
    let mut conditional = OnlineStats::new();
    let mut raw = OnlineStats::new();
    let mut rounds = OnlineStats::new();
    let mut per_member = OnlineStats::new();
    let mut sent = OnlineStats::new();
    let mut dropped = OnlineStats::new();
    let mut lost = OnlineStats::new();
    let mut throughput = OnlineStats::new();
    let mut hist: Vec<u64> = Vec::new();
    let mut takeoffs = 0usize;
    let mut samples = 0usize;
    for outcome in &outcomes {
        let mut any_takeoff = false;
        for (message, &count) in outcome.reached.iter().enumerate() {
            let r = count as f64 / outcome.nonfailed.max(1) as f64;
            samples += 1;
            raw.push(r);
            if r > threshold {
                takeoffs += 1;
                any_takeoff = true;
                conditional.push(r);
                per_message[message].push(r);
            }
        }
        if any_takeoff {
            rounds.push(outcome.max_round as f64);
            let secs = outcome.max_round as f64 * hop_ms as f64 / 1000.0;
            if secs > 0.0 {
                throughput.push(k as f64 / secs);
            }
        }
        per_member.push(outcome.copies_sent as f64 / outcome.nonfailed.max(1) as f64);
        sent.push(outcome.copies_sent as f64);
        dropped.push(outcome.copies_dropped as f64);
        lost.push(outcome.copies_lost as f64);
        if hist.len() < outcome.hist.len() {
            hist.resize(outcome.hist.len(), 0);
        }
        for (total, &count) in hist.iter_mut().zip(&outcome.hist) {
            *total += count;
        }
    }

    let means: Vec<f64> = per_message
        .iter()
        .map(|s| if s.count() == 0 { 0.0 } else { s.mean() })
        .collect();
    let reliability_mean = means.iter().sum::<f64>() / k as f64;
    let reliability_min = means.iter().copied().fold(f64::INFINITY, f64::min);
    let reliability = if conditional.count() == 0 {
        0.0
    } else {
        conditional.mean()
    };
    let ci = conditional.ci95();
    let critical_q = SitePercolation::new(&*dist, 1.0)?.critical_q();
    Ok(Report {
        backend: backend_name,
        scenario: scenario.label(),
        replications: outcomes.len(),
        reliability,
        reliability_std_error: conditional.sem(),
        reliability_ci95: (ci.lo, ci.hi),
        reliability_raw: Some(raw.mean()),
        critical_q,
        takeoff_rate: Some(takeoffs as f64 / samples.max(1) as f64),
        rounds: if rounds.count() == 0 {
            None
        } else {
            Some(rounds.mean())
        },
        messages_per_member: Some(per_member.mean()),
        // Wall clock stays out of runtime reports; the stream's timing
        // metrics below are virtual-clock, hence replayable.
        quiescence_secs: None,
        transport: Some(transport.name().to_string()),
        topology: scenario.topology_label(),
        faults: scenario.faults_label(),
        messages_lost: Some(lost.mean()),
        success_within_t: success::success_probability(reliability, scenario.executions),
        traffic: Some(TrafficReport {
            messages: k,
            reliability_mean,
            reliability_min,
            messages_per_sec: if throughput.count() == 0 {
                None
            } else {
                Some(throughput.mean())
            },
            latency_rounds_p50: percentile(&hist, 0.50),
            latency_rounds_p90: percentile(&hist, 0.90),
            latency_rounds_p99: percentile(&hist, 0.99),
            copies_sent: Some(sent.mean()),
            copies_dropped: Some(dropped.mean()),
            copies_lost: Some(lost.mean()),
            batched: spec.batched(),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_uncapped_passes_through() {
        let mut b = Bucket::new(NS_PER_MS, None, 4);
        assert_eq!(b.schedule(123), Some(123));
        assert_eq!(b.schedule(456), Some(456));
    }

    #[test]
    fn bucket_defers_past_budget_and_drops_past_capacity() {
        // B = 2 per round, capacity 4 backlogged slots.
        let mut b = Bucket::new(NS_PER_MS, Some(2), 4);
        // Round 0: two slots at the ready time.
        assert_eq!(b.schedule(0), Some(0));
        assert_eq!(b.schedule(0), Some(0));
        // Third and fourth frames defer one whole round.
        assert_eq!(b.schedule(0), Some(NS_PER_MS));
        assert_eq!(b.schedule(0), Some(NS_PER_MS));
        // Backlog relative to round 0 hit the capacity: drop.
        assert_eq!(b.schedule(0), None);
        // A frame ready in a later round starts a fresh window.
        assert_eq!(b.schedule(5 * NS_PER_MS), Some(5 * NS_PER_MS));
    }
}
