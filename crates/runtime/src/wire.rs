//! The typed message that crosses a [`Transport`](crate::Transport).
//!
//! One broadcast moves exactly one kind of datum: a relay of the gossip
//! payload. The struct is serde-derived so the TCP transport can frame
//! it as one JSON object per line (maelstrom-style), and the channel
//! transport can move it by value.

use serde::{Deserialize, Serialize};

/// One gossip relay on the wire.
///
/// The `arrival_virtual_ns` stamp is the runtime's *virtual clock*: the
/// sender adds a seed-derived latency draw (per
/// [`LatencySpec`](gossip_model::scenario::LatencySpec)) to the virtual
/// time of the copy that triggered its own relay. Scheduled crashes are
/// evaluated against this clock, and optional real-time pacing
/// ([`RuntimeSpec`](gossip_model::scenario::RuntimeSpec)) sleeps until
/// the scaled stamp before a node processes the message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireMessage {
    /// Broadcast identifier (derived from the execution seed).
    pub id: u64,
    /// Sending node.
    pub from: u32,
    /// Relay depth: 0 for the injection at the source.
    pub hop: u32,
    /// Virtual arrival time at the destination, in nanoseconds since
    /// injection.
    pub arrival_virtual_ns: u64,
    /// Piggybacked stream-message indices riding on this frame. Empty
    /// for the classic single-message broadcast; a multi-message stream
    /// ([`TrafficSpec`](gossip_model::TrafficSpec)) packs up to
    /// `frame_limit` indices per frame, amortizing one fanout draw and
    /// one frame-budget slot over all of them.
    pub ids: Vec<u32>,
}

impl WireMessage {
    /// The injection frame a broadcast starts from.
    pub fn injection(id: u64, source: u32) -> Self {
        WireMessage {
            id,
            from: source,
            hop: 0,
            arrival_virtual_ns: 0,
            ids: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_roundtrip() {
        let msg = WireMessage {
            id: 0xF00D,
            from: 7,
            hop: 3,
            arrival_virtual_ns: 12_500_000,
            ids: Vec::new(),
        };
        let line = serde::json::to_string(&msg).unwrap();
        assert!(line.contains("\"hop\":3"));
        let back: WireMessage = serde::json::from_str(&line).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn piggybacked_ids_roundtrip() {
        let msg = WireMessage {
            id: 1,
            from: 0,
            hop: 2,
            arrival_virtual_ns: 42,
            ids: vec![3, 1, 4, 1, 5],
        };
        let line = serde::json::to_string(&msg).unwrap();
        assert!(line.contains("\"ids\":[3,1,4,1,5]"));
        let back: WireMessage = serde::json::from_str(&line).unwrap();
        assert_eq!(back, msg);
    }
}
