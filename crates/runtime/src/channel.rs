//! The in-process channel transport: one mutex-guarded mailbox per
//! member, shared by every endpoint.
//!
//! This is the deterministic-replay transport: delivery never fails for
//! an alive peer, loss and latency are injected by the *sender* from
//! seed-derived draws (see [`crate::exec`]), and the set of messages
//! that ever exists is therefore a pure function of the scenario seed —
//! independent of thread interleaving. It is also the fast transport:
//! a send is one lock + one `VecDeque` push.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use gossip_model::ModelError;

use crate::transport::{Endpoint, Fabric, Transport};
use crate::wire::WireMessage;

/// Shared state of one channel-connected group.
struct Group {
    mailboxes: Vec<Mutex<VecDeque<WireMessage>>>,
    alive: Vec<bool>,
}

/// The in-process transport (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct ChannelTransport;

/// One member's handle on the shared mailboxes.
pub struct ChannelEndpoint {
    id: u32,
    group: Arc<Group>,
    fabric: Arc<Fabric>,
}

impl Endpoint for ChannelEndpoint {
    fn send(&mut self, to: u32, msg: &WireMessage) -> bool {
        let to = to as usize;
        if to >= self.group.alive.len() || !self.group.alive[to] {
            return false;
        }
        self.fabric.message_sent();
        self.group.mailboxes[to]
            .lock()
            .expect("mailbox lock poisoned")
            .push_back(msg.clone());
        true
    }

    fn poll(&mut self) -> Option<WireMessage> {
        self.group.mailboxes[self.id as usize]
            .lock()
            .expect("mailbox lock poisoned")
            .pop_front()
    }
}

impl Transport for ChannelTransport {
    type Endpoint = ChannelEndpoint;

    fn name(&self) -> &'static str {
        "channel"
    }

    fn open(
        &self,
        n: usize,
        alive: &[bool],
        fabric: &Arc<Fabric>,
    ) -> Result<Vec<Option<ChannelEndpoint>>, ModelError> {
        let group = Arc::new(Group {
            mailboxes: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            alive: alive.to_vec(),
        });
        Ok((0..n as u32)
            .map(|id| {
                alive[id as usize].then(|| ChannelEndpoint {
                    id,
                    group: group.clone(),
                    fabric: fabric.clone(),
                })
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_poll_and_dead_peer() {
        let fabric = Fabric::new();
        let alive = [true, true, false];
        let mut eps = ChannelTransport.open(3, &alive, &fabric).unwrap();
        let msg = WireMessage::injection(9, 0);
        // Alive peer: delivered and counted in flight.
        let mut a = eps[0].take().unwrap();
        let mut b = eps[1].take().unwrap();
        assert!(a.send(1, &msg));
        assert!(!fabric.is_done());
        assert_eq!(b.poll(), Some(msg.clone()));
        assert_eq!(b.poll(), None);
        fabric.message_settled();
        assert!(fabric.is_done());
        // Dead peer: refused, not counted.
        assert!(!a.send(2, &msg));
        assert!(eps[2].is_none(), "dead members get no endpoint");
    }
}
