//! The pluggable transport layer: how gossip messages physically move
//! between node actors, plus the in-flight accounting ([`Fabric`]) that
//! detects quiescence of a broadcast.
//!
//! A [`Transport`] opens one [`Endpoint`] per *alive* member of the
//! group; an endpoint can push a [`WireMessage`] toward any peer and
//! poll its own inbox without blocking. Two implementations ship:
//! [`ChannelTransport`](crate::ChannelTransport) (in-process mailboxes)
//! and [`TcpTransport`](crate::TcpTransport) (line-delimited JSON over
//! `std::net` loopback sockets).

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

use gossip_model::ModelError;

use crate::wire::WireMessage;

/// In-flight message accounting shared by every endpoint of one
/// broadcast.
///
/// Every accepted send increments the counter *before* the message can
/// possibly be received; every message is settled exactly once, *after*
/// any relays it triggered have themselves been counted. The counter
/// therefore reaches zero only at true quiescence — no message in
/// flight anywhere and none that could still be produced — at which
/// point `done` flips and every actor loop exits.
#[derive(Debug, Default)]
pub struct Fabric {
    inflight: AtomicI64,
    done: AtomicBool,
    timed_out: AtomicBool,
}

impl Fabric {
    /// A fresh fabric for one broadcast execution.
    pub fn new() -> Arc<Fabric> {
        Arc::new(Fabric::default())
    }

    /// Records a message handed to the transport (call before the
    /// delivery attempt).
    pub fn message_sent(&self) {
        self.inflight.fetch_add(1, Ordering::SeqCst);
    }

    /// Records a previously-sent message as fully dealt with —
    /// processed by its receiver (after its relays were counted) or
    /// dropped by the transport. Flips `done` at zero.
    pub fn message_settled(&self) {
        if self.inflight.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.done.store(true, Ordering::SeqCst);
        }
    }

    /// True once the broadcast has quiesced (or was aborted).
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Aborts the broadcast (deadline watchdog): actors drain and exit.
    pub fn abort(&self) {
        self.timed_out.store(true, Ordering::SeqCst);
        self.done.store(true, Ordering::SeqCst);
    }

    /// True when the broadcast ended by abort rather than quiescence.
    pub fn timed_out(&self) -> bool {
        self.timed_out.load(Ordering::SeqCst)
    }
}

/// One node's connection to the group.
///
/// `send` is fire-and-forget (gossip never acks); it reports `false`
/// when the peer is unreachable — crashed at start, or its listener is
/// gone — which the caller records as a lost message, exactly like loss
/// in transit. `poll` never blocks; node actors are multiplexed over a
/// bounded shard-thread pool, so a blocking receive would stall
/// unrelated actors.
pub trait Endpoint: Send {
    /// Attempts to deliver `msg` to peer `to`. Returns `false` if the
    /// peer is unreachable (the message is counted as lost).
    fn send(&mut self, to: u32, msg: &WireMessage) -> bool;

    /// Non-blocking poll of this node's inbox.
    fn poll(&mut self) -> Option<WireMessage>;
}

/// A way of physically connecting `n` gossip members.
pub trait Transport {
    /// The per-node endpoint type.
    type Endpoint: Endpoint + 'static;

    /// Short stable name, e.g. `"channel"` or `"tcp"` — lands in
    /// [`Report::transport`](gossip_model::scenario::Report::transport).
    fn name(&self) -> &'static str;

    /// Opens the group: one endpoint per alive member (`None` for
    /// members crashed at start — sends to them fail, as they should).
    fn open(
        &self,
        n: usize,
        alive: &[bool],
        fabric: &Arc<Fabric>,
    ) -> Result<Vec<Option<Self::Endpoint>>, ModelError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_counts_to_done() {
        let fabric = Fabric::new();
        assert!(!fabric.is_done());
        fabric.message_sent();
        fabric.message_sent();
        fabric.message_settled();
        assert!(!fabric.is_done());
        fabric.message_settled();
        assert!(fabric.is_done());
        assert!(!fabric.timed_out());
    }

    #[test]
    fn abort_is_done_and_timed_out() {
        let fabric = Fabric::new();
        fabric.message_sent();
        fabric.abort();
        assert!(fabric.is_done());
        assert!(fabric.timed_out());
    }
}
