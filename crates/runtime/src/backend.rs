//! [`RuntimeBackend`] — the live-execution layer of the unified
//! `Scenario` → `Backend` → `Report` API.
//!
//! Where the protocol and netsim backends *simulate* concurrency inside
//! one event loop, this backend actually runs it: node actors on real
//! OS threads, messages through a pluggable [`Transport`]. The same
//! Monte-Carlo reduction as the model layers (take-off conditioning,
//! seed-derived replications) sits on top, so a runtime [`Report`] is
//! directly comparable with the other four backends — that agreement is
//! the end-to-end check that the *implemented* protocol, not just its
//! models, matches the paper's predictions.

use std::time::Duration;

use gossip_faults::GilbertElliott;
use gossip_model::loss::LossyGossip;
use gossip_model::percolation::SitePercolation;
use gossip_model::scenario::{Backend, EngineSpec, MembershipSpec, ProtocolSpec, Report, Scenario};
use gossip_model::{success, ModelError};
use gossip_stats::descriptive::OnlineStats;
use gossip_stats::parallel::in_parallel_worker;
use gossip_stats::rng::SplitMix64;

use crate::channel::ChannelTransport;
use crate::exec::{run_execution, ExecOutcome, ExecParams};
use crate::tcp::TcpTransport;
use crate::transport::Transport;

/// The member the broadcast is injected at.
pub(crate) const SOURCE: u32 = 0;

/// Group-size ceiling for the TCP transport: each alive member holds an
/// open listener, so `n` is bounded by the process fd budget.
const TCP_MAX_GROUP: usize = 1024;

/// Which wire the runtime puts messages on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process mailboxes: fast and byte-deterministic in the seed.
    #[default]
    Channel,
    /// Real loopback TCP sockets with line-delimited JSON framing.
    Tcp,
}

/// The live-execution backend (see module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeBackend {
    transport: TransportKind,
}

impl RuntimeBackend {
    /// Runtime over the in-process channel transport (the default).
    pub fn channel() -> Self {
        RuntimeBackend {
            transport: TransportKind::Channel,
        }
    }

    /// Runtime over loopback TCP sockets.
    pub fn tcp() -> Self {
        RuntimeBackend {
            transport: TransportKind::Tcp,
        }
    }

    /// The configured transport.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }
}

/// How many shard threads to multiplex `n` node actors over.
///
/// `max_threads = 0` picks an automatic width from the machine's
/// parallelism; an explicit value is honoured (capped by `n`). When the
/// caller is *already* inside a `parallel_map` worker — a sweep grid
/// evaluating cells in parallel — the runtime collapses to one shard so
/// the two layers cannot multiply into `workers²` oversubscription.
pub fn shard_count(n: usize, max_threads: usize, nested: bool) -> usize {
    if nested {
        return 1;
    }
    let shards = if max_threads == 0 {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        (cores * 8).clamp(8, 256)
    } else {
        max_threads
    };
    shards.min(n).max(1)
}

fn reject_unsupported(scenario: &Scenario, n_cap: Option<usize>) -> Result<(), ModelError> {
    if scenario.engine == EngineSpec::Flat {
        return Err(ModelError::Unsupported {
            backend: "runtime",
            what: "the flat engine (live actors cannot be vectorized; use the graph or protocol backend)",
        });
    }
    if scenario.membership != MembershipSpec::Full {
        return Err(ModelError::Unsupported {
            backend: "runtime",
            what: "partial-view membership (runtime actors hold the full view; use the protocol backend for SCAMP)",
        });
    }
    if scenario.protocol == ProtocolSpec::PushPull {
        return Err(ModelError::Unsupported {
            backend: "runtime",
            what: "push-pull anti-entropy (the runtime implements push and flood; use the protocol backend)",
        });
    }
    if let Some(cap) = n_cap {
        if scenario.n > cap {
            return Err(ModelError::Unsupported {
                backend: "runtime-tcp",
                what: "groups larger than 1024 over TCP (one loopback listener per member exhausts the fd budget; use the channel transport)",
            });
        }
    }
    if scenario.faults.churn.is_some() && !scenario.topology.is_default() {
        return Err(ModelError::Unsupported {
            backend: "runtime",
            what: "membership churn combined with structured overlays (joiners can only bootstrap into the full view)",
        });
    }
    Ok(())
}

/// Runs the scenario's replications sequentially over `transport` and
/// reduces them exactly like the protocol backend's Monte-Carlo runner.
fn evaluate_over<T: Transport>(
    transport: &T,
    scenario: &Scenario,
    backend_name: String,
) -> Result<Report, ModelError> {
    let dist = scenario.fanout.build()?;
    let shards = shard_count(
        scenario.n,
        scenario.runtime.max_threads,
        in_parallel_worker(),
    );
    let params = ExecParams {
        n: scenario.n,
        source: SOURCE,
        dist: &*dist,
        loss: scenario.loss,
        latency: scenario.latency,
        failure: &scenario.failure,
        faults: &scenario.faults,
        topology: if scenario.topology.is_default() {
            None
        } else {
            Some(&scenario.topology)
        },
        flood: scenario.protocol == ProtocolSpec::Flood,
        shards,
        pacing_micros_per_milli: scenario.runtime.pacing_micros_per_milli,
        // The watchdog knob: far beyond any healthy quiescence time,
        // tight enough that a wedged transport fails the run instead of
        // hanging the caller. 0 = the 30 s default.
        deadline: Duration::from_secs(scenario.runtime.watchdog_or_default()),
    };

    // Replications run sequentially: each one already fans out over the
    // shard threads (and, over TCP, the kernel), so stacking replication
    // parallelism on top would oversubscribe without adding fidelity.
    let mut outcomes: Vec<ExecOutcome> = Vec::with_capacity(scenario.replications);
    for rep in 0..scenario.replications {
        let seed = SplitMix64::derive(scenario.seed, rep as u64);
        let outcome = run_execution(transport, &params, seed)?;
        if outcome.timed_out {
            return Err(ModelError::NoConvergence {
                what: "runtime quiescence (a live execution hit its watchdog deadline)",
                iterations: rep,
            });
        }
        outcomes.push(outcome);
    }

    // Take-off conditioning, mirroring the protocol backend: threshold
    // at half the analytic prediction (0 when subcritical).
    let threshold = match scenario.protocol {
        ProtocolSpec::Push => {
            let q = scenario.q().unwrap_or(1.0);
            // Fold bursty loss in at its stationary mean — an upper
            // bound on delivery (burstiness only hurts more), which is
            // all a take-off threshold needs.
            let mut loss = scenario.loss;
            if let Some(bursty) = &scenario.faults.bursty_loss {
                loss = 1.0 - (1.0 - loss) * (1.0 - GilbertElliott::new(bursty).mean_loss());
            }
            let prediction = LossyGossip::new(&*dist, q, loss)
                .and_then(|m| m.reliability())
                .unwrap_or(1.0);
            if prediction < 0.05 {
                0.0
            } else {
                0.5 * prediction
            }
        }
        ProtocolSpec::Flood | ProtocolSpec::PushPull => 0.5,
    };
    let mut conditional = OnlineStats::new();
    let mut raw = OnlineStats::new();
    let mut rounds = OnlineStats::new();
    let mut messages = OnlineStats::new();
    let mut lost = OnlineStats::new();
    let mut takeoffs = 0usize;
    for outcome in &outcomes {
        messages.push(outcome.messages_per_member());
        lost.push(outcome.messages_lost as f64);
        let r = outcome.reliability();
        raw.push(r);
        if r > threshold {
            takeoffs += 1;
            conditional.push(r);
            rounds.push(outcome.depth as f64);
        }
    }
    let reliability = if conditional.count() == 0 {
        0.0
    } else {
        conditional.mean()
    };
    let ci = conditional.ci95();
    let critical_q = SitePercolation::new(&*dist, 1.0)?.critical_q();
    Ok(Report {
        backend: backend_name,
        scenario: scenario.label(),
        replications: outcomes.len(),
        reliability,
        reliability_std_error: conditional.sem(),
        reliability_ci95: (ci.lo, ci.hi),
        reliability_raw: Some(raw.mean()),
        critical_q,
        takeoff_rate: Some(takeoffs as f64 / outcomes.len().max(1) as f64),
        rounds: if takeoffs == 0 {
            None
        } else {
            Some(rounds.mean())
        },
        messages_per_member: Some(messages.mean()),
        // Wall-clock is scheduling noise, not protocol behaviour: keep
        // it out of the Report so runtime reports replay byte-for-byte.
        quiescence_secs: None,
        transport: Some(transport.name().to_string()),
        topology: scenario.topology_label(),
        faults: scenario.faults_label(),
        messages_lost: Some(lost.mean()),
        success_within_t: success::success_probability(reliability, scenario.executions),
        traffic: None,
    })
}

impl Backend for RuntimeBackend {
    fn name(&self) -> &'static str {
        match self.transport {
            TransportKind::Channel => "runtime",
            TransportKind::Tcp => "runtime-tcp",
        }
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<Report, ModelError> {
        scenario.validate()?;
        match self.transport {
            TransportKind::Channel => {
                reject_unsupported(scenario, None)?;
                if scenario.traffic.is_some() {
                    return crate::stream::evaluate_stream_over(
                        &ChannelTransport,
                        scenario,
                        self.name().into(),
                    );
                }
                evaluate_over(&ChannelTransport, scenario, self.name().into())
            }
            TransportKind::Tcp => {
                reject_unsupported(scenario, Some(TCP_MAX_GROUP))?;
                if scenario.traffic.is_some() {
                    return crate::stream::evaluate_stream_over(
                        &TcpTransport,
                        scenario,
                        self.name().into(),
                    );
                }
                evaluate_over(&TcpTransport, scenario, self.name().into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::scenario::{AnalyticBackend, FanoutSpec, LatencySpec, RuntimeSpec};

    fn headline(n: usize, reps: usize) -> Scenario {
        Scenario::new(n, FanoutSpec::poisson(6.0))
            .with_failure_ratio(0.9)
            .with_replications(reps)
    }

    #[test]
    fn channel_matches_analytic() {
        let scenario = headline(500, 10);
        let analytic = AnalyticBackend.evaluate(&scenario).unwrap();
        let live = RuntimeBackend::channel().evaluate(&scenario).unwrap();
        assert_eq!(live.backend, "runtime");
        assert_eq!(live.transport.as_deref(), Some("channel"));
        assert!(
            (live.reliability - analytic.reliability).abs() < 0.05,
            "runtime {} vs analytic {}",
            live.reliability,
            analytic.reliability
        );
        assert!(live.rounds.unwrap() > 1.0);
        assert!(live.messages_per_member.unwrap() > 1.0);
        assert_eq!(live.quiescence_secs, None);
    }

    #[test]
    fn tcp_matches_analytic_small_group() {
        let scenario = headline(96, 4);
        let analytic = AnalyticBackend.evaluate(&scenario).unwrap();
        let live = RuntimeBackend::tcp().evaluate(&scenario).unwrap();
        assert_eq!(live.backend, "runtime-tcp");
        assert_eq!(live.transport.as_deref(), Some("tcp"));
        assert!(
            (live.reliability - analytic.reliability).abs() < 0.12,
            "tcp runtime {} vs analytic {}",
            live.reliability,
            analytic.reliability
        );
    }

    #[test]
    fn runtime_honours_loss() {
        // Loss thins the relay graph exactly like bond percolation.
        let lossy = headline(500, 8).with_loss(0.25);
        let analytic = AnalyticBackend.evaluate(&lossy).unwrap();
        let live = RuntimeBackend::channel().evaluate(&lossy).unwrap();
        assert!(
            (live.reliability - analytic.reliability).abs() < 0.06,
            "lossy runtime {} vs analytic {}",
            live.reliability,
            analytic.reliability
        );
        assert!(live.messages_lost.unwrap() > 0.0);
    }

    #[test]
    fn flood_reaches_everyone_alive() {
        let scenario = headline(200, 3).with_protocol(ProtocolSpec::Flood);
        let live = RuntimeBackend::channel().evaluate(&scenario).unwrap();
        assert!(live.reliability > 0.999, "flood r = {}", live.reliability);
    }

    #[test]
    fn rejects_unsupported_combinations() {
        assert!(matches!(
            RuntimeBackend::channel()
                .evaluate(&headline(100, 2).with_membership(MembershipSpec::Scamp { c: 2 })),
            Err(ModelError::Unsupported { .. })
        ));
        assert!(matches!(
            RuntimeBackend::channel()
                .evaluate(&headline(100, 2).with_protocol(ProtocolSpec::PushPull)),
            Err(ModelError::Unsupported { .. })
        ));
        assert!(matches!(
            RuntimeBackend::tcp().evaluate(&headline(2000, 2)),
            Err(ModelError::Unsupported { .. })
        ));
        // The channel transport has no fd budget: n = 2000 is fine.
        assert!(RuntimeBackend::channel()
            .evaluate(&headline(2000, 1))
            .is_ok());
    }

    #[test]
    fn structured_overlay_gossips_on_channel() {
        use gossip_topology::{OverlaySpec, TopologySpec};
        // Dense small world at a supercritical point: the live protocol
        // should still take off, and the report should say which
        // overlay it ran on.
        let scenario =
            headline(400, 6).with_topology(TopologySpec::new(OverlaySpec::WattsStrogatz {
                k: 10,
                beta: 0.3,
            }));
        let live = RuntimeBackend::channel().evaluate(&scenario).unwrap();
        assert_eq!(live.topology.as_deref(), Some("ws(k=10,beta=0.3)/neigh"));
        assert!(live.reliability > 0.5, "overlay r = {}", live.reliability);
        // The baseline scenario keeps the label empty.
        let plain = RuntimeBackend::channel()
            .evaluate(&headline(200, 2))
            .unwrap();
        assert_eq!(plain.topology, None);
    }

    #[test]
    fn structured_overlay_gossips_on_tcp() {
        use gossip_topology::{OverlaySpec, TopologySpec};
        // No failures: flooding the (always connected) ring overlay must
        // reach everyone, even though each relay only hits neighbours.
        let scenario = Scenario::new(96, FanoutSpec::poisson(6.0))
            .with_replications(2)
            .with_topology(TopologySpec::new(OverlaySpec::Ring { shortcuts: 96 }))
            .with_protocol(ProtocolSpec::Flood);
        let live = RuntimeBackend::tcp().evaluate(&scenario).unwrap();
        assert_eq!(live.transport.as_deref(), Some("tcp"));
        assert_eq!(live.topology.as_deref(), Some("ring(s=96)/neigh"));
        assert_eq!(live.reliability, 1.0);
    }

    #[test]
    fn churn_runs_live_and_labels_the_report() {
        use gossip_model::{ChurnSpec, FaultSpec};
        use gossip_topology::{OverlaySpec, TopologySpec};
        // No crashes, q = 1: mid-run churn is the only disturbance. At
        // these rates ~4 joins and ~4 leaves hit a 200-member group;
        // reliability stays high because joiners bootstrap into the
        // view and get gossiped to after their join stamp.
        let scenario = Scenario::new(200, FanoutSpec::poisson(6.0))
            .with_replications(6)
            .with_faults(FaultSpec::none().with_churn(ChurnSpec::symmetric(20.0, 200)));
        let live = RuntimeBackend::channel().evaluate(&scenario).unwrap();
        assert_eq!(
            live.faults.as_deref(),
            Some("churn(j=20,l=20,h=200ms)"),
            "report must carry the fault label"
        );
        assert!(live.reliability > 0.8, "churned r = {}", live.reliability);
        // Churn over a structured overlay is refused: joiners cannot
        // bootstrap into a neighbour list.
        let structured = scenario
            .clone()
            .with_topology(TopologySpec::new(OverlaySpec::Ring { shortcuts: 200 }));
        assert!(matches!(
            RuntimeBackend::channel().evaluate(&structured),
            Err(ModelError::Unsupported { .. })
        ));
    }

    #[test]
    fn zone_kill_at_start_removes_the_zone() {
        use gossip_model::FaultSpec;
        use gossip_topology::{OverlaySpec, TopologySpec};
        // Kill 1 of 4 zones at t = 0 on a clustered overlay: the zone
        // never participates, and the denominator shrinks to the
        // survivors (source's zone 0 keeps its immune source).
        let scenario = Scenario::new(200, FanoutSpec::poisson(6.0))
            .with_replications(4)
            .with_topology(TopologySpec::new(OverlaySpec::Clustered {
                zones: 4,
                intra: 5,
                inter: 3,
            }))
            .with_faults(FaultSpec::none().with_zone_failure(vec![2], 0));
        let live = RuntimeBackend::channel().evaluate(&scenario).unwrap();
        assert_eq!(live.faults.as_deref(), Some("zones([2]@0ms)"));
        assert!(
            live.reliability > 0.9,
            "survivors should still connect, r = {}",
            live.reliability
        );
    }

    #[test]
    fn bursty_loss_bites_harder_than_its_mean() {
        use gossip_model::{BurstySpec, FaultSpec};
        // Long bad bursts at a ~0.25 mean rate: reliability drops below
        // the clean run; the report carries the channel parameters.
        let clean = headline(300, 5).with_failure_ratio(1.0);
        let bursty = clean
            .clone()
            .with_faults(FaultSpec::none().with_bursty_loss(BurstySpec {
                p_gb: 0.05,
                p_bg: 0.15,
                loss_good: 0.0,
                loss_bad: 1.0,
            }));
        let clean_r = RuntimeBackend::channel().evaluate(&clean).unwrap();
        let bursty_r = RuntimeBackend::channel().evaluate(&bursty).unwrap();
        assert!(bursty_r.faults.as_deref().unwrap().starts_with("ge("));
        assert!(
            bursty_r.reliability_raw.unwrap() < clean_r.reliability_raw.unwrap(),
            "bursty {} should undercut clean {}",
            bursty_r.reliability_raw.unwrap(),
            clean_r.reliability_raw.unwrap()
        );
    }

    #[test]
    fn worst_case_adversary_blocks_the_live_source() {
        use gossip_model::{AdversaryStrategy, FaultSpec};
        // f = n − 1 cuts every uplink of source 0: only the source
        // delivers, however the threads race.
        let scenario = headline(100, 3)
            .with_failure_ratio(1.0)
            .with_faults(FaultSpec::none().with_adversary(99, AdversaryStrategy::WorstCase));
        let live = RuntimeBackend::channel().evaluate(&scenario).unwrap();
        assert_eq!(live.faults.as_deref(), Some("adv(f=99,worst)"));
        assert!(
            live.reliability_raw.unwrap() < 0.011,
            "raw r = {}",
            live.reliability_raw.unwrap()
        );
        assert!(live.messages_lost.unwrap() > 0.0);
    }

    #[test]
    fn faults_run_over_tcp_too() {
        use gossip_model::{ChurnSpec, FaultSpec};
        let scenario = Scenario::new(64, FanoutSpec::poisson(6.0))
            .with_replications(2)
            .with_faults(FaultSpec::none().with_churn(ChurnSpec::symmetric(15.0, 200)));
        let live = RuntimeBackend::tcp().evaluate(&scenario).unwrap();
        assert_eq!(live.transport.as_deref(), Some("tcp"));
        assert!(
            live.reliability > 0.7,
            "tcp churned r = {}",
            live.reliability
        );
    }

    #[test]
    fn live_stream_matches_analytic_on_channel() {
        use gossip_model::TrafficSpec;
        let scenario = headline(400, 8).with_traffic(TrafficSpec::stream(4));
        let analytic = AnalyticBackend.evaluate(&scenario).unwrap();
        let live = RuntimeBackend::channel().evaluate(&scenario).unwrap();
        let traffic = live.traffic.as_ref().unwrap();
        assert_eq!(traffic.messages, 4);
        assert!(
            (traffic.reliability_mean - analytic.reliability).abs() < 0.06,
            "live stream mean {} vs analytic {}",
            traffic.reliability_mean,
            analytic.reliability
        );
        assert!(traffic.reliability_min <= traffic.reliability_mean);
        // Timing rides the virtual clock: throughput and latency
        // percentiles are present, wall-clock quiescence is not.
        assert!(traffic.messages_per_sec.unwrap() > 0.0);
        assert!(traffic.latency_rounds_p50.unwrap() >= 1.0);
        assert_eq!(live.quiescence_secs, None);
        assert_eq!(live.transport.as_deref(), Some("channel"));
    }

    #[test]
    fn live_stream_runs_over_tcp() {
        use gossip_model::TrafficSpec;
        let scenario = Scenario::new(64, FanoutSpec::poisson(6.0))
            .with_replications(2)
            .with_traffic(TrafficSpec::stream(3));
        let live = RuntimeBackend::tcp().evaluate(&scenario).unwrap();
        let traffic = live.traffic.as_ref().unwrap();
        assert_eq!(live.transport.as_deref(), Some("tcp"));
        assert!(
            traffic.reliability_mean > 0.9,
            "fault-free tcp stream mean = {}",
            traffic.reliability_mean
        );
    }

    #[test]
    fn live_stream_batches_under_a_bandwidth_cap() {
        use gossip_model::TrafficSpec;
        let spec = TrafficSpec::stream(16)
            .with_bandwidth(2)
            .with_queue_capacity(8)
            .with_piggyback(8);
        let scenario = Scenario::new(200, FanoutSpec::poisson(4.0))
            .with_replications(4)
            .with_traffic(spec);
        let live = RuntimeBackend::channel().evaluate(&scenario).unwrap();
        let traffic = live.traffic.as_ref().unwrap();
        assert!(traffic.batched);
        assert!(traffic.copies_sent.unwrap() > 0.0);
        assert!(traffic.reliability_min <= traffic.reliability_mean);
    }

    #[test]
    fn live_stream_refusals_are_typed() {
        use gossip_model::TrafficSpec;
        use gossip_topology::{OverlaySpec, TopologySpec};
        let stream = |s: Scenario| s.with_traffic(TrafficSpec::stream(4));
        assert!(matches!(
            RuntimeBackend::channel()
                .evaluate(&stream(headline(100, 2).with_protocol(ProtocolSpec::Flood))),
            Err(ModelError::Unsupported { .. })
        ));
        assert!(matches!(
            RuntimeBackend::channel().evaluate(&stream(
                headline(100, 2).with_latency(LatencySpec::ExponentialMillis { mean_ms: 5 })
            )),
            Err(ModelError::Unsupported { .. })
        ));
        assert!(matches!(
            RuntimeBackend::tcp()
                .evaluate(&stream(headline(100, 2).with_topology(TopologySpec::new(
                    OverlaySpec::Ring { shortcuts: 100 }
                )))),
            Err(ModelError::Unsupported { .. })
        ));
    }

    #[test]
    fn shard_count_policy() {
        // Nested inside a parallel_map worker: always one shard.
        assert_eq!(shard_count(1000, 0, true), 1);
        assert_eq!(shard_count(1000, 64, true), 1);
        // Explicit cap honoured, bounded by the group size.
        assert_eq!(shard_count(1000, 4, false), 4);
        assert_eq!(shard_count(2, 64, false), 2);
        // Auto: at least 8 shards, never more than members.
        let auto = shard_count(1000, 0, false);
        assert!((8..=256).contains(&auto));
        assert_eq!(shard_count(3, 0, false), 3);
    }

    #[test]
    fn pacing_slows_wall_clock_not_results() {
        let base = headline(64, 2).with_latency(LatencySpec::ConstantMillis { ms: 20 });
        let paced = base.clone().with_runtime(RuntimeSpec {
            max_threads: 0,
            pacing_micros_per_milli: 50,
            watchdog_secs: 0,
        });
        let fast = RuntimeBackend::channel().evaluate(&base).unwrap();
        let t0 = std::time::Instant::now();
        let slow = RuntimeBackend::channel().evaluate(&paced).unwrap();
        let paced_wall = t0.elapsed();
        assert_eq!(fast.reliability, slow.reliability);
        assert_eq!(fast.rounds, slow.rounds);
        // ~6 relay generations × 20 ms × 50 µs/ms ≈ 6 ms per rep floor.
        assert!(paced_wall > Duration::from_millis(2), "pacing was a no-op");
    }
}
