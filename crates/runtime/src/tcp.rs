//! The TCP-loopback transport: every member binds a real
//! `std::net::TcpListener` on 127.0.0.1, and a relay is a real socket
//! connection carrying one line-delimited JSON [`WireMessage`]
//! (maelstrom-style framing) — proving the protocol works over an
//! actual byte stream, with connection refusal to crashed members
//! standing in for the real world's unreachable hosts.
//!
//! Listeners are non-blocking so node actors can be multiplexed over
//! shard threads exactly like the channel transport; accepted
//! connections are read to EOF (senders write-and-close) with a short
//! blocking timeout.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use gossip_model::ModelError;

use crate::transport::{Endpoint, Fabric, Transport};
use crate::wire::WireMessage;

/// The TCP-loopback transport (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpTransport;

/// One member's listener plus the group's address book.
pub struct TcpEndpoint {
    listener: TcpListener,
    addrs: Arc<Vec<Option<SocketAddr>>>,
    inbox: VecDeque<WireMessage>,
    fabric: Arc<Fabric>,
}

impl TcpEndpoint {
    /// Drains one accepted connection into the inbox.
    fn read_connection(&mut self, stream: TcpStream) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match serde::json::from_str::<WireMessage>(&line) {
                Ok(msg) => self.inbox.push_back(msg),
                // A malformed frame was still a sent message: settle it
                // so quiescence detection cannot hang on it.
                Err(_) => self.fabric.message_settled(),
            }
        }
    }
}

impl Endpoint for TcpEndpoint {
    fn send(&mut self, to: u32, msg: &WireMessage) -> bool {
        let Some(addr) = self.addrs.get(to as usize).copied().flatten() else {
            return false;
        };
        self.fabric.message_sent();
        let mut line = serde::json::to_string(msg).expect("wire message serializes");
        line.push('\n');
        let delivered = TcpStream::connect(addr)
            .and_then(|mut stream| {
                let _ = stream.set_nodelay(true);
                stream.write_all(line.as_bytes())
            })
            .is_ok();
        if !delivered {
            // Connection refused (peer crashed) or write failure: the
            // message died in transit.
            self.fabric.message_settled();
        }
        delivered
    }

    fn poll(&mut self) -> Option<WireMessage> {
        if let Some(msg) = self.inbox.pop_front() {
            return Some(msg);
        }
        match self.listener.accept() {
            Ok((stream, _)) => {
                self.read_connection(stream);
                self.inbox.pop_front()
            }
            Err(_) => None, // WouldBlock (or transient): nothing waiting
        }
    }
}

impl Transport for TcpTransport {
    type Endpoint = TcpEndpoint;

    fn name(&self) -> &'static str {
        "tcp"
    }

    fn open(
        &self,
        n: usize,
        alive: &[bool],
        fabric: &Arc<Fabric>,
    ) -> Result<Vec<Option<TcpEndpoint>>, ModelError> {
        let mut listeners: Vec<Option<TcpListener>> = Vec::with_capacity(n);
        let mut addrs: Vec<Option<SocketAddr>> = Vec::with_capacity(n);
        for &up in alive.iter().take(n) {
            if !up {
                // Crashed-at-start members never bind: connecting to
                // them is refused, exactly like a dead host.
                listeners.push(None);
                addrs.push(None);
                continue;
            }
            let listener =
                TcpListener::bind("127.0.0.1:0").map_err(|_| ModelError::Degenerate {
                    why: "cannot bind a loopback listener (fd budget exhausted?)",
                })?;
            listener
                .set_nonblocking(true)
                .map_err(|_| ModelError::Degenerate {
                    why: "cannot make a loopback listener non-blocking",
                })?;
            addrs.push(Some(listener.local_addr().map_err(|_| {
                ModelError::Degenerate {
                    why: "loopback listener has no local address",
                }
            })?));
            listeners.push(Some(listener));
        }
        let addrs = Arc::new(addrs);
        Ok(listeners
            .into_iter()
            .map(|listener| {
                listener.map(|listener| TcpEndpoint {
                    listener,
                    addrs: addrs.clone(),
                    inbox: VecDeque::new(),
                    fabric: fabric.clone(),
                })
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_send_poll_and_refusal() {
        let fabric = Fabric::new();
        let alive = [true, true, false];
        let mut eps = TcpTransport.open(3, &alive, &fabric).unwrap();
        let mut a = eps[0].take().unwrap();
        let mut b = eps[1].take().unwrap();
        let msg = WireMessage {
            id: 1,
            from: 0,
            hop: 2,
            arrival_virtual_ns: 42,
            ids: vec![7, 9],
        };
        assert!(a.send(1, &msg));
        // Non-blocking poll: spin briefly until the kernel delivers.
        let mut got = None;
        for _ in 0..2000 {
            if let Some(m) = b.poll() {
                got = Some(m);
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(got, Some(msg.clone()));
        fabric.message_settled();
        assert!(fabric.is_done());
        // The dead member has no address: refused without accounting.
        assert!(!a.send(2, &msg));
        assert!(eps[2].is_none());
    }
}
