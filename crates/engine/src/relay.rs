//! The flat push-relay kernel.
//!
//! One replication of the paper's Fig. 1 relay process: the source
//! pushes to `F ~ dist` members, every first-time receiver pushes to
//! its own `F` members, crashed members absorb without forwarding, and
//! lossy links drop each copy independently. The classic structured
//! path materializes this as a per-replication relay digraph (a CSR
//! build) and then BFS-es it; this kernel instead draws each member's
//! fanout and targets *lazily at first expansion*. The two are
//! distributionally identical — every member is expanded at most once
//! and all draws are independent — but the lazy form never touches
//! members the epidemic misses and never builds per-replication
//! adjacency at all.
//!
//! All state is struct-of-arrays in a [`RelayScratch`] arena: two
//! bitsets (failed, reached) plus three `u32` vectors (current
//! frontier, next frontier, target buffer). `RelayScratch::reset`
//! clears without freeing, so an evaluation allocates once and sweeps
//! thousands of replications through the same buffers.

use gossip_faults::adversary::BlockedLinks;
use gossip_model::distribution::FanoutDistribution;
use gossip_stats::rng::Xoshiro256StarStar;
use gossip_topology::{PeerSelection, Topology};

use crate::bitset::BitSet;
use crate::sampler::FanoutSampler;

/// Arena of per-replication state, reset — never reallocated — between
/// replications (the `UnionFind::reset` pattern applied to the whole
/// hot loop).
#[derive(Debug)]
pub struct RelayScratch {
    failed: BitSet,
    reached: BitSet,
    frontier: Vec<u32>,
    next: Vec<u32>,
    targets: Vec<u32>,
}

impl RelayScratch {
    /// Buffers for a group of `n` members.
    pub fn new(n: usize) -> Self {
        RelayScratch {
            failed: BitSet::new(n),
            reached: BitSet::new(n),
            frontier: Vec::new(),
            next: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Universe size the buffers were sized for.
    pub fn capacity(&self) -> usize {
        self.failed.len()
    }

    /// Clears every buffer in place.
    pub fn reset(&mut self) {
        self.failed.clear();
        self.reached.clear();
        self.frontier.clear();
        self.next.clear();
        self.targets.clear();
    }
}

/// Tallies from one replication.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RelayOutcome {
    /// Members that neither crashed nor were pre-failed.
    pub nonfailed: usize,
    /// Nonfailed members the rumor reached (source included).
    pub nonfailed_reached: usize,
    /// Copies delivered (post-blocking, post-loss).
    pub messages_sent: u64,
    /// Hop count of the deepest first-time receipt.
    pub max_hop: u32,
}

impl RelayOutcome {
    /// Paper reliability R = n_rece / n_nonfailed (Eq. 2 denominator
    /// excludes crashed members).
    pub fn reliability(&self) -> f64 {
        if self.nonfailed == 0 {
            0.0
        } else {
            self.nonfailed_reached as f64 / self.nonfailed as f64
        }
    }
}

/// One replication's immutable configuration. Everything borrowed here
/// is shared read-only across replications (and across worker threads):
/// the overlay CSR, the alias table, the blocked-link set, the
/// pre-failed list.
#[derive(Clone, Copy)]
pub struct RelaySetup<'a> {
    /// Group size.
    pub n: usize,
    /// Rumor origin (never crashes).
    pub source: u32,
    /// Per-member survival probability (crash draws skipped when ≥ 1).
    pub q: f64,
    /// Per-copy independent loss probability.
    pub loss: f64,
    /// Fanout law F.
    pub dist: &'a dyn FanoutDistribution,
    /// Alias-table draws for F.
    pub sampler: &'a FanoutSampler,
    /// `None` ⇒ complete overlay (uniform member selection, never
    /// materialized); `Some` ⇒ structured overlay + selection policy.
    pub overlay: Option<(&'a Topology, PeerSelection)>,
    /// Adversarially blocked links, consulted before the loss draw.
    pub blocked: Option<&'a BlockedLinks>,
    /// Members failed before the push starts (zone failures). The
    /// source is skipped if listed.
    pub prefailed: &'a [u32],
}

impl<'a> RelaySetup<'a> {
    /// Runs one replication through `scratch` using `rng`.
    pub fn run(&self, scratch: &mut RelayScratch, rng: &mut Xoshiro256StarStar) -> RelayOutcome {
        debug_assert_eq!(scratch.capacity(), self.n);
        scratch.reset();

        for &node in self.prefailed {
            if node != self.source {
                scratch.failed.set(node as usize);
            }
        }
        if self.q < 1.0 {
            for node in 0..self.n {
                if node as u32 != self.source && !rng.next_bool(self.q) {
                    scratch.failed.set(node);
                }
            }
        }

        scratch.reached.set(self.source as usize);
        scratch.frontier.push(self.source);

        let mut messages_sent = 0u64;
        let mut max_hop = 0u32;
        let mut hop = 0u32;
        while !scratch.frontier.is_empty() {
            hop += 1;
            // Split borrows: the frontier is drained while targets/next
            // are filled, so take it out of the arena for the level.
            let mut frontier = std::mem::take(&mut scratch.frontier);
            for &v in &frontier {
                if scratch.failed.get(v as usize) {
                    continue; // crashed members absorb, never forward
                }
                let fanout = self.sampler.sample(self.dist, rng);
                match self.overlay {
                    None => {
                        // Complete overlay: uniform distinct members by
                        // rejection — the K(n−1) neighbour lists are
                        // never built.
                        let fanout = fanout.min(self.n - 1);
                        scratch.targets.clear();
                        while scratch.targets.len() < fanout {
                            let t = rng.next_below(self.n as u64) as u32;
                            if t != v && !scratch.targets.contains(&t) {
                                scratch.targets.push(t);
                            }
                        }
                    }
                    Some((topo, policy)) => {
                        gossip_topology::select_targets(
                            topo,
                            policy,
                            v,
                            fanout,
                            rng,
                            &mut scratch.targets,
                        );
                    }
                }
                for &t in &scratch.targets {
                    if let Some(blocked) = self.blocked {
                        if blocked.blocks(v, t) {
                            continue;
                        }
                    }
                    if self.loss > 0.0 && rng.next_bool(self.loss) {
                        continue;
                    }
                    messages_sent += 1;
                    if scratch.reached.insert(t as usize) {
                        scratch.next.push(t);
                        max_hop = hop;
                    }
                }
            }
            frontier.clear();
            scratch.frontier = frontier;
            std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        }

        let nonfailed = self.n - scratch.failed.count_ones();
        let nonfailed_reached = scratch.reached.difference_count(&scratch.failed);
        RelayOutcome {
            nonfailed,
            nonfailed_reached,
            messages_sent,
            max_hop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::distribution::{FixedFanout, PoissonFanout};
    use gossip_model::poisson_case;
    use gossip_stats::rng::SplitMix64;
    use gossip_topology::OverlaySpec;

    fn run_reps(setup: &RelaySetup<'_>, reps: u64, seed: u64) -> Vec<RelayOutcome> {
        let mut scratch = RelayScratch::new(setup.n);
        (0..reps)
            .map(|rep| {
                let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, rep));
                setup.run(&mut scratch, &mut rng)
            })
            .collect()
    }

    #[test]
    fn complete_overlay_matches_the_analytic_curve() {
        // Fig. 4 operating point: Po(6) fanout, q = 0.9. Mean relay
        // reliability should sit near the §4.3 closed form.
        let dist = PoissonFanout::new(6.0);
        let sampler = FanoutSampler::new(&dist);
        let setup = RelaySetup {
            n: 4000,
            source: 0,
            q: 0.9,
            loss: 0.0,
            dist: &dist,
            sampler: &sampler,
            overlay: None,
            blocked: None,
            prefailed: &[],
        };
        let outcomes = run_reps(&setup, 40, 0xF1A7_0001);
        let mean: f64 =
            outcomes.iter().map(RelayOutcome::reliability).sum::<f64>() / outcomes.len() as f64;
        let predicted = poisson_case::reliability(6.0, 0.9).unwrap();
        assert!(
            (mean - predicted).abs() < 0.05,
            "relay mean {mean} vs analytic {predicted}"
        );
    }

    #[test]
    fn deterministic_in_the_seed() {
        let dist = PoissonFanout::new(4.0);
        let sampler = FanoutSampler::new(&dist);
        let setup = RelaySetup {
            n: 500,
            source: 3,
            q: 0.8,
            loss: 0.1,
            dist: &dist,
            sampler: &sampler,
            overlay: None,
            blocked: None,
            prefailed: &[7, 8, 9],
        };
        let a = run_reps(&setup, 10, 42);
        let b = run_reps(&setup, 10, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn prefailed_members_absorb_and_shrink_the_denominator() {
        let dist = FixedFanout::new(8);
        let sampler = FanoutSampler::new(&dist);
        let prefailed: Vec<u32> = (1..=100).collect();
        let setup = RelaySetup {
            n: 1000,
            source: 0,
            q: 1.0,
            loss: 0.0,
            dist: &dist,
            sampler: &sampler,
            overlay: None,
            blocked: None,
            prefailed: &prefailed,
        };
        let outcome = run_reps(&setup, 1, 7)[0];
        assert_eq!(outcome.nonfailed, 900);
        assert!(outcome.nonfailed_reached <= 900);
        // Fanout 8 on an intact group saturates it.
        assert!(outcome.nonfailed_reached as f64 / 900.0 > 0.99);
    }

    #[test]
    fn loss_thins_like_a_lower_fanout() {
        // Po(8) with 50% loss ⇒ effective Po(4) reach (bond-thinning of
        // a Poisson relay graph).
        let lossy = PoissonFanout::new(8.0);
        let thin = PoissonFanout::new(4.0);
        let lossy_sampler = FanoutSampler::new(&lossy);
        let thin_sampler = FanoutSampler::new(&thin);
        let base = RelaySetup {
            n: 3000,
            source: 0,
            q: 1.0,
            loss: 0.5,
            dist: &lossy,
            sampler: &lossy_sampler,
            overlay: None,
            blocked: None,
            prefailed: &[],
        };
        let thinned = RelaySetup {
            loss: 0.0,
            dist: &thin,
            sampler: &thin_sampler,
            ..base
        };
        let mean = |outs: &[RelayOutcome]| {
            outs.iter().map(RelayOutcome::reliability).sum::<f64>() / outs.len() as f64
        };
        let a = mean(&run_reps(&base, 30, 11));
        let b = mean(&run_reps(&thinned, 30, 12));
        assert!((a - b).abs() < 0.05, "lossy {a} vs thinned {b}");
    }

    #[test]
    fn structured_overlay_runs_and_respects_degree() {
        let dist = FixedFanout::new(4);
        let sampler = FanoutSampler::new(&dist);
        let topo = gossip_topology::build_overlay(&OverlaySpec::KRegular { k: 4 }, 256, 99);
        let setup = RelaySetup {
            n: 256,
            source: 0,
            q: 1.0,
            loss: 0.0,
            dist: &dist,
            sampler: &sampler,
            overlay: Some((&topo, PeerSelection::RandomNeighbour)),
            blocked: None,
            prefailed: &[],
        };
        let outcome = run_reps(&setup, 1, 5)[0];
        // Ring(k=4) with fanout 4 floods the whole ring.
        assert_eq!(outcome.nonfailed_reached, 256);
        assert!(outcome.max_hop >= (256 / 4) as u32 / 2);
    }
}
