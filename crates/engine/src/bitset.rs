//! Fixed-width bitsets over u64 words.
//!
//! The flat kernels track membership sets (failed, reached) for up to
//! 10⁷ nodes per replication; a `Vec<bool>` spends a byte per member
//! and a fresh allocation per replication, while a word bitset packs
//! 512 members per cache line, clears with one `memset`, and reduces
//! with hardware popcounts. No dynamic growth: the length is fixed at
//! construction (the arena owns one per evaluation).

/// A fixed-length set of `usize` indices packed into u64 words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size (not the number of set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every element — one `memset`, no reallocation. This is
    /// the per-replication reset of the arena pattern.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts every element of the universe.
    pub fn set_all(&mut self) {
        self.words.fill(!0u64);
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Membership test.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Inserts `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Inserts `i`, returning `true` iff it was absent — the frontier
    /// test-and-set, one read-modify-write instead of a load + branch +
    /// store pair.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let word = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Number of elements present (word-parallel popcount).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `|self \ other|` — e.g. reached-and-nonfailed as
    /// `reached.difference_count(&failed)` without materializing the
    /// intersection.
    pub fn difference_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_insert() {
        let mut s = BitSet::new(130);
        assert!(!s.get(0) && !s.get(129));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports presence");
        s.set(64);
        assert!(s.get(64) && s.get(129));
        assert_eq!(s.count_ones(), 2);
        s.clear();
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.len(), 130);
    }

    #[test]
    fn set_all_masks_the_tail_word() {
        for len in [1usize, 63, 64, 65, 128, 130] {
            let mut s = BitSet::new(len);
            s.set_all();
            assert_eq!(s.count_ones(), len, "len = {len}");
            assert!(s.get(len - 1));
        }
    }

    #[test]
    fn difference_count_matches_scalar() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in (0..200).step_by(3) {
            a.set(i);
        }
        for i in (0..200).step_by(5) {
            b.set(i);
        }
        let expected = (0..200).filter(|&i| i % 3 == 0 && i % 5 != 0).count();
        assert_eq!(a.difference_count(&b), expected);
    }

    #[test]
    fn empty_universe() {
        let mut s = BitSet::new(0);
        assert!(s.is_empty());
        s.set_all();
        assert_eq!(s.count_ones(), 0);
    }
}
