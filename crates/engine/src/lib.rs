//! # gossip-engine
//!
//! Flat struct-of-arrays Monte-Carlo kernels for the million-node
//! regime (ROADMAP: "Million-node epidemic engine").
//!
//! The classic evaluation layers carry per-node structs, per-round
//! `Vec` allocations, and (for the protocol engine) a full event queue;
//! all of that is O(n) allocator traffic *per replication*, which is
//! what keeps the Fig. 4 curve stuck at n ≈ 10³–10⁴. This crate holds
//! the shared machinery the backends swap in above a size threshold
//! (or when a scenario sets `EngineSpec::Flat`):
//!
//! * [`bitset`] — u64-word bitsets for the infected/failed/reached
//!   sets. One cache line covers 512 members; membership tests are a
//!   shift and a mask, and population counts reduce whole words at a
//!   time.
//! * [`sampler`] — batched fanout draws through the `gossip_stats`
//!   alias table: the distribution's pmf is tabulated once per
//!   evaluation and every subsequent draw is two RNG calls, replacing
//!   per-draw inverse-CDF loops.
//! * [`relay`] — the push-relay kernel. Instead of materializing the
//!   Fig. 1 relay digraph and BFS-ing it (two CSR builds per
//!   replication on the classic structured path), the kernel draws
//!   each member's fanout and targets *lazily at first receipt*:
//!   distributionally identical (draws are independent and each member
//!   is expanded at most once), and the only adjacency ever touched is
//!   the `gossip-topology` overlay CSR, built once per evaluation and
//!   threaded through every replication read-only. All per-replication
//!   state lives in a [`relay::RelayScratch`] arena that is reset —
//!   never reallocated — between replications, extending the
//!   `UnionFind::reset` pattern to the whole hot loop.
//!
//! The crate exposes kernels, not backends: `gossip-rgraph` and
//! `gossip-protocol` wrap them behind the unchanged
//! `Scenario` → `Backend` → `Report` API.

pub mod bitset;
pub mod relay;
pub mod sampler;

pub use bitset::BitSet;
pub use relay::{RelayOutcome, RelayScratch, RelaySetup};
pub use sampler::FanoutSampler;

/// Seed-stream tag for the flat engine's single per-replication RNG.
/// Distinct from every classic stream (0x6A, 0x9C, 0x70, 0xD1, …), so
/// flat and classic runs of the same scenario are independent samples.
pub const FLAT_STREAM: u64 = 0xF1A7;

/// Seed-stream tag for the overlay CSR a flat evaluation builds once
/// and shares across all replications.
pub const FLAT_TOPOLOGY_STREAM: u64 = 0xF170;

/// Splits `reps` replications into at most 64 contiguous chunks so each
/// worker sweeps many replications through ONE scratch arena (allocate
/// once, reset per replication) while `parallel_map` still
/// load-balances. Chunk boundaries never affect results: every
/// replication's RNG derives from its own global index.
pub fn chunk_bounds(reps: usize) -> (usize, impl Fn(usize) -> std::ops::Range<usize>) {
    let chunks = reps.min(64);
    (chunks, move |chunk| {
        (chunk * reps / chunks)..((chunk + 1) * reps / chunks)
    })
}
