//! Batched fanout draws via the `gossip_stats` alias table.
//!
//! The flat kernels draw one fanout per reached member per
//! replication — tens of millions of draws per evaluation at n = 10⁶.
//! Tabulating the distribution's pmf once (Walker/Vose alias method,
//! O(1) per draw: one index pick + one coin) replaces whatever
//! per-draw work the distribution's own `sample` does (inverse-CDF
//! loops for Poisson, series walks for mixtures).
//!
//! The table truncates the pmf at the distribution's own
//! `truncation_point(1e-12)`: the discarded tail mass is ≤ 1e-12,
//! far below the Monte-Carlo noise floor of any replication budget.

use gossip_model::distribution::FanoutDistribution;
use gossip_stats::alias::AliasTable;
use gossip_stats::rng::Xoshiro256StarStar;

/// Tail mass discarded by the tabulation.
const TRUNCATION_EPS: f64 = 1e-12;

/// A pre-tabulated sampler for one fanout distribution.
#[derive(Clone, Debug)]
pub struct FanoutSampler {
    /// `None` when the pmf could not be tabulated (zero mass inside the
    /// truncation window); draws then fall back to the distribution's
    /// own `sample`.
    table: Option<AliasTable>,
}

impl FanoutSampler {
    /// Tabulates `dist.pmf(0..=truncation_point)` into an alias table.
    pub fn new(dist: &dyn FanoutDistribution) -> Self {
        let cutoff = dist.truncation_point(TRUNCATION_EPS);
        let weights: Vec<f64> = (0..=cutoff)
            .map(|k| {
                let p = dist.pmf(k);
                if p.is_finite() && p > 0.0 {
                    p
                } else {
                    0.0
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let table = if total > 0.0 {
            Some(AliasTable::new(&weights))
        } else {
            None
        };
        FanoutSampler { table }
    }

    /// Draws one fanout: two RNG calls through the table, or the
    /// distribution's own sampler if tabulation failed.
    #[inline]
    pub fn sample(&self, dist: &dyn FanoutDistribution, rng: &mut Xoshiro256StarStar) -> usize {
        match &self.table {
            Some(table) => table.sample(rng),
            None => dist.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::distribution::{FixedFanout, PoissonFanout};

    #[test]
    fn tabulated_mean_matches_distribution() {
        let dist = PoissonFanout::new(4.0);
        let sampler = FanoutSampler::new(&dist);
        let mut rng = Xoshiro256StarStar::new(7);
        let draws = 200_000;
        let sum: usize = (0..draws).map(|_| sampler.sample(&dist, &mut rng)).sum();
        let mean = sum as f64 / draws as f64;
        assert!((mean - 4.0).abs() < 0.05, "tabulated mean {mean}");
    }

    #[test]
    fn fixed_fanout_is_exact() {
        let dist = FixedFanout::new(6);
        let sampler = FanoutSampler::new(&dist);
        let mut rng = Xoshiro256StarStar::new(1);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&dist, &mut rng), 6);
        }
    }

    #[test]
    fn zero_fanout_is_exact() {
        let dist = FixedFanout::new(0);
        let sampler = FanoutSampler::new(&dist);
        let mut rng = Xoshiro256StarStar::new(2);
        assert_eq!(sampler.sample(&dist, &mut rng), 0);
    }
}
