//! Monte-Carlo experiment harness (paper §5).
//!
//! Reproduces the paper's measurement procedures:
//!
//! * **Reliability** (Figs. 4/5): "for each pair `{f, q}`, we run our
//!   gossiping algorithm 20 times and report the average results" —
//!   [`reliability`].
//! * **Success of gossiping** (Figs. 6/7): "we run our gossiping
//!   algorithm for 20 times in one simulation, and each simulation is
//!   repeated for 100 times; then we report the distribution of the
//!   number X of gossiping successes among the 20 executions" —
//!   [`success_count_distribution`].
//! * **Success vs. t** (Eq. 5 validation): empirical probability that a
//!   member is reached at least once within `t` executions —
//!   [`success_within_t`].
//!
//! All runs derive per-replication seeds from `(base_seed, index)` and
//! fan out over [`gossip_stats::parallel`], so results are identical on
//! 1 or 64 threads.

use gossip_model::distribution::FanoutDistribution;
use gossip_stats::descriptive::OnlineStats;
use gossip_stats::histogram::IntHistogram;
use gossip_stats::parallel::parallel_map;
use gossip_stats::rng::SplitMix64;

use crate::engine::{run_push, ExecutionConfig, ExecutionOutcome};

/// Runs `reps` independent executions and accumulates the reliability of
/// each (the Figs. 4/5 procedure; the paper uses `reps = 20`).
pub fn reliability<D>(cfg: &ExecutionConfig, dist: &D, reps: usize, base_seed: u64) -> OnlineStats
where
    D: FanoutDistribution + Clone + Sync + 'static,
{
    let outcomes = executions(cfg, dist, reps, base_seed);
    let mut stats = OnlineStats::new();
    for o in &outcomes {
        stats.push(o.reliability());
    }
    stats
}

/// Mean reliability conditioned on *take-off*: executions in which the
/// dissemination escaped the source's neighbourhood (reliability above
/// `threshold`, conventionally half the analytic prediction).
///
/// The branching process dies immediately at the source with probability
/// `≈ 1 − R` even above the critical point; those executions contribute
/// reliability ≈ 0 and drag the unconditional mean toward `R²`. The giant
/// component size of the theory is the *conditional* value — this is the
/// estimator that converges to Eq. 11's root. (The paper's own Figs. 4/5
/// average unconditionally over 20 runs, which is why it reports that
/// simulations "tally with the analytical results except very few
/// points".)
pub fn reliability_conditional<D>(
    cfg: &ExecutionConfig,
    dist: &D,
    reps: usize,
    base_seed: u64,
    threshold: f64,
) -> OnlineStats
where
    D: FanoutDistribution + Clone + Sync + 'static,
{
    let outcomes = executions(cfg, dist, reps, base_seed);
    let mut stats = OnlineStats::new();
    for o in &outcomes {
        let r = o.reliability();
        if r > threshold {
            stats.push(r);
        }
    }
    stats
}

/// Runs `reps` independent executions, returning every outcome (for cost
/// and latency metrics beyond reliability).
pub fn executions<D>(
    cfg: &ExecutionConfig,
    dist: &D,
    reps: usize,
    base_seed: u64,
) -> Vec<ExecutionOutcome>
where
    D: FanoutDistribution + Clone + Sync + 'static,
{
    parallel_map(reps, |rep| {
        let seed = SplitMix64::derive(base_seed, rep as u64);
        run_push(cfg, dist, seed).expect("paper-model execution config is infallible")
    })
}

/// The Figs. 6/7 procedure: `sims` simulations of `execs_per_sim`
/// executions each; the histogram records, per simulation, the paper's
/// §4.2 variable `X` — *the number of executions in which a nonfailed
/// member receives the message* (tracked via the per-execution observer
/// member, see [`ExecutionOutcome::observer_reached`]). The paper's
/// analysis line is `X ~ B(execs_per_sim, R)`.
///
/// The paper uses `execs_per_sim = 20`, `sims = 100`, n = 2000.
pub fn member_receipt_distribution<D>(
    cfg: &ExecutionConfig,
    dist: &D,
    execs_per_sim: usize,
    sims: usize,
    base_seed: u64,
) -> IntHistogram
where
    D: FanoutDistribution + Clone + Sync + 'static,
{
    let counts = parallel_map(sims, |sim_idx| {
        let sim_seed = SplitMix64::derive(base_seed, sim_idx as u64);
        let mut receipts = 0u64;
        for exec in 0..execs_per_sim {
            let seed = SplitMix64::derive(sim_seed, exec as u64);
            if run_push(cfg, dist, seed)
                .expect("paper-model execution config is infallible")
                .observer_reached
            {
                receipts += 1;
            }
        }
        receipts
    });
    IntHistogram::from_samples(execs_per_sim, counts)
}

/// Strict-success variant: counts, per simulation, executions in which
/// **every** nonfailed member was reached (the literal §4.2 definition
/// of `S(q, P, t)`'s underlying event).
///
/// At group sizes in the thousands this count is essentially always 0 —
/// an execution with per-member reliability `R < 1` leaves `≈ (1−R)·nq`
/// stragglers — which is precisely why the paper's own Figs. 6/7 must be
/// read as plotting the per-member receipt count
/// ([`member_receipt_distribution`]). Kept for the metric-definition
/// analysis in EXPERIMENTS.md.
pub fn success_count_distribution<D>(
    cfg: &ExecutionConfig,
    dist: &D,
    execs_per_sim: usize,
    sims: usize,
    base_seed: u64,
) -> IntHistogram
where
    D: FanoutDistribution + Clone + Sync + 'static,
{
    let counts = parallel_map(sims, |sim_idx| {
        let sim_seed = SplitMix64::derive(base_seed, sim_idx as u64);
        let mut successes = 0u64;
        for exec in 0..execs_per_sim {
            let seed = SplitMix64::derive(sim_seed, exec as u64);
            if run_push(cfg, dist, seed)
                .expect("paper-model execution config is infallible")
                .is_success()
            {
                successes += 1;
            }
        }
        successes
    });
    IntHistogram::from_samples(execs_per_sim, counts)
}

/// Mean cumulative dissemination profile: entry `h` is the expected
/// fraction of nonfailed members first reached within `h` hops of the
/// source, averaged over `reps` executions (take-off executions only,
/// threshold as in [`reliability_conditional`]).
///
/// Hop distance is the discrete-time analogue of gossip "rounds", making
/// this directly comparable to the pbcast recurrence and SI epidemic
/// baselines (E12).
pub fn hop_profile<D>(
    cfg: &ExecutionConfig,
    dist: &D,
    reps: usize,
    base_seed: u64,
    takeoff_threshold: f64,
) -> Vec<f64>
where
    D: FanoutDistribution + Clone + Sync + 'static,
{
    let outcomes = executions(cfg, dist, reps, base_seed);
    let taken: Vec<&ExecutionOutcome> = outcomes
        .iter()
        .filter(|o| o.reliability() > takeoff_threshold)
        .collect();
    if taken.is_empty() {
        return Vec::new();
    }
    let len = taken
        .iter()
        .map(|o| o.hop_histogram.len())
        .max()
        .expect("non-empty");
    let mut cumulative = vec![0.0f64; len];
    for o in &taken {
        let denom = o.nonfailed as f64;
        let mut acc = 0.0;
        for (h, slot) in cumulative.iter_mut().enumerate() {
            // Executions with shorter profiles stay saturated at their
            // final value for larger h.
            acc += o.hop_histogram.get(h).copied().unwrap_or(0) as f64;
            *slot += acc / denom;
        }
    }
    for v in &mut cumulative {
        *v /= taken.len() as f64;
    }
    cumulative
}

/// Empirical check of Eq. 5: the probability that a nonfailed member is
/// reached at least once within `t` executions, measured through the
/// per-execution observer member
/// ([`ExecutionOutcome::observer_reached`]).
///
/// Returns the fraction of `trials` (each = `t` fresh executions) in
/// which the observer was reached at least once; Eq. 5 predicts
/// `1 − (1 − R)^t`.
pub fn success_within_t<D>(
    cfg: &ExecutionConfig,
    dist: &D,
    t: usize,
    trials: usize,
    base_seed: u64,
) -> f64
where
    D: FanoutDistribution + Clone + Sync + 'static,
{
    let hits = parallel_map(trials, |trial| {
        let trial_seed = SplitMix64::derive(base_seed, trial as u64);
        for exec in 0..t {
            let seed = SplitMix64::derive(trial_seed, exec as u64);
            if run_push(cfg, dist, seed)
                .expect("paper-model execution config is infallible")
                .observer_reached
            {
                return 1u32;
            }
        }
        0u32
    });
    hits.iter().map(|&h| h as f64).sum::<f64>() / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::distribution::PoissonFanout;
    use gossip_model::poisson_case;

    #[test]
    fn reliability_matches_analysis_small() {
        // n = 1000, Po(4), q = 0.9 — the paper's headline point.
        let cfg = ExecutionConfig::new(1000, 0.9);
        let stats = reliability(&cfg, &PoissonFanout::new(4.0), 20, 7);
        let analytic = poisson_case::reliability(4.0, 0.9).unwrap();
        assert!(
            (stats.mean() - analytic).abs() < 0.03,
            "sim {} vs analytic {analytic}",
            stats.mean()
        );
        assert_eq!(stats.count(), 20);
    }

    #[test]
    fn subcritical_reliability_near_zero() {
        let cfg = ExecutionConfig::new(1000, 0.2);
        let stats = reliability(&cfg, &PoissonFanout::new(2.0), 10, 8);
        assert!(stats.mean() < 0.05, "got {}", stats.mean());
    }

    #[test]
    fn success_counts_concentrate_at_high_reliability() {
        // Small group, very high fanout: essentially every execution
        // succeeds, X ≈ execs_per_sim.
        let cfg = ExecutionConfig::new(100, 1.0);
        let hist = success_count_distribution(&cfg, &PoissonFanout::new(8.0), 10, 20, 9);
        assert_eq!(hist.total(), 20);
        assert!(hist.mean() > 8.0, "mean successes {}", hist.mean());
    }

    #[test]
    fn executions_deterministic() {
        let cfg = ExecutionConfig::new(300, 0.8);
        let a = executions(&cfg, &PoissonFanout::new(4.0), 5, 123);
        let b = executions(&cfg, &PoissonFanout::new(4.0), 5, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn hop_profile_is_cumulative_and_saturates() {
        let cfg = ExecutionConfig::new(800, 0.9);
        let dist = PoissonFanout::new(4.0);
        let analytic = poisson_case::reliability(4.0, 0.9).unwrap();
        let profile = hop_profile(&cfg, &dist, 15, 11, 0.5 * analytic);
        assert!(!profile.is_empty());
        // Monotone non-decreasing, bounded by 1.
        for w in profile.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!(*profile.last().unwrap() <= 1.0);
        // Saturates near the analytic reliability.
        assert!(
            (profile.last().unwrap() - analytic).abs() < 0.03,
            "endpoint {} vs {analytic}",
            profile.last().unwrap()
        );
        // Hop 0 is just the source.
        assert!(profile[0] < 0.01);
    }

    #[test]
    fn conditional_reliability_filters_duds() {
        let cfg = ExecutionConfig::new(600, 0.9);
        let dist = PoissonFanout::new(4.0);
        let analytic = poisson_case::reliability(4.0, 0.9).unwrap();
        let all = reliability(&cfg, &dist, 40, 13);
        let cond = reliability_conditional(&cfg, &dist, 40, 13, 0.5 * analytic);
        assert!(cond.count() <= all.count());
        assert!(cond.mean() >= all.mean() - 1e-12);
        assert!(
            (cond.mean() - analytic).abs() < 0.02,
            "cond {}",
            cond.mean()
        );
    }

    #[test]
    fn member_receipt_distribution_shape() {
        let cfg = ExecutionConfig::new(400, 0.9);
        let dist = PoissonFanout::new(5.0);
        let hist = member_receipt_distribution(&cfg, &dist, 8, 25, 17);
        assert_eq!(hist.total(), 25);
        assert_eq!(hist.buckets(), 9);
        // High reliability: mode near the top bucket.
        assert!(hist.mode() >= 6, "mode {}", hist.mode());
    }

    #[test]
    fn success_within_t_increases_with_t() {
        let cfg = ExecutionConfig::new(500, 0.9);
        let dist = PoissonFanout::new(3.0);
        let p1 = success_within_t(&cfg, &dist, 1, 60, 5);
        let p3 = success_within_t(&cfg, &dist, 3, 60, 5);
        assert!(p3 >= p1, "p3 = {p3} < p1 = {p1}");
        assert!(p3 > 0.9, "three executions should near-guarantee receipt");
    }
}
