//! One *execution* of a gossip protocol (paper §4.2).
//!
//! An execution: crash each non-source member with probability `1 − q`,
//! give the source the message, run the protocol to quiescence, then
//! measure. Reliability is `n_rece / n_nonfailed` — the number of
//! nonfailed members that received the message over the number of
//! nonfailed members; success means every nonfailed member received it.

use std::sync::Arc;

use gossip_faults::{zone_members, BlockedLinks, ChurnPlan, FaultSpec, GilbertElliott};
use gossip_model::distribution::FanoutDistribution;
use gossip_model::ModelError;
use gossip_netsim::membership::{DynamicView, FullView, Membership, OverlayView, ScampViews};
use gossip_netsim::{
    FailurePlan, LinkFaults, NetworkConfig, NodeBehavior, NodeId, SimTime, Simulator,
};
use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};
use gossip_topology::{OverlaySpec, TopologySpec};
use serde::{Deserialize, Serialize};

use crate::message::{GossipMessage, MessageId};
use crate::push::PushGossip;
use crate::GossipProtocol;

/// Which membership service the nodes gossip over.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MembershipKind {
    /// Everyone knows everyone — the paper's analytical assumption.
    Full,
    /// SCAMP-style partial views with redundancy parameter `c`.
    Scamp {
        /// SCAMP redundancy parameter (expected view ≈ (c+1)·ln n).
        c: usize,
    },
    /// Views pinned to a structured overlay's neighbour lists, with the
    /// overlay's peer-selection policy (rebuilt per execution from the
    /// membership seed, so overlays resample across replications).
    Overlay {
        /// The overlay and peer-selection description.
        spec: TopologySpec,
    },
}

/// Configuration of one execution.
#[derive(Clone, Debug)]
pub struct ExecutionConfig {
    /// Group size `n`.
    pub n: usize,
    /// Nonfailed member ratio `q`.
    pub q: f64,
    /// Source member (never fails).
    pub source: NodeId,
    /// Network latency/loss.
    pub network: NetworkConfig,
    /// Membership service.
    pub membership: MembershipKind,
    /// Fault families beyond the paper's model (default: none).
    pub faults: FaultSpec,
}

impl ExecutionConfig {
    /// The paper's setting: full membership, lossless 1 ms network,
    /// source member 0.
    pub fn new(n: usize, q: f64) -> Self {
        assert!(n >= 2, "group needs at least 2 members");
        assert!(
            n <= u32::MAX as usize,
            "node ids are u32 (n <= 2^32 - 1, got {n})"
        );
        assert!(q > 0.0 && q <= 1.0, "q must be in (0, 1], got {q}");
        Self {
            n,
            q,
            source: 0,
            network: NetworkConfig::default(),
            membership: MembershipKind::Full,
            faults: FaultSpec::default(),
        }
    }

    /// Replaces the membership service.
    pub fn with_membership(mut self, membership: MembershipKind) -> Self {
        self.membership = membership;
        self
    }

    /// Replaces the fault specification.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the network configuration.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    fn build_membership(&self, seed: u64) -> Box<dyn Membership> {
        match self.membership {
            MembershipKind::Full => Box::new(FullView::new(self.n)),
            MembershipKind::Scamp { c } => Box::new(ScampViews::build(self.n, c, seed)),
            MembershipKind::Overlay { spec } => Box::new(OverlayView::build(self.n, &spec, seed)),
        }
    }
}

/// Measured results of one execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecutionOutcome {
    /// Nonfailed members (denominator of reliability).
    pub nonfailed: usize,
    /// Nonfailed members that received the message (`n_rece`).
    pub nonfailed_reached: usize,
    /// Messages sent by behaviours during the execution.
    pub messages_sent: u64,
    /// Duplicate receipts across all nodes.
    pub duplicates: u64,
    /// Largest hop count at first receipt.
    pub max_hop: u32,
    /// Time of the last event (dissemination finished).
    pub quiescence: SimTime,
    /// Whether the *observer member* — a uniformly chosen nonfailed,
    /// non-source member, fixed per execution — received the message.
    /// This is the Bernoulli variable behind the paper's §4.2 success
    /// calculus: across `t` executions, the observer's receipt count is
    /// `X ~ B(t, R)` (Figs. 6/7).
    pub observer_reached: bool,
    /// First-receipt counts of nonfailed members by hop distance from
    /// the source: `hop_histogram[h]` members first received the message
    /// after `h` relays. Drives the dissemination-dynamics comparison
    /// against the pbcast/SI baseline models (E12).
    pub hop_histogram: Vec<u64>,
}

impl ExecutionOutcome {
    /// Reliability `n_rece / n_nonfailed` (paper §4.2).
    pub fn reliability(&self) -> f64 {
        if self.nonfailed == 0 {
            0.0
        } else {
            self.nonfailed_reached as f64 / self.nonfailed as f64
        }
    }

    /// Success of gossiping: all nonfailed members reached.
    pub fn is_success(&self) -> bool {
        self.nonfailed_reached == self.nonfailed
    }

    /// Messages per nonfailed member — the protocol's unit cost.
    pub fn messages_per_member(&self) -> f64 {
        if self.nonfailed == 0 {
            0.0
        } else {
            self.messages_sent as f64 / self.nonfailed as f64
        }
    }
}

/// Runs one execution of an arbitrary protocol built by `make(node_id)`.
///
/// The run is a pure function of `(cfg, make, seed)`: the crash pattern,
/// membership (if SCAMP), network and protocol randomness all derive
/// from `seed`. Configurations that bypass `Scenario::validate` and
/// combine incompatible faults and memberships get a typed error, not a
/// panic.
pub fn run_execution<P, F>(
    cfg: &ExecutionConfig,
    make: F,
    seed: u64,
) -> Result<ExecutionOutcome, ModelError>
where
    P: GossipProtocol + NodeBehavior<GossipMessage>,
    F: FnMut(NodeId) -> P,
{
    run_execution_with(cfg, make, seed, |sim, source| {
        sim.inject(
            source,
            source,
            GossipMessage::new(MessageId(seed), &b"payload"[..]),
        );
    })
}

/// As [`run_execution`], but with a custom injection step (used by
/// protocols whose message type wraps [`GossipMessage`], e.g. push-pull,
/// via their own engines; exposed for extensibility).
pub fn run_execution_with<P, M, F, I>(
    cfg: &ExecutionConfig,
    make: F,
    seed: u64,
    inject: I,
) -> Result<ExecutionOutcome, ModelError>
where
    P: GossipProtocol + NodeBehavior<M>,
    F: FnMut(NodeId) -> P,
    I: FnOnce(&mut Simulator<M, P>, NodeId),
{
    let plan = FailurePlan::paper_model(cfg.q, cfg.source);
    run_execution_with_plan(cfg, make, seed, &plan, inject)
}

/// As [`run_execution_with`], but with an explicit [`FailurePlan`]
/// instead of the paper's i.i.d. crash-at-start model — the entry point
/// for scenarios with scheduled mid-run crashes (`cfg.q` is ignored).
pub fn run_execution_with_plan<P, M, F, I>(
    cfg: &ExecutionConfig,
    mut make: F,
    seed: u64,
    plan: &FailurePlan,
    inject: I,
) -> Result<ExecutionOutcome, ModelError>
where
    P: GossipProtocol + NodeBehavior<M>,
    F: FnMut(NodeId) -> P,
    I: FnOnce(&mut Simulator<M, P>, NodeId),
{
    let membership_seed = SplitMix64::derive(seed, 0x5CA0);
    let sim_seed = SplitMix64::derive(seed, 0x51E0);

    // Churn sizes the simulator for the *final* population: joiners get
    // real node slots (ids n..n+K) that stay dormant until their join
    // event fires. Everything derives from `seed` — the realized plan is
    // part of the execution's identity.
    let churn_plan = match cfg.faults.churn.as_ref() {
        Some(churn) => {
            if !matches!(cfg.membership, MembershipKind::Full) {
                return Err(ModelError::Unsupported {
                    backend: "protocol-engine",
                    what: "membership churn without full-view membership \
                           (partial views cannot bootstrap joiners)",
                });
            }
            Some(ChurnPlan::sample(
                churn,
                cfg.n,
                cfg.source,
                SplitMix64::derive(seed, 0xC4A2),
            ))
        }
        None => None,
    };
    let total = cfg.n + churn_plan.as_ref().map_or(0, |p| p.joins.len());

    let behaviors: Vec<P> = (0..total as NodeId).map(&mut make).collect();
    let membership: Box<dyn Membership> = if churn_plan.is_some() {
        Box::new(DynamicView::new(total, cfg.n))
    } else {
        cfg.build_membership(membership_seed)
    };
    let mut sim = Simulator::new(behaviors, cfg.network, membership, sim_seed);
    sim.apply_failure_plan(plan);
    if let Some(churn) = &churn_plan {
        // Dormant until their join event; a joiner the failure plan
        // already crashed is simply resurrected by its join (the q draw
        // applies to the initial group, not to arrivals).
        for &(at_ns, node) in &churn.joins {
            sim.make_dormant(node);
            sim.schedule_join(SimTime::from_nanos(at_ns), node);
        }
        for &(at_ns, node) in &churn.leaves {
            sim.schedule_crash(SimTime::from_nanos(at_ns), node);
        }
    }
    if let Some(zone_failure) = &cfg.faults.zone_failure {
        let zones = match &cfg.membership {
            MembershipKind::Overlay {
                spec:
                    TopologySpec {
                        overlay: OverlaySpec::Clustered { zones, .. },
                        ..
                    },
            } => *zones,
            _ => {
                return Err(ModelError::InvalidParameter {
                    name: "zone_failure",
                    value: zone_failure.zones.len() as f64,
                    requirement: "correlated zone failures need a Clustered overlay membership",
                })
            }
        };
        // Scheduled before the injection: an `at_ms = 0` kill fires
        // before the source's message lands (events order by time, then
        // insertion sequence).
        let at_ns =
            zone_failure
                .at_ms
                .checked_mul(1_000_000)
                .ok_or(ModelError::InvalidParameter {
                    name: "at_ms",
                    value: zone_failure.at_ms as f64,
                    requirement: "zone-failure time must fit the nanosecond clock \
                              (at_ms <= u64::MAX / 1e6)",
                })?;
        let at = SimTime::from_nanos(at_ns);
        for &zone in &zone_failure.zones {
            for member in zone_members(cfg.n, zones, zone) {
                if member as NodeId != cfg.source {
                    sim.schedule_crash(at, member as NodeId);
                }
            }
        }
    }
    if cfg.faults.bursty_loss.is_some() || cfg.faults.adversary.is_some() {
        let blocked = cfg.faults.adversary.as_ref().map(|adversary| {
            BlockedLinks::build(
                total,
                cfg.source,
                adversary,
                SplitMix64::derive(seed, 0xAD7E),
            )
        });
        let ge = cfg.faults.bursty_loss.as_ref().map(GilbertElliott::new);
        let mut chain_rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, 0x6E11));
        sim.set_link_faults(LinkFaults::new(total, blocked, ge, &mut chain_rng));
    }
    sim.start_all();
    inject(&mut sim, cfg.source);
    sim.run_to_quiescence();

    let mut nonfailed = 0usize;
    let mut nonfailed_reached = 0usize;
    let mut duplicates = 0u64;
    let mut max_hop = 0u32;
    let mut hop_histogram: Vec<u64> = Vec::new();
    for (_, behavior, crashed) in sim.nodes() {
        duplicates += behavior.duplicates() as u64;
        if let Some(h) = behavior.receipt_hop() {
            max_hop = max_hop.max(h);
        }
        if !crashed {
            nonfailed += 1;
            if behavior.has_received() {
                nonfailed_reached += 1;
                let h = behavior.receipt_hop().expect("received implies hop") as usize;
                if hop_histogram.len() <= h {
                    hop_histogram.resize(h + 1, 0);
                }
                hop_histogram[h] += 1;
            }
        }
    }

    // Observer member: uniform among nonfailed non-source members,
    // chosen by rejection with a seed-derived RNG (deterministic).
    let mut observer_rng =
        gossip_stats::rng::Xoshiro256StarStar::new(SplitMix64::derive(seed, 0x0B5E));
    let observer_reached = loop {
        let candidate = observer_rng.next_below(cfg.n as u64) as NodeId;
        if candidate != cfg.source && !sim.is_crashed(candidate) {
            break sim.node(candidate).has_received();
        }
        // With q > 0 a nonfailed candidate exists (the loop terminates
        // with probability 1); n = 2 with the only other node crashed is
        // the lone degenerate case — fall back to the source then.
        if sim.live_count() <= 1 {
            break sim.node(cfg.source).has_received();
        }
    };

    Ok(ExecutionOutcome {
        nonfailed,
        nonfailed_reached,
        messages_sent: sim.metrics().messages_sent,
        duplicates,
        max_hop,
        quiescence: sim.metrics().last_event_time,
        observer_reached,
        hop_histogram,
    })
}

/// Runs one execution of the paper's push protocol with fanout
/// distribution `dist`.
pub fn run_push<D>(
    cfg: &ExecutionConfig,
    dist: &D,
    seed: u64,
) -> Result<ExecutionOutcome, ModelError>
where
    D: FanoutDistribution + Clone + 'static,
{
    let shared: Arc<dyn FanoutDistribution> = Arc::new(dist.clone());
    run_execution(cfg, |_| PushGossip::new(shared.clone()), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::distribution::{FixedFanout, PoissonFanout};

    #[test]
    fn no_failure_high_fanout_succeeds() {
        let cfg = ExecutionConfig::new(200, 1.0);
        let out = run_push(&cfg, &FixedFanout::new(6), 1).unwrap();
        assert_eq!(out.nonfailed, 200);
        assert!(out.reliability() > 0.99, "r = {}", out.reliability());
        assert!(out.is_success());
        assert!(out.max_hop > 0);
        assert!(out.messages_per_member() > 5.0);
    }

    #[test]
    fn subcritical_execution_dies_out() {
        // Po(4) at q = 0.15 < q_c = 0.25: reach stays local.
        let cfg = ExecutionConfig::new(2000, 0.15);
        let out = run_push(&cfg, &PoissonFanout::new(4.0), 2).unwrap();
        assert!(
            out.reliability() < 0.1,
            "subcritical reliability {}",
            out.reliability()
        );
        assert!(!out.is_success());
    }

    #[test]
    fn reliability_counts_only_nonfailed() {
        let cfg = ExecutionConfig::new(1000, 0.5);
        let out = run_push(&cfg, &PoissonFanout::new(6.0), 3).unwrap();
        assert!(out.nonfailed < 600, "q=0.5 should fail ~half");
        assert!(out.nonfailed_reached <= out.nonfailed);
        assert!((0.0..=1.0).contains(&out.reliability()));
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = ExecutionConfig::new(500, 0.8);
        let a = run_push(&cfg, &PoissonFanout::new(4.0), 42).unwrap();
        let b = run_push(&cfg, &PoissonFanout::new(4.0), 42).unwrap();
        assert_eq!(a, b);
        let c = run_push(&cfg, &PoissonFanout::new(4.0), 43).unwrap();
        assert_ne!(a, c, "different seeds should differ (a.s.)");
    }

    #[test]
    fn scamp_membership_runs() {
        let cfg = ExecutionConfig::new(400, 0.9).with_membership(MembershipKind::Scamp { c: 2 });
        let out = run_push(&cfg, &PoissonFanout::new(5.0), 4).unwrap();
        assert!(
            out.reliability() > 0.5,
            "gossip over SCAMP views reached {}",
            out.reliability()
        );
    }

    #[test]
    fn overlay_membership_runs() {
        use gossip_topology::{OverlaySpec, TopologySpec};
        // A well-connected small world: gossip over neighbour lists
        // still spreads widely at q = 0.9.
        let spec = TopologySpec::new(OverlaySpec::WattsStrogatz { k: 10, beta: 0.3 });
        let cfg = ExecutionConfig::new(400, 0.9).with_membership(MembershipKind::Overlay { spec });
        let out = run_push(&cfg, &PoissonFanout::new(5.0), 4).unwrap();
        assert!(
            out.reliability() > 0.5,
            "gossip over overlay views reached {}",
            out.reliability()
        );
        // Deterministic in the seed, like every other membership.
        let again = run_push(&cfg, &PoissonFanout::new(5.0), 4).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    #[should_panic(expected = "q must be in (0, 1]")]
    fn rejects_bad_q() {
        ExecutionConfig::new(10, 0.0);
    }

    #[test]
    fn zone_failure_without_clustered_membership_is_a_typed_error() {
        // Reachable by constructing the config directly, bypassing
        // `Scenario::validate` — must refuse, not unwind.
        let cfg = ExecutionConfig::new(100, 1.0)
            .with_faults(FaultSpec::none().with_zone_failure(vec![0], 0));
        let err = run_push(&cfg, &PoissonFanout::new(4.0), 1).unwrap_err();
        match err {
            ModelError::InvalidParameter { name, .. } => assert_eq!(name, "zone_failure"),
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn churn_without_full_membership_is_a_typed_error() {
        use gossip_faults::ChurnSpec;
        let cfg = ExecutionConfig::new(100, 1.0)
            .with_membership(MembershipKind::Scamp { c: 2 })
            .with_faults(FaultSpec::none().with_churn(ChurnSpec::symmetric(10.0, 100)));
        let err = run_push(&cfg, &PoissonFanout::new(4.0), 1).unwrap_err();
        assert!(matches!(err, ModelError::Unsupported { .. }), "{err:?}");
    }

    #[test]
    fn absurd_zone_failure_time_is_a_typed_error() {
        use gossip_topology::{OverlaySpec, TopologySpec};
        // at_ms * 1e6 would wrap u64; the engine must refuse instead.
        let spec = TopologySpec::new(OverlaySpec::Clustered {
            zones: 5,
            intra: 6,
            inter: 2,
        });
        let cfg = ExecutionConfig::new(100, 1.0)
            .with_membership(MembershipKind::Overlay { spec })
            .with_faults(FaultSpec::none().with_zone_failure(vec![1], u64::MAX / 1_000));
        let err = run_push(&cfg, &PoissonFanout::new(4.0), 1).unwrap_err();
        match err {
            ModelError::InvalidParameter { name, .. } => assert_eq!(name, "at_ms"),
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn churn_accounting_matches_the_sampled_plan() {
        use gossip_faults::ChurnSpec;
        let spec = ChurnSpec::symmetric(40.0, 200);
        let cfg = ExecutionConfig::new(300, 1.0).with_faults(FaultSpec::none().with_churn(spec));
        let seed = 77;
        let out = run_push(&cfg, &PoissonFanout::new(6.0), seed).unwrap();
        // With q = 1 the only crashes are churn leaves, so the
        // denominator is exactly the plan's final population.
        let plan = ChurnPlan::sample(&spec, 300, 0, SplitMix64::derive(seed, 0xC4A2));
        assert!(
            !plan.joins.is_empty() && !plan.leaves.is_empty(),
            "plan too quiet"
        );
        assert_eq!(out.nonfailed, plan.final_population(300));
        // Determinism holds through the churn machinery.
        assert_eq!(out, run_push(&cfg, &PoissonFanout::new(6.0), seed).unwrap());
    }

    #[test]
    fn zone_kill_at_start_excludes_the_zone() {
        use gossip_topology::{OverlaySpec, TopologySpec};
        let spec = TopologySpec::new(OverlaySpec::Clustered {
            zones: 5,
            intra: 6,
            inter: 2,
        });
        let cfg = ExecutionConfig::new(200, 1.0)
            .with_membership(MembershipKind::Overlay { spec })
            .with_faults(FaultSpec::none().with_zone_failure(vec![0, 2], 0));
        let out = run_push(&cfg, &PoissonFanout::new(6.0), 5).unwrap();
        // Zones 0 and 2 hold 40 members each; the source (id 0, zone 0)
        // is immune, so 79 members die before the injection lands.
        assert_eq!(out.nonfailed, 200 - 79);
        assert!(out.nonfailed_reached <= out.nonfailed);
    }

    #[test]
    fn worst_case_adversary_silences_the_source() {
        use gossip_faults::AdversaryStrategy;
        let cfg = ExecutionConfig::new(100, 1.0)
            .with_faults(FaultSpec::none().with_adversary(99, AdversaryStrategy::WorstCase));
        let out = run_push(&cfg, &PoissonFanout::new(8.0), 6).unwrap();
        // All 99 source uplinks are blocked: only the source delivers.
        assert_eq!(out.nonfailed_reached, 1);
        assert!((out.reliability() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn bursty_loss_thins_dissemination() {
        use gossip_faults::BurstySpec;
        let cfg = ExecutionConfig::new(500, 1.0);
        let clean = run_push(&cfg, &PoissonFanout::new(4.0), 8).unwrap();
        let bursty_cfg = cfg
            .clone()
            .with_faults(FaultSpec::none().with_bursty_loss(BurstySpec {
                p_gb: 0.05,
                p_bg: 0.15,
                loss_good: 0.0,
                loss_bad: 0.9,
            }));
        let bursty = run_push(&bursty_cfg, &PoissonFanout::new(4.0), 8).unwrap();
        assert!(
            bursty.nonfailed_reached < clean.nonfailed_reached,
            "bursty {} vs clean {}",
            bursty.nonfailed_reached,
            clean.nonfailed_reached
        );
    }
}
