//! The protocol-engine and netsim evaluation layers of the unified
//! `Scenario` → `Backend` → `Report` API.
//!
//! Two backends share one Monte-Carlo runner:
//!
//! * [`ProtocolBackend`] — the paper's §5 experiment, exactly: the
//!   protocol runs on an *idealized* network (lossless, constant
//!   latency). Scenarios that ask for loss, non-default latency, or
//!   crash schedules are rejected as [`ModelError::Unsupported`] — use
//!   the netsim backend for those.
//! * [`NetSimBackend`] — the full discrete-event network simulation:
//!   latency models, independent per-message loss, and scheduled
//!   mid-run crash injection, plus timing metrics (`quiescence_secs`).
//!
//! Both condition reliability on *take-off* (executions that escape the
//! source's neighbourhood), the estimator of the giant-component size
//! that the analytic curves plot — see
//! `gossip_protocol::experiment::reliability_conditional` for why.

use std::sync::Arc;

use gossip_engine::{FanoutSampler, RelayScratch, RelaySetup, FLAT_STREAM, FLAT_TOPOLOGY_STREAM};
use gossip_faults::GilbertElliott;
use gossip_model::distribution::FanoutDistribution;
use gossip_model::loss::LossyGossip;
use gossip_model::percolation::SitePercolation;
use gossip_model::scenario::{
    Backend, EngineSpec, FailureSpec, LatencySpec, MembershipSpec, ProtocolSpec, Report, Scenario,
};
use gossip_model::{success, ModelError};
use gossip_netsim::{FailurePlan, LatencyModel, NetworkConfig, SimDuration};
use gossip_stats::descriptive::OnlineStats;
use gossip_stats::parallel::parallel_map;
use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};

use crate::engine::{run_execution_with_plan, ExecutionConfig, ExecutionOutcome, MembershipKind};
use crate::flood::Flooding;
use crate::message::{GossipMessage, MessageId};
use crate::push::PushGossip;
use crate::pushpull::{PullMessage, PushPullGossip};

/// Pull budget and period used when a scenario selects
/// [`ProtocolSpec::PushPull`]: one pull per 5 ms, up to 10 pulls — the
/// defaults the protocol's own tests exercise.
const PULL_BUDGET: u32 = 10;
const PULL_PERIOD_MS: u64 = 5;

fn latency_model(spec: LatencySpec) -> LatencyModel {
    match spec {
        LatencySpec::ConstantMillis { ms } => LatencyModel::constant_millis(ms),
        LatencySpec::UniformMillis { lo_ms, hi_ms } => LatencyModel::Uniform {
            lo: SimDuration::from_millis(lo_ms),
            hi: SimDuration::from_millis(hi_ms),
        },
        LatencySpec::ExponentialMillis { mean_ms } => LatencyModel::Exponential {
            mean: SimDuration::from_millis(mean_ms),
        },
    }
}

/// Resolves the scenario's membership + topology pair into the engine's
/// [`MembershipKind`]. A structured overlay *is* a membership constraint
/// (views are neighbour lists), so combining it with SCAMP partial views
/// is contradictory and rejected.
fn membership_kind(
    backend: &'static str,
    scenario: &Scenario,
) -> Result<MembershipKind, ModelError> {
    if scenario.topology.is_default() {
        return Ok(match scenario.membership {
            MembershipSpec::Full => MembershipKind::Full,
            MembershipSpec::Scamp { c } => MembershipKind::Scamp { c },
        });
    }
    if scenario.membership != MembershipSpec::Full {
        return Err(ModelError::Unsupported {
            backend,
            what: "structured overlays combined with partial-view membership (views are already the overlay's neighbour lists)",
        });
    }
    Ok(MembershipKind::Overlay {
        spec: scenario.topology,
    })
}

/// Churn bootstraps joiners into the *full* membership view; partial
/// views and pinned overlay neighbour lists have no bootstrap path, so
/// the combination is a typed refusal rather than a silent wrong answer.
fn check_churn_support(backend: &'static str, scenario: &Scenario) -> Result<(), ModelError> {
    if scenario.faults.churn.is_some()
        && (scenario.membership != MembershipSpec::Full || !scenario.topology.is_default())
    {
        return Err(ModelError::Unsupported {
            backend,
            what: "membership churn combined with partial views or structured overlays (joiners can only bootstrap into the full view)",
        });
    }
    Ok(())
}

fn failure_plan(scenario: &Scenario, source: u32) -> FailurePlan {
    match &scenario.failure {
        FailureSpec::None => FailurePlan::None,
        FailureSpec::Random { q } => FailurePlan::paper_model(*q, source),
        FailureSpec::Schedule { crashes } => FailurePlan::CrashAtTimes(
            crashes
                .iter()
                .map(|&(ns, node)| (gossip_netsim::SimTime::from_nanos(ns), node))
                .collect(),
        ),
    }
}

/// Runs one execution of the scenario's protocol variant.
fn run_variant(
    cfg: &ExecutionConfig,
    protocol: ProtocolSpec,
    dist: &Arc<dyn FanoutDistribution>,
    plan: &FailurePlan,
    seed: u64,
) -> Result<ExecutionOutcome, ModelError> {
    fn inject_push<P: gossip_netsim::NodeBehavior<GossipMessage>>(
        seed: u64,
    ) -> impl FnOnce(&mut gossip_netsim::Simulator<GossipMessage, P>, u32) {
        move |sim, source| {
            sim.inject(
                source,
                source,
                GossipMessage::new(MessageId(seed), &b"payload"[..]),
            );
        }
    }
    match protocol {
        ProtocolSpec::Push => {
            let shared = dist.clone();
            run_execution_with_plan(
                cfg,
                |_| PushGossip::new(shared.clone()),
                seed,
                plan,
                inject_push(seed),
            )
        }
        ProtocolSpec::Flood => {
            run_execution_with_plan(cfg, |_| Flooding::new(), seed, plan, inject_push(seed))
        }
        ProtocolSpec::PushPull => {
            // The push phase of push-pull uses the *mean* fanout (the
            // behaviour takes a constant); pulls close the tail.
            let push_fanout = dist.mean().round().max(0.0) as usize;
            run_execution_with_plan(
                cfg,
                |_| {
                    PushPullGossip::new(
                        push_fanout,
                        PULL_BUDGET,
                        SimDuration::from_millis(PULL_PERIOD_MS),
                    )
                },
                seed,
                plan,
                |sim, source| {
                    sim.inject(
                        source,
                        source,
                        PullMessage::Data(GossipMessage::new(MessageId(seed), &b"payload"[..])),
                    );
                },
            )
        }
    }
}

/// The analytic reliability prediction used only to split executions
/// into take-off vs fizzle (threshold = half the prediction, the
/// convention of the figure harness). Falls back to 0.5 when the model
/// cannot price the scenario (e.g. crash schedules).
pub(crate) fn takeoff_threshold(scenario: &Scenario, dist: &dyn FanoutDistribution) -> f64 {
    let q = scenario.q().unwrap_or(1.0);
    // Bursty loss folds in at its stationary mean: the prediction is an
    // upper bound (burstiness only hurts more), which is all a take-off
    // split needs.
    let mut loss = scenario.loss;
    if let Some(bursty) = &scenario.faults.bursty_loss {
        let mean = GilbertElliott::new(bursty).mean_loss();
        loss = 1.0 - (1.0 - loss) * (1.0 - mean);
    }
    let prediction = match scenario.protocol {
        ProtocolSpec::Push => LossyGossip::new(dist, q, loss)
            .and_then(|m| m.reliability())
            .unwrap_or(1.0),
        // Flood / push-pull complete whenever anything spreads.
        ProtocolSpec::Flood | ProtocolSpec::PushPull => 1.0,
    };
    if prediction < 0.05 {
        // Subcritical: a single mode only; count everything as take-off.
        0.0
    } else {
        0.5 * prediction
    }
}

/// Shared Monte-Carlo evaluation: `replications` independent executions
/// with seeds derived from `(scenario.seed, rep)`, reduced to a
/// [`Report`].
fn evaluate_monte_carlo(
    backend_name: &'static str,
    scenario: &Scenario,
    cfg: &ExecutionConfig,
    timed: bool,
) -> Result<Report, ModelError> {
    let dist: Arc<dyn FanoutDistribution> = Arc::from(scenario.fanout.build()?);
    let plan = failure_plan(scenario, cfg.source);
    let outcomes: Vec<ExecutionOutcome> = parallel_map(scenario.replications, |rep| {
        let seed = SplitMix64::derive(scenario.seed, rep as u64);
        run_variant(cfg, scenario.protocol, &dist, &plan, seed)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    let threshold = takeoff_threshold(scenario, &*dist);
    let mut conditional = OnlineStats::new();
    let mut raw = OnlineStats::new();
    let mut rounds = OnlineStats::new();
    let mut quiescence = OnlineStats::new();
    let mut messages = OnlineStats::new();
    let mut takeoffs = 0usize;
    for outcome in &outcomes {
        messages.push(outcome.messages_per_member());
        let r = outcome.reliability();
        raw.push(r);
        if r > threshold {
            takeoffs += 1;
            conditional.push(r);
            rounds.push(outcome.max_hop as f64);
            quiescence.push(outcome.quiescence.as_secs_f64());
        }
    }
    let reliability = if conditional.count() == 0 {
        0.0
    } else {
        conditional.mean()
    };
    let ci = conditional.ci95();
    let critical_q = SitePercolation::new(&*dist, 1.0)?.critical_q();
    Ok(Report {
        backend: backend_name.to_string(),
        scenario: scenario.label(),
        replications: outcomes.len(),
        reliability,
        reliability_std_error: conditional.sem(),
        reliability_ci95: (ci.lo, ci.hi),
        reliability_raw: Some(raw.mean()),
        critical_q,
        takeoff_rate: Some(takeoffs as f64 / outcomes.len() as f64),
        rounds: if takeoffs == 0 {
            None
        } else {
            Some(rounds.mean())
        },
        messages_per_member: Some(messages.mean()),
        quiescence_secs: if timed && takeoffs > 0 {
            Some(quiescence.mean())
        } else {
            None
        },
        transport: None,
        topology: scenario.topology_label(),
        faults: scenario.faults_label(),
        messages_lost: None,
        success_within_t: success::success_probability(reliability, scenario.executions),
        traffic: None,
    })
}

/// Why the flat engine cannot run this scenario, if it can't. The flat
/// relay kernel reproduces exactly the §5 push experiment — untimed,
/// lossless fanout relay over the full view or a pinned overlay;
/// everything else keeps the event-driven engine.
fn flat_unsupported(scenario: &Scenario, membership: &MembershipKind) -> Option<&'static str> {
    if scenario.protocol != ProtocolSpec::Push {
        return Some("the flat engine for flood/push-pull variants (only the §5 push relay has a flat kernel)");
    }
    if !scenario.faults.is_default() {
        return Some("the flat engine under fault injection (churn, zone failures, bursty loss, and adversaries stay on the event-driven engine)");
    }
    if matches!(membership, MembershipKind::Scamp { .. }) {
        return Some(
            "the flat engine with SCAMP partial views (view construction is a protocol of its own)",
        );
    }
    None
}

/// The flat §5 push experiment: the `gossip-engine` bitset-frontier
/// relay kernel instead of the discrete-event simulator. Same estimator
/// as [`evaluate_monte_carlo`] — take-off-conditioned reliability,
/// rounds = relay depth — but no clock, so `quiescence_secs` stays
/// `None` exactly like the classic untimed run.
fn evaluate_flat_push(
    scenario: &Scenario,
    q: f64,
    membership: &MembershipKind,
) -> Result<Report, ModelError> {
    let boxed = scenario.fanout.build()?;
    let dist: &dyn FanoutDistribution = &*boxed;
    let n = scenario.n;
    // Overlay CSR built once per evaluation and shared read-only across
    // replications (quenched approximation — see `gossip_engine::relay`).
    let overlay = match membership {
        MembershipKind::Overlay { spec } => {
            Some(spec.build(n, SplitMix64::derive(scenario.seed, FLAT_TOPOLOGY_STREAM)))
        }
        _ => None,
    };
    let selection = scenario.topology.selection;
    let sampler = FanoutSampler::new(dist);
    let reps = scenario.replications;
    let (chunks, bounds) = gossip_engine::chunk_bounds(reps);
    let per_chunk: Vec<Vec<(f64, f64, u32)>> = parallel_map(chunks, |chunk| {
        let mut scratch = RelayScratch::new(n);
        bounds(chunk)
            .map(|rep| {
                let seed = SplitMix64::derive(scenario.seed, rep as u64);
                let setup = RelaySetup {
                    n,
                    source: 0,
                    q,
                    loss: 0.0,
                    dist,
                    sampler: &sampler,
                    overlay: overlay.as_ref().map(|topo| (topo, selection)),
                    blocked: None,
                    prefailed: &[],
                };
                let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, FLAT_STREAM));
                let out = setup.run(&mut scratch, &mut rng);
                let messages = out.messages_sent as f64 / out.nonfailed.max(1) as f64;
                (out.reliability(), messages, out.max_hop)
            })
            .collect()
    });

    let threshold = takeoff_threshold(scenario, dist);
    let mut conditional = OnlineStats::new();
    let mut raw = OnlineStats::new();
    let mut rounds = OnlineStats::new();
    let mut messages = OnlineStats::new();
    let mut takeoffs = 0usize;
    for &(r, m, max_hop) in per_chunk.iter().flatten() {
        messages.push(m);
        raw.push(r);
        if r > threshold {
            takeoffs += 1;
            conditional.push(r);
            rounds.push(max_hop as f64);
        }
    }
    let reliability = if conditional.count() == 0 {
        0.0
    } else {
        conditional.mean()
    };
    let ci = conditional.ci95();
    let critical_q = SitePercolation::new(dist, 1.0)?.critical_q();
    Ok(Report {
        backend: "protocol".to_string(),
        scenario: scenario.label(),
        replications: reps,
        reliability,
        reliability_std_error: conditional.sem(),
        reliability_ci95: (ci.lo, ci.hi),
        reliability_raw: Some(raw.mean()),
        critical_q,
        takeoff_rate: Some(takeoffs as f64 / reps as f64),
        rounds: if takeoffs == 0 {
            None
        } else {
            Some(rounds.mean())
        },
        messages_per_member: Some(messages.mean()),
        quiescence_secs: None,
        transport: None,
        topology: scenario.topology_label(),
        faults: scenario.faults_label(),
        messages_lost: None,
        success_within_t: success::success_probability(reliability, scenario.executions),
        traffic: None,
    })
}

/// The paper's §5 Monte-Carlo experiment: the executable protocol on an
/// idealized (lossless, constant-latency) network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolBackend;

impl Backend for ProtocolBackend {
    fn name(&self) -> &'static str {
        "protocol"
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<Report, ModelError> {
        scenario.validate()?;
        if scenario.loss > 0.0 {
            return Err(ModelError::Unsupported {
                backend: "protocol",
                what: "message loss (the §5 experiment is lossless; use the netsim backend)",
            });
        }
        if scenario.latency != LatencySpec::default() {
            return Err(ModelError::Unsupported {
                backend: "protocol",
                what: "latency models (the §5 experiment is untimed; use the netsim backend)",
            });
        }
        let q = match scenario.q() {
            Some(q) => q,
            None => {
                return Err(ModelError::Unsupported {
                    backend: "protocol",
                    what: "crash schedules (use the netsim backend)",
                })
            }
        };
        if scenario.traffic.is_some() {
            // Streams run on the round-based stream engine: untimed
            // here (the §5 idealization), timed on the netsim backend.
            return crate::traffic_eval::evaluate_stream(self.name(), scenario, None);
        }
        check_churn_support(self.name(), scenario)?;
        let membership = membership_kind(self.name(), scenario)?;
        if scenario.engine.flat_for(scenario.n) {
            match flat_unsupported(scenario, &membership) {
                None => return evaluate_flat_push(scenario, q, &membership),
                Some(what) if scenario.engine == EngineSpec::Flat => {
                    return Err(ModelError::Unsupported {
                        backend: "protocol",
                        what,
                    });
                }
                // `Auto` above the threshold but unsupported: the
                // classic engine quietly keeps the scenario.
                Some(_) => {}
            }
        }
        let cfg = ExecutionConfig::new(scenario.n, q)
            .with_membership(membership)
            .with_faults(scenario.faults.clone());
        evaluate_monte_carlo(self.name(), scenario, &cfg, false)
    }
}

/// The full discrete-event network simulation: latency, loss, and crash
/// injection, with timing metrics in the report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSimBackend;

impl Backend for NetSimBackend {
    fn name(&self) -> &'static str {
        "netsim"
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<Report, ModelError> {
        scenario.validate()?;
        if scenario.engine == EngineSpec::Flat {
            return Err(ModelError::Unsupported {
                backend: "netsim",
                what: "the flat engine (timing metrics need the event-driven simulator; use the graph or protocol backend)",
            });
        }
        if scenario.traffic.is_some() {
            // Streams run on the round-based stream engine with loss
            // applied per frame; the constant hop latency prices
            // rounds into seconds and sustained messages/sec.
            let ms = crate::traffic_eval::stream_hop_millis(scenario)?;
            return crate::traffic_eval::evaluate_stream(self.name(), scenario, Some(ms));
        }
        // q feeds ExecutionConfig validation only; scheduled-crash
        // scenarios run with the explicit plan and q = 1 here.
        let q = scenario.q().unwrap_or(1.0);
        let network = NetworkConfig {
            latency: latency_model(scenario.latency),
            loss_probability: scenario.loss,
        };
        check_churn_support(self.name(), scenario)?;
        let cfg = ExecutionConfig::new(scenario.n, q)
            .with_membership(membership_kind(self.name(), scenario)?)
            .with_network(network)
            .with_faults(scenario.faults.clone());
        evaluate_monte_carlo(self.name(), scenario, &cfg, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::scenario::{AnalyticBackend, FanoutSpec};

    fn headline(reps: usize) -> Scenario {
        Scenario::new(1000, FanoutSpec::poisson(4.0))
            .with_failure_ratio(0.9)
            .with_replications(reps)
    }

    #[test]
    fn protocol_matches_analytic_headline() {
        let scenario = headline(20);
        let analytic = AnalyticBackend.evaluate(&scenario).unwrap();
        let simulated = ProtocolBackend.evaluate(&scenario).unwrap();
        assert_eq!(simulated.replications, 20);
        assert!(
            (simulated.reliability - analytic.reliability).abs() < 0.02,
            "sim {} vs analytic {}",
            simulated.reliability,
            analytic.reliability
        );
        assert!(simulated.takeoff_rate.unwrap() > 0.5);
        assert!(simulated.rounds.unwrap() > 1.0);
        assert!(simulated.messages_per_member.unwrap() > 1.0);
    }

    #[test]
    fn protocol_rejects_netsim_features() {
        assert!(matches!(
            ProtocolBackend.evaluate(&headline(5).with_loss(0.2)),
            Err(ModelError::Unsupported { .. })
        ));
        assert!(matches!(
            ProtocolBackend.evaluate(
                &headline(5).with_latency(LatencySpec::ExponentialMillis { mean_ms: 10 })
            ),
            Err(ModelError::Unsupported { .. })
        ));
        assert!(matches!(
            ProtocolBackend.evaluate(&headline(5).with_failure(FailureSpec::Schedule {
                crashes: vec![(1, 1)]
            })),
            Err(ModelError::Unsupported { .. })
        ));
    }

    #[test]
    fn netsim_honours_loss() {
        // Po(6), q = 0.9, loss 0.25 ≈ Po(4.5) lossless (bond percolation).
        let scenario = Scenario::new(2000, FanoutSpec::poisson(6.0))
            .with_failure_ratio(0.9)
            .with_loss(0.25)
            .with_replications(15);
        let analytic = AnalyticBackend.evaluate(&scenario).unwrap();
        let simulated = NetSimBackend.evaluate(&scenario).unwrap();
        assert!(
            (simulated.reliability - analytic.reliability).abs() < 0.03,
            "lossy sim {} vs analytic {}",
            simulated.reliability,
            analytic.reliability
        );
        assert!(simulated.quiescence_secs.unwrap() > 0.0);
    }

    #[test]
    fn netsim_runs_crash_schedules() {
        // Crash half the group *after* dissemination finished (1 s in):
        // reliability among survivors stays high.
        let crashes: Vec<(u64, u32)> = (0..500).map(|v| (1_000_000_000, v + 1)).collect();
        let scenario = Scenario::new(1000, FanoutSpec::poisson(6.0))
            .with_failure(FailureSpec::Schedule { crashes })
            .with_replications(5);
        let report = NetSimBackend.evaluate(&scenario).unwrap();
        assert!(report.reliability > 0.9, "r = {}", report.reliability);
    }

    #[test]
    fn flood_and_pushpull_variants_complete() {
        let flood = ProtocolBackend
            .evaluate(&headline(5).with_protocol(ProtocolSpec::Flood))
            .unwrap();
        assert!(flood.reliability > 0.999, "flood r = {}", flood.reliability);
        let pushpull = ProtocolBackend
            .evaluate(&headline(5).with_protocol(ProtocolSpec::PushPull))
            .unwrap();
        assert!(
            pushpull.reliability > 0.95,
            "push-pull r = {}",
            pushpull.reliability
        );
    }

    #[test]
    fn deterministic_in_scenario_seed() {
        let a = ProtocolBackend.evaluate(&headline(8)).unwrap();
        let b = ProtocolBackend.evaluate(&headline(8)).unwrap();
        assert_eq!(a.reliability, b.reliability);
        let c = ProtocolBackend
            .evaluate(&headline(8).with_seed(999))
            .unwrap();
        assert_ne!(a.reliability, c.reliability, "seed must matter (a.s.)");
    }

    #[test]
    fn scamp_membership_supported() {
        let scenario = headline(10).with_membership(MembershipSpec::Scamp { c: 2 });
        let report = ProtocolBackend.evaluate(&scenario).unwrap();
        assert!(report.reliability > 0.5, "scamp r = {}", report.reliability);
    }

    #[test]
    fn structured_topology_supported_and_labelled() {
        use gossip_topology::{OverlaySpec, TopologySpec};
        let scenario = headline(10).with_topology(TopologySpec::new(OverlaySpec::WattsStrogatz {
            k: 12,
            beta: 0.5,
        }));
        let report = ProtocolBackend.evaluate(&scenario).unwrap();
        assert!(
            report.reliability > 0.5,
            "dense small world r = {}",
            report.reliability
        );
        assert_eq!(
            report.topology.as_deref(),
            Some("ws(k=12,beta=0.5)/neigh"),
            "report must carry the topology label"
        );
        // Default topologies report None.
        let plain = ProtocolBackend.evaluate(&headline(5)).unwrap();
        assert_eq!(plain.topology, None);
    }

    #[test]
    fn faults_flow_through_to_the_report() {
        use gossip_faults::ChurnSpec;
        use gossip_model::FaultSpec;
        let scenario = Scenario::new(400, FanoutSpec::poisson(6.0))
            .with_replications(6)
            .with_faults(FaultSpec::none().with_churn(ChurnSpec::symmetric(20.0, 100)));
        let report = NetSimBackend.evaluate(&scenario).unwrap();
        assert_eq!(report.faults.as_deref(), Some("churn(j=20,l=20,h=100ms)"));
        assert!(report.reliability > 0.5, "r = {}", report.reliability);
        // Fault-free reports carry no label.
        let plain = ProtocolBackend.evaluate(&headline(5)).unwrap();
        assert_eq!(plain.faults, None);
    }

    #[test]
    fn churn_needs_full_membership() {
        use gossip_faults::ChurnSpec;
        use gossip_model::FaultSpec;
        use gossip_topology::{OverlaySpec, TopologySpec};
        let churned = FaultSpec::none().with_churn(ChurnSpec::symmetric(10.0, 100));
        let scamp = headline(5)
            .with_membership(MembershipSpec::Scamp { c: 2 })
            .with_faults(churned.clone());
        assert!(matches!(
            ProtocolBackend.evaluate(&scamp),
            Err(ModelError::Unsupported { .. })
        ));
        let structured = headline(5)
            .with_topology(TopologySpec::new(OverlaySpec::Ring { shortcuts: 2000 }))
            .with_faults(churned);
        assert!(matches!(
            NetSimBackend.evaluate(&structured),
            Err(ModelError::Unsupported { .. })
        ));
    }

    #[test]
    fn zone_failure_runs_on_clustered_overlays() {
        use gossip_model::FaultSpec;
        use gossip_topology::{OverlaySpec, TopologySpec};
        let spec = TopologySpec::new(OverlaySpec::Clustered {
            zones: 5,
            intra: 8,
            inter: 2,
        });
        let clean = Scenario::new(500, FanoutSpec::poisson(6.0))
            .with_topology(spec)
            .with_replications(6);
        let killed = clean
            .clone()
            .with_faults(FaultSpec::none().with_zone_failure(vec![1, 3], 0));
        let clean_report = NetSimBackend.evaluate(&clean).unwrap();
        let killed_report = NetSimBackend.evaluate(&killed).unwrap();
        // Two of five zones are gone from the start: the survivors still
        // percolate (inter-zone links exist), and the denominator drops.
        assert!(
            killed_report.reliability > 0.3,
            "killed r = {}",
            killed_report.reliability
        );
        assert!(clean_report.reliability > killed_report.reliability - 0.2);
    }

    #[test]
    fn overlay_plus_scamp_is_contradictory() {
        use gossip_topology::{OverlaySpec, TopologySpec};
        let scenario = headline(5)
            .with_membership(MembershipSpec::Scamp { c: 2 })
            .with_topology(TopologySpec::new(OverlaySpec::Ring { shortcuts: 2000 }));
        assert!(matches!(
            ProtocolBackend.evaluate(&scenario),
            Err(ModelError::Unsupported { .. })
        ));
        assert!(matches!(
            NetSimBackend.evaluate(&scenario),
            Err(ModelError::Unsupported { .. })
        ));
    }

    #[test]
    fn flat_engine_agrees_with_the_classic_protocol() {
        let classic = ProtocolBackend
            .evaluate(&headline(20).with_engine(EngineSpec::Classic))
            .unwrap();
        let flat = ProtocolBackend
            .evaluate(&headline(20).with_engine(EngineSpec::Flat))
            .unwrap();
        assert!(
            (flat.reliability - classic.reliability).abs() < 0.03,
            "flat {} vs classic {}",
            flat.reliability,
            classic.reliability
        );
        assert!(flat.takeoff_rate.unwrap() > 0.5);
        assert!(flat.rounds.unwrap() > 1.0);
        assert!(flat.messages_per_member.unwrap() > 1.0);
        assert!(flat.quiescence_secs.is_none(), "the flat run is untimed");
        // Engine choice never leaks into the scenario label.
        assert_eq!(flat.scenario, classic.scenario);
    }

    #[test]
    fn flat_engine_agrees_on_a_structured_overlay() {
        use gossip_topology::{OverlaySpec, TopologySpec};
        let scenario = Scenario::new(2000, FanoutSpec::poisson(5.0))
            .with_failure_ratio(0.95)
            .with_replications(12)
            .with_topology(TopologySpec::new(OverlaySpec::WattsStrogatz {
                k: 16,
                beta: 0.5,
            }));
        let classic = ProtocolBackend
            .evaluate(&scenario.clone().with_engine(EngineSpec::Classic))
            .unwrap();
        let flat = ProtocolBackend
            .evaluate(&scenario.with_engine(EngineSpec::Flat))
            .unwrap();
        // Wider tolerance: the flat path quenches the overlay (one CSR
        // per evaluation) where the classic path resamples it per
        // replication.
        assert!(
            (flat.reliability - classic.reliability).abs() < 0.08,
            "flat {} vs classic {}",
            flat.reliability,
            classic.reliability
        );
        assert_eq!(flat.topology.as_deref(), Some("ws(k=16,beta=0.5)/neigh"));
    }

    #[test]
    fn flat_engine_refusals_are_typed() {
        // Flood has no flat kernel.
        assert!(matches!(
            ProtocolBackend.evaluate(
                &headline(5)
                    .with_protocol(ProtocolSpec::Flood)
                    .with_engine(EngineSpec::Flat)
            ),
            Err(ModelError::Unsupported { .. })
        ));
        // SCAMP view construction stays event-driven.
        assert!(matches!(
            ProtocolBackend.evaluate(
                &headline(5)
                    .with_membership(MembershipSpec::Scamp { c: 2 })
                    .with_engine(EngineSpec::Flat)
            ),
            Err(ModelError::Unsupported { .. })
        ));
        // The netsim backend is event-driven by definition.
        assert!(matches!(
            NetSimBackend.evaluate(&headline(5).with_engine(EngineSpec::Flat)),
            Err(ModelError::Unsupported { .. })
        ));
        // `Auto` with an unsupported combination quietly keeps classic.
        let auto = ProtocolBackend
            .evaluate(&headline(5).with_protocol(ProtocolSpec::Flood))
            .unwrap();
        assert!(auto.reliability > 0.999);
    }

    #[test]
    fn uncontended_stream_matches_the_single_message_estimator() {
        use gossip_model::TrafficSpec;
        let scenario = headline(15).with_traffic(TrafficSpec::stream(4));
        let analytic = AnalyticBackend.evaluate(&scenario).unwrap();
        let report = ProtocolBackend.evaluate(&scenario).unwrap();
        let traffic = report.traffic.as_ref().unwrap();
        assert_eq!(traffic.messages, 4);
        assert!(
            (traffic.reliability_mean - analytic.reliability).abs() < 0.03,
            "stream mean {} vs analytic {}",
            traffic.reliability_mean,
            analytic.reliability
        );
        assert!(traffic.reliability_min <= traffic.reliability_mean);
        assert!(traffic.latency_rounds_p50.unwrap() >= 1.0);
        assert!(traffic.latency_rounds_p99.unwrap() >= traffic.latency_rounds_p50.unwrap());
        // The protocol stream is untimed, exactly like the classic run.
        assert!(report.quiescence_secs.is_none());
        assert!(traffic.messages_per_sec.is_none());
        let again = ProtocolBackend.evaluate(&scenario).unwrap();
        assert_eq!(report, again, "streams must be seed-deterministic");
    }

    #[test]
    fn netsim_stream_is_timed_and_honours_loss() {
        use gossip_model::TrafficSpec;
        let scenario = Scenario::new(2000, FanoutSpec::poisson(6.0))
            .with_failure_ratio(0.9)
            .with_loss(0.25)
            .with_replications(10)
            .with_traffic(TrafficSpec::stream(4));
        let analytic = AnalyticBackend.evaluate(&scenario).unwrap();
        let report = NetSimBackend.evaluate(&scenario).unwrap();
        let traffic = report.traffic.as_ref().unwrap();
        assert!(
            (traffic.reliability_mean - analytic.reliability).abs() < 0.04,
            "lossy stream mean {} vs analytic {}",
            traffic.reliability_mean,
            analytic.reliability
        );
        assert!(report.quiescence_secs.unwrap() > 0.0);
        assert!(traffic.messages_per_sec.unwrap() > 0.0);
        assert!(traffic.copies_lost.unwrap() > 0.0);
    }

    #[test]
    fn stream_refusals_are_typed() {
        use gossip_model::TrafficSpec;
        use gossip_topology::{OverlaySpec, TopologySpec};
        let stream = |s: Scenario| s.with_traffic(TrafficSpec::stream(4));
        assert!(matches!(
            ProtocolBackend.evaluate(&stream(headline(5).with_protocol(ProtocolSpec::Flood))),
            Err(ModelError::Unsupported { .. })
        ));
        assert!(matches!(
            ProtocolBackend.evaluate(&stream(
                headline(5).with_membership(MembershipSpec::Scamp { c: 2 })
            )),
            Err(ModelError::Unsupported { .. })
        ));
        assert!(matches!(
            NetSimBackend.evaluate(&stream(
                headline(5).with_topology(TopologySpec::new(OverlaySpec::Ring { shortcuts: 2000 }))
            )),
            Err(ModelError::Unsupported { .. })
        ));
        // Rounds cannot price a stochastic per-frame latency.
        assert!(matches!(
            NetSimBackend.evaluate(&stream(
                headline(5).with_latency(LatencySpec::ExponentialMillis { mean_ms: 10 })
            )),
            Err(ModelError::Unsupported { .. })
        ));
    }

    #[test]
    fn auto_engine_below_threshold_matches_classic_byte_for_byte() {
        // n = 1000 is far below FLAT_ENGINE_AUTO_THRESHOLD, so `Auto`
        // must take the classic path and the entire Report — every
        // float, every label — must match.
        let auto = ProtocolBackend.evaluate(&headline(8)).unwrap();
        let classic = ProtocolBackend
            .evaluate(&headline(8).with_engine(EngineSpec::Classic))
            .unwrap();
        assert_eq!(auto, classic);
    }
}
