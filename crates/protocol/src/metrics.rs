//! Aggregate metrics over collections of execution outcomes.
//!
//! The paper reports reliability and success; real deployments also care
//! about cost (messages per member) and latency (hops, quiescence time).
//! [`Summary`] rolls a batch of [`ExecutionOutcome`]s into all four, for
//! the protocol-comparison experiments.

use gossip_stats::descriptive::{ConfidenceInterval, OnlineStats};
use serde::{Deserialize, Serialize};

use crate::engine::ExecutionOutcome;

/// Aggregated statistics over a batch of executions.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Reliability per execution.
    pub reliability: OnlineStats,
    /// Messages per nonfailed member per execution.
    pub messages_per_member: OnlineStats,
    /// Max hop count per execution (dissemination depth).
    pub max_hop: OnlineStats,
    /// Quiescence time (seconds) per execution.
    pub quiescence_secs: OnlineStats,
    /// Number of executions that were total successes.
    pub successes: u64,
    /// Number of executions aggregated.
    pub executions: u64,
}

impl Summary {
    /// Builds a summary from outcomes.
    pub fn from_outcomes(outcomes: &[ExecutionOutcome]) -> Self {
        let mut s = Summary::default();
        for o in outcomes {
            s.push(o);
        }
        s
    }

    /// Adds one outcome.
    pub fn push(&mut self, o: &ExecutionOutcome) {
        self.reliability.push(o.reliability());
        self.messages_per_member.push(o.messages_per_member());
        self.max_hop.push(o.max_hop as f64);
        self.quiescence_secs.push(o.quiescence.as_secs_f64());
        if o.is_success() {
            self.successes += 1;
        }
        self.executions += 1;
    }

    /// Empirical probability of total success.
    pub fn success_rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.successes as f64 / self.executions as f64
        }
    }

    /// 95% confidence interval on mean reliability.
    pub fn reliability_ci95(&self) -> ConfidenceInterval {
        self.reliability.ci95()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_netsim::SimTime;

    fn outcome(reached: usize, of: usize, msgs: u64) -> ExecutionOutcome {
        ExecutionOutcome {
            nonfailed: of,
            nonfailed_reached: reached,
            messages_sent: msgs,
            duplicates: 0,
            max_hop: 3,
            quiescence: SimTime::from_nanos(5_000_000),
            observer_reached: reached > 0,
            hop_histogram: vec![1, reached.saturating_sub(1) as u64],
        }
    }

    #[test]
    fn aggregates_reliability_and_success() {
        let outcomes = vec![
            outcome(100, 100, 400),
            outcome(50, 100, 400),
            outcome(100, 100, 0),
        ];
        let s = Summary::from_outcomes(&outcomes);
        assert_eq!(s.executions, 3);
        assert_eq!(s.successes, 2);
        assert!((s.success_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.reliability.mean() - (1.0 + 0.5 + 1.0) / 3.0).abs() < 1e-12);
        assert!((s.max_hop.mean() - 3.0).abs() < 1e-12);
        assert!((s.quiescence_secs.mean() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn empty_summary() {
        let s = Summary::default();
        assert_eq!(s.success_rate(), 0.0);
        assert_eq!(s.executions, 0);
    }

    #[test]
    fn ci_contains_mean() {
        let outcomes: Vec<_> = (0..50).map(|i| outcome(90 + i % 10, 100, 300)).collect();
        let s = Summary::from_outcomes(&outcomes);
        let ci = s.reliability_ci95();
        assert!(ci.contains(s.reliability.mean()));
        assert!(ci.width() > 0.0);
    }
}
