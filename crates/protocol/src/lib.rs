//! # gossip-protocol
//!
//! Executable gossip-based reliable multicast protocols, running on the
//! [`gossip_netsim`] discrete-event simulator.
//!
//! The centrepiece is [`PushGossip`] — the paper's general gossiping
//! algorithm (Fig. 1): *upon receiving message `m` for the first time,
//! draw a fanout `f` from distribution `P`, select `f` members uniformly
//! at random from the membership view, send `m` to them; discard
//! duplicates.* Around it:
//!
//! * Baselines the gossip literature compares against:
//!   [`RoundBasedGossip`] (pbcast-style periodic rounds),
//!   [`PushPullGossip`] (anti-entropy pulls), and [`Flooding`]
//!   (forward-to-whole-view).
//! * [`engine`] — one *execution* of a protocol: build the simulator,
//!   apply the paper's crash model, inject the message at the source, run
//!   to quiescence, and measure reliability = `n_rece / n_nonfailed`
//!   (§4.2) plus latency/cost metrics the paper's model abstracts away.
//! * [`experiment`] — seed-stable parallel Monte-Carlo: reliability
//!   curves (Figs. 4/5), success-count distributions (Figs. 6/7), and
//!   success-vs-`t` validation of Eq. 5.
//!
//! ```
//! use gossip_model::PoissonFanout;
//! use gossip_protocol::engine::{ExecutionConfig, MembershipKind};
//! use gossip_protocol::experiment;
//!
//! // One Fig. 4-style point: n = 1000, Po(4) fanout, q = 0.9, 20 runs.
//! // Conditioning on take-off (see `experiment::reliability_conditional`)
//! // estimates the giant-component size of the paper's Eq. 11.
//! let cfg = ExecutionConfig::new(1000, 0.9);
//! let stats =
//!     experiment::reliability_conditional(&cfg, &PoissonFanout::new(4.0), 20, 42, 0.5);
//! let analytic = 0.9695; // root of S = 1 − e^{−3.6 S}
//! assert!((stats.mean() - analytic).abs() < 0.02);
//! # let _ = MembershipKind::Full;
//! ```

pub mod backend;
pub mod engine;
pub mod experiment;
pub mod flood;
pub mod message;
pub mod metrics;
pub mod push;
pub mod pushpull;
pub mod rounds;
pub(crate) mod traffic_eval;

pub use backend::{NetSimBackend, ProtocolBackend};
pub use engine::{ExecutionConfig, ExecutionOutcome, MembershipKind};
pub use flood::Flooding;
pub use message::{GossipMessage, MessageId};
pub use push::PushGossip;
pub use pushpull::PushPullGossip;
pub use rounds::RoundBasedGossip;

use gossip_netsim::SimTime;

/// Common introspection interface over gossip protocol behaviours — how
/// the [`engine`] reads reliability out of a finished simulation.
pub trait GossipProtocol {
    /// Whether this node has received the multicast payload.
    fn has_received(&self) -> bool;

    /// Hop count at first receipt (0 at the source), if received.
    fn receipt_hop(&self) -> Option<u32>;

    /// Simulated time of first receipt, if received.
    fn receipt_time(&self) -> Option<SimTime>;

    /// Number of duplicate receipts (redundancy accounting).
    fn duplicates(&self) -> u32;
}
