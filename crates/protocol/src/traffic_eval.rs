//! Stream (multi-message traffic) evaluation shared by the protocol
//! and netsim backends.
//!
//! When a [`Scenario`] carries a [`TrafficSpec`], both backends hand the
//! workload to `gossip-traffic`'s round-synchronous stream engine
//! instead of the per-message discrete-event simulator: per-round event
//! coalescing and arena-reused per-message state keep k = 64 streams at
//! n = 10⁴ fast, where k independent event-driven runs would replay the
//! calendar k times over.
//!
//! The two backends differ only in clocking:
//!
//! * **protocol** — the §5 idealization: untimed and lossless (loss is
//!   already refused upstream), latency percentiles reported in rounds.
//! * **netsim** — timed: per-frame loss applies, and the constant hop
//!   latency converts rounds to seconds, pricing `quiescence_secs` and
//!   sustained `messages_per_sec`. Only
//!   [`LatencySpec::ConstantMillis`] is supported — the stream engine's
//!   calendar is round-synchronous, so a stochastic per-frame latency
//!   has no faithful mapping and is refused rather than approximated.
//!
//! Streams run the paper's base model: complete view, push relay,
//! static crash-or-alive members with an immortal source. Everything
//! else (partial views, overlays, dynamic faults, crash schedules,
//! flood/push-pull) is a typed [`ModelError::Unsupported`] refusal.
//!
//! Reliability stays per message: each message's delivery fraction is
//! conditioned on take-off exactly like the single-message estimator
//! (threshold = half the analytic prediction), so the uncontended
//! stream reproduces the single-message curves message by message.

use gossip_engine::FanoutSampler;
use gossip_model::distribution::FanoutDistribution;
use gossip_model::percolation::SitePercolation;
use gossip_model::scenario::{
    FailureSpec, LatencySpec, MembershipSpec, ProtocolSpec, Report, Scenario,
};
use gossip_model::{success, ModelError};
use gossip_stats::descriptive::OnlineStats;
use gossip_stats::parallel::parallel_map;
use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};
use gossip_traffic::{
    injection_rounds, percentile, run_stream, StreamCounters, StreamParams, StreamScratch,
    TrafficReport, TRAFFIC_PLAN_STREAM,
};

use crate::backend::takeoff_threshold;

/// Seed-stream tag for the per-replication stream execution RNG (alive
/// draw + engine), disjoint from the workspace's other tagged streams
/// (`0x7AFF1C` injection plans, `0xFA11` failure draws, ...).
const STREAM_EXEC: u64 = 0x7AFF2C;

/// One replication's digest: per-message delivery fractions among alive
/// members, rounds to quiescence, and the exact copy accounting.
struct RepOutcome {
    per_message: Vec<f64>,
    rounds: u64,
    counters: StreamCounters,
    alive: usize,
}

/// Why this scenario's stream cannot run, if it can't. Both stream
/// backends model exactly the paper's base system — complete view, push
/// relay, static crashes, immortal source — so everything else refuses
/// with a typed error instead of silently approximating.
fn check_stream_support(backend: &'static str, scenario: &Scenario) -> Result<(), ModelError> {
    let what = if scenario.protocol != ProtocolSpec::Push {
        Some("multi-message traffic for flood/push-pull variants (streams use the push relay)")
    } else if scenario.membership != MembershipSpec::Full {
        Some("multi-message traffic over partial views (streams run on the complete view)")
    } else if !scenario.topology.is_default() {
        Some("multi-message traffic over structured overlays (streams run on the complete view)")
    } else if !scenario.faults.is_default() {
        Some("multi-message traffic under dynamic fault injection (streams model static crashes only)")
    } else if matches!(scenario.failure, FailureSpec::Schedule { .. }) {
        Some("crash schedules under multi-message traffic (streams draw static crashes from q)")
    } else {
        None
    };
    match what {
        Some(what) => Err(ModelError::Unsupported { backend, what }),
        None => Ok(()),
    }
}

/// Evaluates the scenario's [`TrafficSpec`] stream on the round-based
/// engine. `hop_millis` is `Some(ms)` for the timed netsim run (rounds
/// are priced at the constant hop latency) and `None` for the untimed
/// protocol run.
pub(crate) fn evaluate_stream(
    backend_name: &'static str,
    scenario: &Scenario,
    hop_millis: Option<u64>,
) -> Result<Report, ModelError> {
    check_stream_support(backend_name, scenario)?;
    let spec = scenario
        .traffic
        .expect("evaluate_stream is only dispatched when traffic is present");
    let q = scenario
        .q()
        .expect("crash schedules were refused by check_stream_support");
    let boxed = scenario.fanout.build()?;
    let dist: &dyn FanoutDistribution = &*boxed;
    let sampler = FanoutSampler::new(dist);
    let n = scenario.n;
    let k = spec.messages;
    let injections = injection_rounds(
        &spec.arrival,
        k,
        SplitMix64::derive(scenario.seed, TRAFFIC_PLAN_STREAM),
    );

    let reps = scenario.replications;
    let (chunks, bounds) = gossip_engine::chunk_bounds(reps);
    let per_chunk: Vec<(Vec<RepOutcome>, Vec<u64>)> = parallel_map(chunks, |chunk| {
        let mut scratch = StreamScratch::new();
        let mut hist: Vec<u64> = Vec::new();
        let mut alive = vec![true; n];
        let outcomes = bounds(chunk)
            .map(|rep| {
                let seed = SplitMix64::derive(scenario.seed, rep as u64);
                let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, STREAM_EXEC));
                // Static crash draw, source immortal (the paper's site
                // percolation: each member nonfailed w.p. q).
                alive[0] = true;
                for flag in alive.iter_mut().skip(1) {
                    *flag = rng.next_bool(q);
                }
                let alive_count = alive.iter().filter(|&&a| a).count();
                let p = StreamParams {
                    n,
                    source: 0,
                    injections: &injections,
                    bandwidth: spec.bandwidth,
                    queue_capacity: spec.queue_capacity,
                    frame_limit: spec.frame_limit(),
                    loss: scenario.loss,
                    alive: &alive,
                };
                let out = run_stream(
                    &p,
                    &mut scratch,
                    &mut rng,
                    &mut |r| sampler.sample(dist, r),
                    &mut hist,
                );
                RepOutcome {
                    per_message: out
                        .reached
                        .iter()
                        .map(|&r| r as f64 / alive_count.max(1) as f64)
                        .collect(),
                    rounds: out.rounds,
                    counters: out.counters,
                    alive: alive_count,
                }
            })
            .collect();
        (outcomes, hist)
    });

    // Merge the per-chunk latency histograms (delivery delay in rounds
    // since each message's injection).
    let mut hist: Vec<u64> = Vec::new();
    for (_, chunk_hist) in &per_chunk {
        if hist.len() < chunk_hist.len() {
            hist.resize(chunk_hist.len(), 0);
        }
        for (total, &count) in hist.iter_mut().zip(chunk_hist) {
            *total += count;
        }
    }

    // Per-message take-off conditioning with the single-message
    // threshold: under an uncontended cap every message is an
    // independent execution of the paper's protocol.
    let threshold = takeoff_threshold(scenario, dist);
    let mut per_message: Vec<OnlineStats> = (0..k).map(|_| OnlineStats::new()).collect();
    let mut conditional = OnlineStats::new();
    let mut raw = OnlineStats::new();
    let mut rounds = OnlineStats::new();
    let mut per_member = OnlineStats::new();
    let mut sent = OnlineStats::new();
    let mut dropped = OnlineStats::new();
    let mut lost = OnlineStats::new();
    let mut quiescence = OnlineStats::new();
    let mut throughput = OnlineStats::new();
    let mut takeoffs = 0usize;
    let mut samples = 0usize;
    for outcome in per_chunk.iter().flat_map(|(outcomes, _)| outcomes) {
        let mut any_takeoff = false;
        for (message, &r) in outcome.per_message.iter().enumerate() {
            samples += 1;
            raw.push(r);
            if r > threshold {
                takeoffs += 1;
                any_takeoff = true;
                conditional.push(r);
                per_message[message].push(r);
            }
        }
        if any_takeoff {
            rounds.push(outcome.rounds as f64);
            if let Some(ms) = hop_millis {
                let secs = outcome.rounds as f64 * ms as f64 / 1000.0;
                quiescence.push(secs);
                if secs > 0.0 {
                    throughput.push(k as f64 / secs);
                }
            }
        }
        let c = &outcome.counters;
        per_member.push(c.copies_sent as f64 / outcome.alive.max(1) as f64);
        sent.push(c.copies_sent as f64);
        dropped.push(c.copies_dropped as f64);
        lost.push(c.copies_lost as f64);
    }

    let means: Vec<f64> = per_message
        .iter()
        .map(|s| if s.count() == 0 { 0.0 } else { s.mean() })
        .collect();
    let reliability_mean = means.iter().sum::<f64>() / k as f64;
    let reliability_min = means.iter().copied().fold(f64::INFINITY, f64::min);
    let reliability = if conditional.count() == 0 {
        0.0
    } else {
        conditional.mean()
    };
    let ci = conditional.ci95();
    let critical_q = SitePercolation::new(dist, 1.0)?.critical_q();
    Ok(Report {
        backend: backend_name.to_string(),
        scenario: scenario.label(),
        replications: reps,
        reliability,
        reliability_std_error: conditional.sem(),
        reliability_ci95: (ci.lo, ci.hi),
        reliability_raw: Some(raw.mean()),
        critical_q,
        takeoff_rate: Some(takeoffs as f64 / samples.max(1) as f64),
        rounds: if rounds.count() == 0 {
            None
        } else {
            Some(rounds.mean())
        },
        messages_per_member: Some(per_member.mean()),
        quiescence_secs: if quiescence.count() == 0 {
            None
        } else {
            Some(quiescence.mean())
        },
        transport: None,
        topology: scenario.topology_label(),
        faults: scenario.faults_label(),
        messages_lost: None,
        success_within_t: success::success_probability(reliability, scenario.executions),
        traffic: Some(TrafficReport {
            messages: k,
            reliability_mean,
            reliability_min,
            messages_per_sec: if throughput.count() == 0 {
                None
            } else {
                Some(throughput.mean())
            },
            latency_rounds_p50: percentile(&hist, 0.50),
            latency_rounds_p90: percentile(&hist, 0.90),
            latency_rounds_p99: percentile(&hist, 0.99),
            copies_sent: Some(sent.mean()),
            copies_dropped: Some(dropped.mean()),
            copies_lost: Some(lost.mean()),
            batched: spec.batched(),
        }),
    })
}

/// The netsim stream refuses non-constant latency: the stream engine's
/// calendar is round-synchronous, so stochastic per-frame delay has no
/// faithful mapping onto it.
pub(crate) fn stream_hop_millis(scenario: &Scenario) -> Result<u64, ModelError> {
    match scenario.latency {
        LatencySpec::ConstantMillis { ms } => Ok(ms),
        _ => Err(ModelError::Unsupported {
            backend: "netsim",
            what: "multi-message traffic under stochastic latency (the stream engine is round-synchronous; use ConstantMillis)",
        }),
    }
}
