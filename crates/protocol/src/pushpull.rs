//! Push-pull (anti-entropy) gossip — the Demers-style baseline.
//!
//! The paper's related work traces gossip to the anti-entropy protocols
//! of replicated databases (its reference \[2\], Demers et al.). Here,
//! besides pushing on first receipt, every node periodically *pulls*: it
//! asks a random member whether it has the message; infected members
//! answer with the payload. Pulls make dissemination robust to push
//! fizzle (they keep working after the push phase dies out), at the cost
//! of background traffic even before/without infection.

use gossip_netsim::{NodeBehavior, NodeCtx, NodeId, SimDuration, SimTime};

use crate::message::GossipMessage;
use crate::GossipProtocol;

/// Timer id for the periodic pull.
const PULL_TIMER: u64 = 2;

/// Message alphabet of the push-pull protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PullMessage {
    /// Push or pull-reply carrying the payload.
    Data(GossipMessage),
    /// "Do you have it?" probe.
    PullRequest,
}

/// Per-node state of push-pull gossip.
pub struct PushPullGossip {
    push_fanout: usize,
    pull_period: SimDuration,
    pulls_left: u32,
    received: bool,
    buffered: Option<GossipMessage>,
    receipt_hop: Option<u32>,
    receipt_time: Option<SimTime>,
    duplicates: u32,
}

impl PushPullGossip {
    /// Creates the behaviour: push to `push_fanout` targets on first
    /// receipt; issue `pull_budget` pulls, one per `pull_period`.
    pub fn new(push_fanout: usize, pull_budget: u32, pull_period: SimDuration) -> Self {
        Self {
            push_fanout,
            pull_period,
            pulls_left: pull_budget,
            received: false,
            buffered: None,
            receipt_hop: None,
            receipt_time: None,
            duplicates: 0,
        }
    }

    fn infect(&mut self, ctx: &mut NodeCtx<'_, PullMessage>, msg: GossipMessage) {
        self.received = true;
        self.receipt_hop = Some(msg.hop);
        self.receipt_time = Some(ctx.now());
        let copy = msg.forwarded();
        self.buffered = Some(msg);
        let mut targets = Vec::with_capacity(self.push_fanout);
        ctx.sample_targets(self.push_fanout, &mut targets);
        for t in targets {
            ctx.send(t, PullMessage::Data(copy.clone()));
        }
    }
}

impl NodeBehavior<PullMessage> for PushPullGossip {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_, PullMessage>) {
        if self.pulls_left > 0 {
            // Stagger first pulls uniformly over one period to avoid a
            // synchronized thundering herd.
            let jitter =
                SimDuration::from_nanos(ctx.rng().next_below(self.pull_period.as_nanos().max(1)));
            ctx.set_timer(jitter, PULL_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_, PullMessage>, from: NodeId, msg: PullMessage) {
        match msg {
            PullMessage::Data(data) => {
                if self.received {
                    self.duplicates += 1;
                } else {
                    self.infect(ctx, data);
                }
            }
            PullMessage::PullRequest => {
                if let Some(buffered) = &self.buffered {
                    ctx.send(from, PullMessage::Data(buffered.forwarded()));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, PullMessage>, id: u64) {
        if id != PULL_TIMER || self.pulls_left == 0 {
            return;
        }
        self.pulls_left -= 1;
        // Infected nodes stop pulling — they have nothing to gain.
        if !self.received {
            let mut target = Vec::with_capacity(1);
            ctx.sample_targets(1, &mut target);
            for t in target {
                ctx.send(t, PullMessage::PullRequest);
            }
        }
        if self.pulls_left > 0 && !self.received {
            ctx.set_timer(self.pull_period, PULL_TIMER);
        }
    }
}

impl GossipProtocol for PushPullGossip {
    fn has_received(&self) -> bool {
        self.received
    }

    fn receipt_hop(&self) -> Option<u32> {
        self.receipt_hop
    }

    fn receipt_time(&self) -> Option<SimTime> {
        self.receipt_time
    }

    fn duplicates(&self) -> u32 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;
    use gossip_netsim::membership::FullView;
    use gossip_netsim::{LatencyModel, NetworkConfig, Simulator};

    fn pp_sim(
        n: usize,
        push_fanout: usize,
        pulls: u32,
        seed: u64,
    ) -> Simulator<PullMessage, PushPullGossip> {
        Simulator::new(
            (0..n)
                .map(|_| PushPullGossip::new(push_fanout, pulls, SimDuration::from_millis(5)))
                .collect(),
            NetworkConfig::new(LatencyModel::constant_millis(1)),
            Box::new(FullView::new(n)),
            seed,
        )
    }

    fn run(sim: &mut Simulator<PullMessage, PushPullGossip>) -> usize {
        sim.start_all();
        sim.inject(
            0,
            0,
            PullMessage::Data(GossipMessage::new(MessageId(1), &b"m"[..])),
        );
        sim.run_to_quiescence();
        sim.nodes().filter(|(_, b, _)| b.has_received()).count()
    }

    #[test]
    fn pulls_rescue_weak_push() {
        // Push fanout 1 fizzles fast; generous pulls still infect nearly
        // everyone.
        let mut with_pulls = pp_sim(100, 1, 30, 1);
        let reached_with = run(&mut with_pulls);
        let mut without_pulls = pp_sim(100, 1, 0, 1);
        let reached_without = run(&mut without_pulls);
        assert!(
            reached_with > reached_without,
            "pulls ({reached_with}) must beat none ({reached_without})"
        );
        assert!(
            reached_with > 90,
            "pulls should near-complete: {reached_with}"
        );
    }

    #[test]
    fn infected_nodes_answer_pulls() {
        let mut sim = pp_sim(10, 0, 10, 2);
        let reached = run(&mut sim);
        // Push fanout 0: dissemination happens via pulls only.
        assert!(reached > 5, "pull-only dissemination reached {reached}");
    }

    #[test]
    fn pull_budget_bounds_probe_traffic() {
        let mut sim = pp_sim(50, 0, 3, 3);
        sim.start_all();
        // No injection at all: only pull probes fly, ≤ 3 per node.
        sim.run_to_quiescence();
        assert!(sim.metrics().messages_sent <= 150);
        assert!(sim.metrics().messages_sent > 0);
        let reached = sim.nodes().filter(|(_, b, _)| b.has_received()).count();
        assert_eq!(reached, 0, "no payload exists to spread");
    }

    #[test]
    fn duplicate_data_counted() {
        let mut sim = pp_sim(5, 4, 0, 4);
        run(&mut sim);
        let dupes: u32 = sim.nodes().map(|(_, b, _)| b.duplicates()).sum();
        // Full-ish fanout in a tiny group must generate duplicates.
        assert!(dupes > 0);
    }
}
