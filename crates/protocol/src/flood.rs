//! Flooding — the deterministic upper-bound baseline.
//!
//! Forward to *every* member of the view on first receipt. Over partial
//! views (SCAMP) this is classic network flooding; over a full view it
//! degenerates to all-to-all. Flooding maximizes reliability at maximal
//! message cost — the upper envelope that the gossip protocols are
//! measured against in the cost/reliability trade-off experiments.

use gossip_netsim::{NodeBehavior, NodeCtx, NodeId, SimTime};

use crate::message::GossipMessage;
use crate::GossipProtocol;

/// Per-node state of the flooding protocol.
pub struct Flooding {
    received: bool,
    receipt_hop: Option<u32>,
    receipt_time: Option<SimTime>,
    duplicates: u32,
}

impl Flooding {
    /// Creates the behaviour.
    pub fn new() -> Self {
        Self {
            received: false,
            receipt_hop: None,
            receipt_time: None,
            duplicates: 0,
        }
    }
}

impl Default for Flooding {
    fn default() -> Self {
        Self::new()
    }
}

impl NodeBehavior<GossipMessage> for Flooding {
    fn on_message(
        &mut self,
        ctx: &mut NodeCtx<'_, GossipMessage>,
        _from: NodeId,
        msg: GossipMessage,
    ) {
        if self.received {
            self.duplicates += 1;
            return;
        }
        self.received = true;
        self.receipt_hop = Some(msg.hop);
        self.receipt_time = Some(ctx.now());
        let view = ctx.view_size();
        let mut targets = Vec::with_capacity(view);
        ctx.sample_targets(view, &mut targets);
        let copy = msg.forwarded();
        for t in targets {
            ctx.send(t, copy.clone());
        }
    }
}

impl GossipProtocol for Flooding {
    fn has_received(&self) -> bool {
        self.received
    }

    fn receipt_hop(&self) -> Option<u32> {
        self.receipt_hop
    }

    fn receipt_time(&self) -> Option<SimTime> {
        self.receipt_time
    }

    fn duplicates(&self) -> u32 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;
    use gossip_netsim::membership::{FullView, ScampViews};
    use gossip_netsim::{LatencyModel, NetworkConfig, Simulator};

    #[test]
    fn full_view_flood_is_all_to_all() {
        let n = 20;
        let mut sim: Simulator<GossipMessage, Flooding> = Simulator::new(
            (0..n).map(|_| Flooding::new()).collect(),
            NetworkConfig::new(LatencyModel::constant_millis(1)),
            Box::new(FullView::new(n)),
            1,
        );
        sim.inject(0, 0, GossipMessage::new(MessageId(1), &b"m"[..]));
        sim.run_to_quiescence();
        let received = sim.nodes().filter(|(_, b, _)| b.has_received()).count();
        assert_eq!(received, n);
        assert_eq!(sim.metrics().messages_sent as usize, n * (n - 1));
    }

    #[test]
    fn flood_over_scamp_views_completes() {
        let n = 300;
        let views = ScampViews::build(n, 2, 7);
        let mut sim: Simulator<GossipMessage, Flooding> = Simulator::new(
            (0..n).map(|_| Flooding::new()).collect(),
            NetworkConfig::new(LatencyModel::constant_millis(1)),
            Box::new(views),
            2,
        );
        sim.inject(0, 0, GossipMessage::new(MessageId(1), &b"m"[..]));
        sim.run_to_quiescence();
        let received = sim.nodes().filter(|(_, b, _)| b.has_received()).count();
        // SCAMP's directed overlay is (whp) strongly enough connected for
        // flooding to reach nearly everyone.
        assert!(received as f64 > 0.95 * n as f64, "reached {received}/{n}");
        // And the cost is far below all-to-all.
        assert!((sim.metrics().messages_sent as usize) < n * (n - 1) / 4);
    }
}
