//! The multicast message.

use bytes::Bytes;

/// Identifier of a multicast message (unique per multicast, not per
/// copy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

/// A gossip message copy in flight.
///
/// The payload is a [`Bytes`] handle: cloning a message for each of `f`
/// gossip targets is a reference-count bump, not a copy — the simulator
/// can push gigabytes of logical payload around for free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipMessage {
    /// Which multicast this copy belongs to.
    pub id: MessageId,
    /// Hops travelled so far (0 when leaving the source).
    pub hop: u32,
    /// Application payload.
    pub payload: Bytes,
}

impl GossipMessage {
    /// Creates a fresh multicast message (hop 0).
    pub fn new(id: MessageId, payload: impl Into<Bytes>) -> Self {
        Self {
            id,
            hop: 0,
            payload: payload.into(),
        }
    }

    /// The copy a relay forwards: same id/payload, hop incremented.
    pub fn forwarded(&self) -> Self {
        Self {
            id: self.id,
            hop: self.hop.saturating_add(1),
            payload: self.payload.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_increments_hop_only() {
        let m = GossipMessage::new(MessageId(7), &b"hello"[..]);
        assert_eq!(m.hop, 0);
        let f = m.forwarded();
        assert_eq!(f.hop, 1);
        assert_eq!(f.id, MessageId(7));
        assert_eq!(f.payload, m.payload);
        assert_eq!(f.forwarded().hop, 2);
    }

    #[test]
    fn payload_clone_is_shallow() {
        let payload = Bytes::from(vec![0u8; 1024]);
        let m = GossipMessage::new(MessageId(1), payload.clone());
        let f = m.forwarded();
        // Same underlying buffer (pointer equality via as_ptr).
        assert_eq!(m.payload.as_ptr(), f.payload.as_ptr());
    }

    #[test]
    fn hop_saturates() {
        let mut m = GossipMessage::new(MessageId(1), &b""[..]);
        m.hop = u32::MAX;
        assert_eq!(m.forwarded().hop, u32::MAX);
    }
}
