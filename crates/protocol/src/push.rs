//! The paper's general gossiping algorithm (Fig. 1).
//!
//! > Upon member *i* receiving the message *m* for the first time:
//! > member *i* generates a random number *f_i* by following a specified
//! > probability distribution *P*; selects *f_i* nodes uniformly at
//! > random from its membership view; sends *m* to the selected nodes.
//! > If a member receives the message again, it discards it immediately.
//!
//! The distribution is shared across nodes as an `Arc<dyn
//! FanoutDistribution>`; the traditional fixed-fanout protocol is this
//! behaviour with `FixedFanout(f)` — no separate implementation needed,
//! which is exactly the generality the paper claims for its algorithm.

use std::sync::Arc;

use gossip_model::distribution::FanoutDistribution;
use gossip_netsim::{NodeBehavior, NodeCtx, NodeId, SimTime};

use crate::message::GossipMessage;
use crate::GossipProtocol;

/// Per-node state of the push gossip protocol.
pub struct PushGossip {
    dist: Arc<dyn FanoutDistribution>,
    received: bool,
    receipt_hop: Option<u32>,
    receipt_time: Option<SimTime>,
    duplicates: u32,
    /// Fanout actually drawn on first receipt (for distribution audits).
    drawn_fanout: Option<usize>,
}

impl PushGossip {
    /// Creates the behaviour for one node, gossiping with distribution
    /// `dist`.
    pub fn new(dist: Arc<dyn FanoutDistribution>) -> Self {
        Self {
            dist,
            received: false,
            receipt_hop: None,
            receipt_time: None,
            duplicates: 0,
            drawn_fanout: None,
        }
    }

    /// The fanout this node drew on first receipt (None if never
    /// reached).
    pub fn drawn_fanout(&self) -> Option<usize> {
        self.drawn_fanout
    }
}

impl NodeBehavior<GossipMessage> for PushGossip {
    fn on_message(
        &mut self,
        ctx: &mut NodeCtx<'_, GossipMessage>,
        _from: NodeId,
        msg: GossipMessage,
    ) {
        if self.received {
            self.duplicates += 1;
            return; // "discards it immediately"
        }
        self.received = true;
        self.receipt_hop = Some(msg.hop);
        self.receipt_time = Some(ctx.now());
        // Draw f_i ~ P and relay to f_i distinct members of the view.
        let f = self.dist.sample(ctx.rng());
        self.drawn_fanout = Some(f);
        let mut targets = Vec::with_capacity(f);
        ctx.sample_targets(f, &mut targets);
        let copy = msg.forwarded();
        for t in targets {
            ctx.send(t, copy.clone());
        }
    }
}

impl GossipProtocol for PushGossip {
    fn has_received(&self) -> bool {
        self.received
    }

    fn receipt_hop(&self) -> Option<u32> {
        self.receipt_hop
    }

    fn receipt_time(&self) -> Option<SimTime> {
        self.receipt_time
    }

    fn duplicates(&self) -> u32 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;
    use gossip_model::distribution::FixedFanout;
    use gossip_netsim::membership::FullView;
    use gossip_netsim::{LatencyModel, NetworkConfig, Simulator};

    fn push_sim(n: usize, fanout: usize, seed: u64) -> Simulator<GossipMessage, PushGossip> {
        let dist: Arc<dyn FanoutDistribution> = Arc::new(FixedFanout::new(fanout));
        Simulator::new(
            (0..n).map(|_| PushGossip::new(dist.clone())).collect(),
            NetworkConfig::new(LatencyModel::constant_millis(1)),
            Box::new(FullView::new(n)),
            seed,
        )
    }

    #[test]
    fn relays_exactly_once() {
        let mut sim = push_sim(50, 3, 1);
        sim.inject(0, 0, GossipMessage::new(MessageId(1), &b"m"[..]));
        sim.run_to_quiescence();
        // Each receiving node sends exactly its fanout; total sends =
        // 3 × (#nodes that received).
        let received = sim.nodes().filter(|(_, b, _)| b.has_received()).count();
        assert_eq!(sim.metrics().messages_sent as usize, 3 * received);
        // Fanout 3 on 50 nodes with no failures: (almost surely) all
        // reached with this seed.
        assert!(received > 45, "only {received} reached");
    }

    #[test]
    fn duplicates_are_discarded_not_relayed() {
        let mut sim = push_sim(10, 9, 2); // full fanout → lots of dupes
        sim.inject(0, 0, GossipMessage::new(MessageId(1), &b"m"[..]));
        sim.run_to_quiescence();
        let total_dupes: u32 = sim.nodes().map(|(_, b, _)| b.duplicates()).sum();
        // Every node sends to all 9 others; 10 nodes × 9 = 90 sends, 10
        // first receipts (incl. injection), rest duplicates.
        assert_eq!(sim.metrics().messages_sent, 90);
        assert_eq!(total_dupes, 90 + 1 - 10);
    }

    #[test]
    fn hop_counts_grow_from_source() {
        let mut sim = push_sim(100, 2, 3);
        sim.inject(0, 0, GossipMessage::new(MessageId(1), &b"m"[..]));
        sim.run_to_quiescence();
        let source_hop = sim.node(0).receipt_hop().unwrap();
        assert_eq!(source_hop, 0);
        let max_hop = sim
            .nodes()
            .filter_map(|(_, b, _)| b.receipt_hop())
            .max()
            .unwrap();
        assert!(max_hop >= 2, "fanout-2 gossip needs multiple hops");
    }

    #[test]
    fn drawn_fanout_matches_distribution() {
        let mut sim = push_sim(30, 4, 4);
        sim.inject(0, 0, GossipMessage::new(MessageId(1), &b"m"[..]));
        sim.run_to_quiescence();
        for (_, b, _) in sim.nodes() {
            if b.has_received() {
                assert_eq!(b.drawn_fanout(), Some(4));
            } else {
                assert_eq!(b.drawn_fanout(), None);
            }
        }
    }

    #[test]
    fn zero_fanout_stops_immediately() {
        let mut sim = push_sim(10, 0, 5);
        sim.inject(0, 0, GossipMessage::new(MessageId(1), &b"m"[..]));
        sim.run_to_quiescence();
        let received = sim.nodes().filter(|(_, b, _)| b.has_received()).count();
        assert_eq!(received, 1, "only the source");
        assert_eq!(sim.metrics().messages_sent, 0);
    }
}
