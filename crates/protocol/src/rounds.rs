//! Round-based gossip — the pbcast-style baseline.
//!
//! The paper's related work (§2) discusses pbcast/Bimodal Multicast,
//! where members gossip in synchronous *rounds*: an infected member
//! re-sends the message to `f` random targets every round for `R`
//! rounds. Compared with the paper's one-shot random-fanout push, rounds
//! trade extra messages (R·f per member instead of f) for reliability —
//! the baseline the experiments quantify.

use gossip_netsim::{NodeBehavior, NodeCtx, NodeId, SimDuration, SimTime};

use crate::message::GossipMessage;
use crate::GossipProtocol;

/// Timer id used for round ticks.
const ROUND_TIMER: u64 = 1;

/// Per-node state of round-based gossip.
pub struct RoundBasedGossip {
    fanout: usize,
    rounds: u32,
    period: SimDuration,
    rounds_left: u32,
    buffered: Option<GossipMessage>,
    received: bool,
    receipt_hop: Option<u32>,
    receipt_time: Option<SimTime>,
    duplicates: u32,
}

impl RoundBasedGossip {
    /// Creates the behaviour: on infection, gossip to `fanout` targets
    /// each `period` for `rounds` rounds.
    pub fn new(fanout: usize, rounds: u32, period: SimDuration) -> Self {
        Self {
            fanout,
            rounds,
            period,
            rounds_left: 0,
            buffered: None,
            received: false,
            receipt_hop: None,
            receipt_time: None,
            duplicates: 0,
        }
    }
}

impl NodeBehavior<GossipMessage> for RoundBasedGossip {
    fn on_message(
        &mut self,
        ctx: &mut NodeCtx<'_, GossipMessage>,
        _from: NodeId,
        msg: GossipMessage,
    ) {
        if self.received {
            self.duplicates += 1;
            return;
        }
        self.received = true;
        self.receipt_hop = Some(msg.hop);
        self.receipt_time = Some(ctx.now());
        self.rounds_left = self.rounds;
        self.buffered = Some(msg);
        if self.rounds_left > 0 {
            // First round fires immediately; later rounds are periodic.
            ctx.set_timer(SimDuration::ZERO, ROUND_TIMER);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, GossipMessage>, id: u64) {
        if id != ROUND_TIMER || self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        let msg = self
            .buffered
            .as_ref()
            .expect("round timer only set after infection")
            .forwarded();
        let mut targets = Vec::with_capacity(self.fanout);
        ctx.sample_targets(self.fanout, &mut targets);
        for t in targets {
            ctx.send(t, msg.clone());
        }
        if self.rounds_left > 0 {
            ctx.set_timer(self.period, ROUND_TIMER);
        }
    }
}

impl GossipProtocol for RoundBasedGossip {
    fn has_received(&self) -> bool {
        self.received
    }

    fn receipt_hop(&self) -> Option<u32> {
        self.receipt_hop
    }

    fn receipt_time(&self) -> Option<SimTime> {
        self.receipt_time
    }

    fn duplicates(&self) -> u32 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;
    use gossip_netsim::membership::FullView;
    use gossip_netsim::{LatencyModel, NetworkConfig, Simulator};

    fn rounds_sim(
        n: usize,
        fanout: usize,
        rounds: u32,
        seed: u64,
    ) -> Simulator<GossipMessage, RoundBasedGossip> {
        Simulator::new(
            (0..n)
                .map(|_| RoundBasedGossip::new(fanout, rounds, SimDuration::from_millis(10)))
                .collect(),
            NetworkConfig::new(LatencyModel::constant_millis(1)),
            Box::new(FullView::new(n)),
            seed,
        )
    }

    #[test]
    fn each_infected_node_sends_rounds_times_fanout() {
        let mut sim = rounds_sim(40, 2, 3, 1);
        sim.inject(0, 0, GossipMessage::new(MessageId(1), &b"m"[..]));
        sim.run_to_quiescence();
        let infected = sim.nodes().filter(|(_, b, _)| b.has_received()).count();
        assert_eq!(sim.metrics().messages_sent as usize, infected * 2 * 3);
    }

    #[test]
    fn more_rounds_beat_one_shot() {
        // Same per-round fanout; 4 rounds reach (weakly) more nodes than
        // 1 round on the same seed set.
        let reached = |rounds: u32| {
            let mut total = 0usize;
            for seed in 0..10u64 {
                let mut sim = rounds_sim(200, 1, rounds, seed);
                sim.inject(0, 0, GossipMessage::new(MessageId(1), &b"m"[..]));
                sim.run_to_quiescence();
                total += sim.nodes().filter(|(_, b, _)| b.has_received()).count();
            }
            total
        };
        let one = reached(1);
        let four = reached(4);
        assert!(four > one, "4 rounds ({four}) must beat 1 round ({one})");
    }

    #[test]
    fn zero_rounds_never_relays() {
        let mut sim = rounds_sim(10, 3, 0, 2);
        sim.inject(0, 0, GossipMessage::new(MessageId(1), &b"m"[..]));
        sim.run_to_quiescence();
        assert_eq!(sim.metrics().messages_sent, 0);
        assert_eq!(sim.nodes().filter(|(_, b, _)| b.has_received()).count(), 1);
    }

    #[test]
    fn rounds_are_spaced_by_period() {
        let mut sim = rounds_sim(5, 1, 3, 3);
        sim.inject(0, 0, GossipMessage::new(MessageId(1), &b"m"[..]));
        sim.run_to_quiescence();
        // Quiescence no earlier than 2 periods after infection (3 rounds:
        // t=0, t=10ms, t=20ms) plus 1ms delivery.
        assert!(sim.metrics().last_event_time.as_nanos() >= 20_000_000);
    }
}
