//! Property-based tests for the protocol layer.

use gossip_model::distribution::{FixedFanout, PoissonFanout};
use gossip_protocol::engine::{run_push, ExecutionConfig};
use gossip_protocol::experiment;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Execution outcomes satisfy their structural invariants for
    /// arbitrary parameters.
    #[test]
    fn outcome_invariants(
        n in 2usize..400,
        q in 0.1f64..1.0,
        z in 0.0f64..8.0,
        seed in 0u64..10_000,
    ) {
        let cfg = ExecutionConfig::new(n, q);
        let out = run_push(&cfg, &PoissonFanout::new(z), seed).unwrap();
        prop_assert!(out.nonfailed >= 1, "source is always nonfailed");
        prop_assert!(out.nonfailed <= n);
        prop_assert!(out.nonfailed_reached >= 1, "source always receives");
        prop_assert!(out.nonfailed_reached <= out.nonfailed);
        let r = out.reliability();
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert_eq!(out.is_success(), out.nonfailed_reached == out.nonfailed);
        // Hop histogram covers exactly the reached nonfailed members.
        let hop_total: u64 = out.hop_histogram.iter().sum();
        prop_assert_eq!(hop_total as usize, out.nonfailed_reached);
        // Hop 0 is the source alone.
        if !out.hop_histogram.is_empty() {
            prop_assert_eq!(out.hop_histogram[0], 1);
        }
    }

    /// Fixed fanout f: every infected member sends exactly
    /// min(f, n−1) messages.
    #[test]
    fn message_count_exact_for_fixed_fanout(
        n in 3usize..200,
        f in 0usize..8,
        seed in 0u64..10_000,
    ) {
        let cfg = ExecutionConfig::new(n, 1.0);
        let out = run_push(&cfg, &FixedFanout::new(f), seed).unwrap();
        let per_member = f.min(n - 1) as u64;
        prop_assert_eq!(
            out.messages_sent,
            out.nonfailed_reached as u64 * per_member,
            "reached {} members at fanout {}", out.nonfailed_reached, f
        );
    }

    /// Determinism as a property: same seed, same outcome — including
    /// the hop histogram and observer flag.
    #[test]
    fn outcome_deterministic(n in 2usize..150, seed in 0u64..10_000) {
        let cfg = ExecutionConfig::new(n, 0.8);
        let dist = PoissonFanout::new(3.0);
        prop_assert_eq!(run_push(&cfg, &dist, seed).unwrap(), run_push(&cfg, &dist, seed).unwrap());
    }

    /// The success probability within t executions is monotone in t for
    /// a fixed seed base.
    #[test]
    fn success_within_t_monotone(seed in 0u64..200) {
        let cfg = ExecutionConfig::new(150, 0.9);
        let dist = PoissonFanout::new(4.0);
        let p1 = experiment::success_within_t(&cfg, &dist, 1, 40, seed);
        let p3 = experiment::success_within_t(&cfg, &dist, 3, 40, seed);
        // Same trial seeds: the t=3 pass can only add hits.
        prop_assert!(p3 >= p1 - 1e-12, "p3 = {p3} < p1 = {p1}");
    }

    /// Reliability statistics never leave [0, 1] and use every
    /// replication.
    #[test]
    fn reliability_stats_domain(
        n in 10usize..200,
        q in 0.2f64..1.0,
        reps in 1usize..12,
        seed in 0u64..1000,
    ) {
        let cfg = ExecutionConfig::new(n, q);
        let stats = experiment::reliability(&cfg, &PoissonFanout::new(3.0), reps, seed);
        prop_assert_eq!(stats.count(), reps as u64);
        prop_assert!((0.0..=1.0).contains(&stats.mean()));
        prop_assert!(stats.min() >= 0.0);
        prop_assert!(stats.max() <= 1.0);
    }

    /// The member-receipt histogram always totals the simulation count
    /// and stays within [0, execs].
    #[test]
    fn receipt_histogram_domain(sims in 1usize..10, execs in 1usize..6, seed in 0u64..200) {
        let cfg = ExecutionConfig::new(60, 0.9);
        let hist = experiment::member_receipt_distribution(
            &cfg,
            &PoissonFanout::new(4.0),
            execs,
            sims,
            seed,
        );
        prop_assert_eq!(hist.total(), sims as u64);
        prop_assert_eq!(hist.buckets(), execs + 1);
    }
}
