//! Property tests for the overlay generators: seed determinism,
//! CSR symmetry, degree bounds, and connectivity guarantees.

use gossip_topology::{build_overlay, OverlaySpec, Topology};
use proptest::prelude::*;

/// Strategy over valid `(spec, n)` pairs covering every overlay family.
/// Parameters are constructed so `spec.validate(n)` always holds, which
/// each test double-checks.
fn overlay_and_size() -> impl Strategy<Value = (OverlaySpec, usize)> {
    (0usize..6, 6usize..30, 0usize..20, 0.0f64..1.0).prop_map(|(choice, half_n, j, x)| {
        let n = half_n * 2; // 12..=58, always even
        let spec = match choice {
            0 => OverlaySpec::Complete,
            1 => OverlaySpec::Ring { shortcuts: j },
            2 => OverlaySpec::KRegular { k: 1 + j % 6 },
            3 => OverlaySpec::WattsStrogatz {
                k: 2 + 2 * (j % 3),
                beta: x,
            },
            4 => {
                let kmin = 1 + j % 3;
                OverlaySpec::PowerLaw {
                    alpha: 1.5 + 2.0 * x,
                    kmin,
                    kmax: kmin + 3 + j % 5,
                }
            }
            _ => OverlaySpec::Clustered {
                zones: 2 + j % 3,
                intra: 1 + j % 2,
                inter: j % 3,
            },
        };
        (spec, n)
    })
}

/// Canonical-form check shared by the property tests below; returns the
/// `proptest!` body's error type so `?` propagates failures.
fn check_canonical(topo: &Topology) -> Result<(), String> {
    for v in 0..topo.node_count() as u32 {
        for &w in topo.neighbors(v) {
            prop_assert!(
                topo.neighbors(w).contains(&v),
                "edge {}-{} not symmetric",
                v,
                w
            );
            prop_assert!(w != v, "self-loop at {}", v);
        }
        let list = topo.neighbors(v);
        prop_assert!(
            list.windows(2).all(|p| p[0] < p[1]),
            "neighbour list of {} not strictly sorted",
            v
        );
    }
    Ok(())
}

proptest! {
    /// Same (spec, n, seed) → same adjacency, for every family.
    #[test]
    fn generators_are_seed_deterministic(
        (spec, n) in overlay_and_size(),
        seed in 0u64..100_000,
    ) {
        prop_assert!(spec.validate(n).is_ok(), "strategy produced invalid {:?}", spec);
        let a = build_overlay(&spec, n, seed);
        let b = build_overlay(&spec, n, seed);
        prop_assert_eq!(a, b);
    }

    /// Canonical CSR: symmetric, self-loop free, strictly sorted lists.
    #[test]
    fn adjacency_is_canonical(
        (spec, n) in overlay_and_size(),
        seed in 0u64..100_000,
    ) {
        prop_assert!(spec.validate(n).is_ok());
        let topo = build_overlay(&spec, n, seed);
        prop_assert_eq!(topo.node_count(), n);
        check_canonical(&topo)?;
    }

    /// Each family's degree guarantees hold.
    #[test]
    fn degrees_stay_in_bounds(
        (spec, n) in overlay_and_size(),
        seed in 0u64..100_000,
    ) {
        prop_assert!(spec.validate(n).is_ok());
        let topo = build_overlay(&spec, n, seed);
        for v in 0..n as u32 {
            let d = topo.degree(v);
            match spec {
                OverlaySpec::Complete => prop_assert_eq!(d, n - 1),
                // Every ring node keeps its two cycle edges.
                OverlaySpec::Ring { .. } => prop_assert!(d >= 2 && d < n),
                OverlaySpec::KRegular { k } => prop_assert_eq!(d, k),
                // Rewiring never drops a node below its k/2 clockwise edges.
                OverlaySpec::WattsStrogatz { k, .. } => prop_assert!(d >= k / 2 && d < n),
                // Erasure only removes edges; the parity bump adds at most one.
                OverlaySpec::PowerLaw { kmax, .. } => prop_assert!(d <= kmax + 1),
                // Every node draws at least its own `intra` in-zone peers.
                OverlaySpec::Clustered { intra, .. } => prop_assert!(d >= intra && d < n),
            }
        }
    }

    /// Ring overlays and circulants with k >= 2 are connected by
    /// construction (k = 1 is a perfect matching — disconnected).
    #[test]
    fn ring_and_k_regular_are_connected(
        shortcuts in 0usize..30,
        k in 2usize..8,
        half_n in 5usize..40,
        seed in 0u64..100_000,
    ) {
        let n = half_n * 2; // even, so odd-k circulants are valid too
        let ring = OverlaySpec::Ring { shortcuts };
        prop_assert!(ring.validate(n).is_ok());
        prop_assert!(build_overlay(&ring, n, seed).is_connected());
        let kreg = OverlaySpec::KRegular { k };
        prop_assert!(kreg.validate(n).is_ok());
        prop_assert!(build_overlay(&kreg, n, seed).is_connected());
    }

    /// Watts–Strogatz rewiring conserves the edge count exactly.
    #[test]
    fn watts_strogatz_conserves_edges(
        n in 10usize..80,
        half_k in 1usize..4,
        beta in 0.0f64..1.0,
        seed in 0u64..100_000,
    ) {
        let k = 2 * half_k;
        let spec = OverlaySpec::WattsStrogatz { k, beta };
        prop_assert!(spec.validate(n).is_ok());
        let topo = build_overlay(&spec, n, seed);
        prop_assert_eq!(topo.edge_count(), n * k / 2);
    }
}
