//! Serde-friendly overlay and peer-selection descriptions.
//!
//! A [`TopologySpec`] is pure data — which overlay family the group is
//! wired as, and how a member picks gossip targets from its neighbour
//! list — validated against the group size before anything is built.
//! The default (`Complete` + `UniformGlobal`) is exactly the paper's
//! assumption, so every evaluation layer treats it as "no topology" and
//! keeps its original uniform-sampling code path bit for bit.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::csr::Topology;
use crate::generate;

/// A malformed topology parameter. Field-compatible with the model
/// layer's `InvalidParameter` error so callers can map it losslessly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopologyError {
    /// Parameter name, e.g. `"k"`.
    pub name: &'static str,
    /// Offending value.
    pub value: f64,
    /// Human-readable domain description.
    pub requirement: &'static str,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid topology parameter {} = {}: {}",
            self.name, self.value, self.requirement
        )
    }
}

impl std::error::Error for TopologyError {}

fn invalid(name: &'static str, value: f64, requirement: &'static str) -> TopologyError {
    TopologyError {
        name,
        value,
        requirement,
    }
}

/// Which overlay family the group is wired as.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum OverlaySpec {
    /// Everyone adjacent to everyone — the paper's assumption.
    Complete,
    /// A cycle `0–1–…–(n−1)–0` plus `shortcuts` random chords
    /// (distinct, non-adjacent pairs).
    Ring {
        /// Number of random chords added to the cycle.
        shortcuts: usize,
    },
    /// The `k`-regular circulant lattice: each node adjacent to its
    /// `⌊k/2⌋` nearest successors and predecessors in id order (plus its
    /// antipode when `k` is odd, which requires even `n`).
    KRegular {
        /// Node degree (`n·k` must be even).
        k: usize,
    },
    /// Watts–Strogatz small world: the even-`k` circulant, with each
    /// clockwise lattice edge rewired to a uniform random endpoint with
    /// probability `beta`.
    WattsStrogatz {
        /// Base lattice degree (even, `2 ≤ k < n`).
        k: usize,
        /// Rewiring probability in `[0, 1]`.
        beta: f64,
    },
    /// Erased configuration model with a truncated power-law degree
    /// sequence `deg^(−alpha)` on `[kmin, kmax]` (parity of the stub
    /// count is fixed by bumping one random node).
    PowerLaw {
        /// Exponent `alpha > 0`.
        alpha: f64,
        /// Smallest degree (`≥ 1`).
        kmin: usize,
        /// Largest degree (inclusive, `< n`).
        kmax: usize,
    },
    /// Datacenter-style layout: `zones` contiguous zones; every node
    /// draws `intra` random peers inside its zone and `inter` random
    /// peers outside it (undirected union, so mean degree ≈
    /// `2·(intra + inter)`).
    Clustered {
        /// Number of zones (`≥ 1`; sizes differ by at most one).
        zones: usize,
        /// Random intra-zone peers drawn per node.
        intra: usize,
        /// Random cross-zone peers drawn per node.
        inter: usize,
    },
}

impl OverlaySpec {
    /// Checks every parameter against the group size `n` (which the
    /// scenario layer has already checked to be `≥ 2`).
    pub fn validate(&self, n: usize) -> Result<(), TopologyError> {
        match *self {
            OverlaySpec::Complete => Ok(()),
            OverlaySpec::Ring { shortcuts } => {
                if n < 3 {
                    return Err(invalid("n", n as f64, "a ring overlay needs n >= 3"));
                }
                // Chords join non-adjacent pairs: n(n-3)/2 of them exist.
                let max_chords = n * (n - 3) / 2;
                if shortcuts > max_chords {
                    return Err(invalid(
                        "shortcuts",
                        shortcuts as f64,
                        "ring shortcuts cannot exceed n(n-3)/2 distinct chords",
                    ));
                }
                Ok(())
            }
            OverlaySpec::KRegular { k } => {
                if k == 0 || k >= n {
                    return Err(invalid("k", k as f64, "k-regular degree needs 1 <= k < n"));
                }
                if !(n * k).is_multiple_of(2) {
                    return Err(invalid(
                        "k",
                        k as f64,
                        "k-regular overlay needs an even degree sum (n*k must be even)",
                    ));
                }
                Ok(())
            }
            OverlaySpec::WattsStrogatz { k, beta } => {
                if k < 2 || k >= n {
                    return Err(invalid(
                        "k",
                        k as f64,
                        "Watts-Strogatz lattice degree needs 2 <= k < n",
                    ));
                }
                if k % 2 != 0 {
                    return Err(invalid(
                        "k",
                        k as f64,
                        "Watts-Strogatz lattice degree must be even",
                    ));
                }
                if !(beta.is_finite() && (0.0..=1.0).contains(&beta)) {
                    return Err(invalid(
                        "beta",
                        beta,
                        "rewiring probability must lie in [0, 1]",
                    ));
                }
                Ok(())
            }
            OverlaySpec::PowerLaw { alpha, kmin, kmax } => {
                if !(alpha.is_finite() && alpha > 0.0) {
                    return Err(invalid(
                        "alpha",
                        alpha,
                        "power-law exponent must be positive and finite",
                    ));
                }
                if kmin < 1 || kmin > kmax {
                    return Err(invalid(
                        "kmin",
                        kmin as f64,
                        "power-law degrees need 1 <= kmin <= kmax",
                    ));
                }
                if kmax >= n {
                    return Err(invalid(
                        "kmax",
                        kmax as f64,
                        "power-law degrees must stay below the group size",
                    ));
                }
                Ok(())
            }
            OverlaySpec::Clustered {
                zones,
                intra,
                inter,
            } => {
                if zones == 0 {
                    return Err(invalid(
                        "zones",
                        0.0,
                        "clustered overlay needs at least one zone",
                    ));
                }
                if zones > n {
                    return Err(invalid(
                        "zones",
                        zones as f64,
                        "cannot have more zones than members",
                    ));
                }
                // Contiguous zones: the smallest has floor(n/zones) members.
                let min_zone = n / zones;
                if intra == 0 || intra >= min_zone {
                    return Err(invalid(
                        "intra",
                        intra as f64,
                        "intra-zone degree needs 1 <= intra < smallest zone size",
                    ));
                }
                if zones == 1 {
                    if inter != 0 {
                        return Err(invalid(
                            "inter",
                            inter as f64,
                            "a single-zone overlay has no cross-zone peers",
                        ));
                    }
                } else {
                    // Largest zone = ceil(n/zones); everyone else is eligible.
                    let max_zone = n.div_ceil(zones);
                    if inter > n - max_zone {
                        return Err(invalid(
                            "inter",
                            inter as f64,
                            "cross-zone degree cannot exceed the members outside a zone",
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    /// Short human-readable label, e.g. `ring(s=2000)`.
    pub fn label(&self) -> String {
        match *self {
            OverlaySpec::Complete => String::from("complete"),
            OverlaySpec::Ring { shortcuts } => format!("ring(s={shortcuts})"),
            OverlaySpec::KRegular { k } => format!("kreg({k})"),
            OverlaySpec::WattsStrogatz { k, beta } => format!("ws(k={k},beta={beta})"),
            OverlaySpec::PowerLaw { alpha, kmin, kmax } => {
                format!("plaw(a={alpha},[{kmin},{kmax}])")
            }
            OverlaySpec::Clustered {
                zones,
                intra,
                inter,
            } => format!("clustered(z={zones},intra={intra},inter={inter})"),
        }
    }
}

/// How a member picks gossip targets from its neighbour list (the
/// ciruela peer-selection strategies, generalized to arbitrary
/// overlays).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerSelection {
    /// Uniform over the whole group — the paper's rule. Only valid on
    /// the complete overlay, where "everyone" and "my neighbours"
    /// coincide.
    UniformGlobal,
    /// `f` distinct uniform draws from the neighbour list.
    RandomNeighbour,
    /// The first `f` neighbours after this node in cyclic id order
    /// (deterministic; the `idx+1, idx+2` pattern).
    NextPair,
    /// Exponentially spaced neighbours in cyclic id order — ranks
    /// `1, 2, 4, 8, …` into the rotated neighbour list (deterministic;
    /// the `idx+1, +3, +7, +15` pattern).
    SkipFew,
}

impl PeerSelection {
    /// Short label, e.g. `neigh`.
    pub fn label(&self) -> &'static str {
        match self {
            PeerSelection::UniformGlobal => "uniform",
            PeerSelection::RandomNeighbour => "neigh",
            PeerSelection::NextPair => "next-pair",
            PeerSelection::SkipFew => "skip-few",
        }
    }
}

/// The full topology description a scenario carries: overlay wiring
/// plus peer-selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Overlay family.
    pub overlay: OverlaySpec,
    /// Target-selection policy over the neighbour list.
    pub selection: PeerSelection,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec {
            overlay: OverlaySpec::Complete,
            selection: PeerSelection::UniformGlobal,
        }
    }
}

impl TopologySpec {
    /// A spec with the given overlay and the random-neighbour policy
    /// (the natural generalization of the paper's uniform rule).
    pub fn new(overlay: OverlaySpec) -> Self {
        TopologySpec {
            overlay,
            selection: PeerSelection::RandomNeighbour,
        }
    }

    /// Replaces the peer-selection policy.
    pub fn with_selection(mut self, selection: PeerSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Whether this is the paper's default (`Complete` +
    /// `UniformGlobal`) — the spec every evaluation layer treats as
    /// "no structured topology".
    pub fn is_default(&self) -> bool {
        *self == TopologySpec::default()
    }

    /// Validates overlay parameters against the group size and the
    /// overlay/selection combination.
    pub fn validate(&self, n: usize) -> Result<(), TopologyError> {
        self.overlay.validate(n)?;
        if self.selection == PeerSelection::UniformGlobal && self.overlay != OverlaySpec::Complete {
            return Err(invalid(
                "selection",
                f64::NAN,
                "uniform-global selection requires the complete overlay; structured overlays gossip to neighbours only",
            ));
        }
        Ok(())
    }

    /// One-line label, e.g. `ring(s=2000)/neigh`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.overlay.label(), self.selection.label())
    }

    /// Builds the overlay adjacency, deterministically in `seed`.
    /// Parameters must have been validated.
    pub fn build(&self, n: usize, seed: u64) -> Topology {
        generate::build_overlay(&self.overlay, n, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_assumption() {
        let spec = TopologySpec::default();
        assert!(spec.is_default());
        assert_eq!(spec.overlay, OverlaySpec::Complete);
        assert_eq!(spec.selection, PeerSelection::UniformGlobal);
        assert!(spec.validate(100).is_ok());
        assert!(!TopologySpec::new(OverlaySpec::Ring { shortcuts: 5 }).is_default());
    }

    #[test]
    fn rejects_k_at_least_n() {
        let spec = TopologySpec::new(OverlaySpec::KRegular { k: 50 });
        let err = spec.validate(50).unwrap_err();
        assert_eq!(err.name, "k");
        assert!(spec.validate(51).is_ok());
    }

    #[test]
    fn rejects_odd_degree_sum() {
        // n = 51, k = 3: degree sum 153 is odd — no such graph exists.
        let spec = TopologySpec::new(OverlaySpec::KRegular { k: 3 });
        let err = spec.validate(51).unwrap_err();
        assert!(err.requirement.contains("even degree sum"));
        // Even n makes it fine (antipode edge completes odd k).
        assert!(spec.validate(52).is_ok());
    }

    #[test]
    fn rejects_beta_outside_unit_interval() {
        for beta in [-0.1, 1.5, f64::NAN] {
            let spec = TopologySpec::new(OverlaySpec::WattsStrogatz { k: 4, beta });
            assert_eq!(spec.validate(100).unwrap_err().name, "beta");
        }
        assert!(
            TopologySpec::new(OverlaySpec::WattsStrogatz { k: 4, beta: 0.5 })
                .validate(100)
                .is_ok()
        );
    }

    #[test]
    fn rejects_odd_ws_lattice_degree() {
        let spec = TopologySpec::new(OverlaySpec::WattsStrogatz { k: 5, beta: 0.1 });
        assert_eq!(spec.validate(100).unwrap_err().name, "k");
    }

    #[test]
    fn rejects_zero_zones_and_oversized_intra() {
        let zero = TopologySpec::new(OverlaySpec::Clustered {
            zones: 0,
            intra: 2,
            inter: 1,
        });
        assert_eq!(zero.validate(100).unwrap_err().name, "zones");
        let fat = TopologySpec::new(OverlaySpec::Clustered {
            zones: 10,
            intra: 10, // zone size is 10: only 9 other members inside
            inter: 1,
        });
        assert_eq!(fat.validate(100).unwrap_err().name, "intra");
        let fine = TopologySpec::new(OverlaySpec::Clustered {
            zones: 10,
            intra: 4,
            inter: 1,
        });
        assert!(fine.validate(100).is_ok());
    }

    #[test]
    fn rejects_uniform_global_on_structured_overlays() {
        let spec = TopologySpec::new(OverlaySpec::Ring { shortcuts: 10 })
            .with_selection(PeerSelection::UniformGlobal);
        assert_eq!(spec.validate(100).unwrap_err().name, "selection");
        // But any selection is valid on the complete overlay.
        for selection in [
            PeerSelection::RandomNeighbour,
            PeerSelection::NextPair,
            PeerSelection::SkipFew,
        ] {
            let spec = TopologySpec::new(OverlaySpec::Complete).with_selection(selection);
            assert!(spec.validate(100).is_ok());
        }
    }

    #[test]
    fn rejects_power_law_degrees_reaching_n() {
        let spec = TopologySpec::new(OverlaySpec::PowerLaw {
            alpha: 2.5,
            kmin: 2,
            kmax: 100,
        });
        assert_eq!(spec.validate(100).unwrap_err().name, "kmax");
        let inverted = TopologySpec::new(OverlaySpec::PowerLaw {
            alpha: 2.5,
            kmin: 8,
            kmax: 4,
        });
        assert_eq!(inverted.validate(100).unwrap_err().name, "kmin");
    }

    #[test]
    fn ring_shortcut_budget() {
        // n = 10: 10·7/2 = 35 possible chords.
        let over = TopologySpec::new(OverlaySpec::Ring { shortcuts: 36 });
        assert_eq!(over.validate(10).unwrap_err().name, "shortcuts");
        assert!(TopologySpec::new(OverlaySpec::Ring { shortcuts: 35 })
            .validate(10)
            .is_ok());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TopologySpec::default().label(), "complete/uniform");
        assert_eq!(
            TopologySpec::new(OverlaySpec::WattsStrogatz { k: 8, beta: 0.2 })
                .with_selection(PeerSelection::SkipFew)
                .label(),
            "ws(k=8,beta=0.2)/skip-few"
        );
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = TopologySpec::new(OverlaySpec::Clustered {
            zones: 8,
            intra: 5,
            inter: 2,
        })
        .with_selection(PeerSelection::NextPair);
        let text = serde::json::to_string(&spec).expect("serializes");
        let back: TopologySpec = serde::json::from_str(&text).expect("deserializes");
        assert_eq!(back, spec);
        assert!(text.contains("\"Clustered\""));
        assert!(text.contains("\"zones\":8"));
    }

    #[test]
    fn error_display() {
        let err = TopologySpec::new(OverlaySpec::KRegular { k: 9 })
            .validate(5)
            .unwrap_err();
        assert!(err.to_string().contains("k = 9"));
    }
}
