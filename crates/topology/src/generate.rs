//! Seed-deterministic overlay generators.
//!
//! Every generator is a pure function of `(spec, n, seed)`: the same
//! inputs produce the same adjacency on any machine, which is what lets
//! the graph, protocol, and runtime evaluation layers sample *the same
//! overlay distribution* independently and still be compared replication
//! by replication.

use gossip_stats::alias::AliasTable;
use gossip_stats::rng::Xoshiro256StarStar;

use crate::csr::Topology;
use crate::spec::OverlaySpec;

/// Builds the overlay described by `spec` over `n` nodes. Parameters
/// must have been validated ([`OverlaySpec::validate`]); generators
/// only `debug_assert` them.
pub fn build_overlay(spec: &OverlaySpec, n: usize, seed: u64) -> Topology {
    debug_assert!(spec.validate(n).is_ok(), "unvalidated overlay spec");
    let mut rng = Xoshiro256StarStar::new(seed);
    match *spec {
        OverlaySpec::Complete => Topology::complete(n),
        OverlaySpec::Ring { shortcuts } => ring(n, shortcuts, &mut rng),
        OverlaySpec::KRegular { k } => circulant(n, k),
        OverlaySpec::WattsStrogatz { k, beta } => watts_strogatz(n, k, beta, &mut rng),
        OverlaySpec::PowerLaw { alpha, kmin, kmax } => power_law(n, alpha, kmin, kmax, &mut rng),
        OverlaySpec::Clustered {
            zones,
            intra,
            inter,
        } => clustered(n, zones, intra, inter, &mut rng),
    }
}

/// The cycle plus `shortcuts` random chords. Chords are rejected until
/// distinct and non-adjacent, so the final degree sum is exactly
/// `2(n + shortcuts)`.
fn ring(n: usize, shortcuts: usize, rng: &mut Xoshiro256StarStar) -> Topology {
    let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
    let mut chords = std::collections::HashSet::with_capacity(shortcuts);
    while chords.len() < shortcuts {
        let a = rng.next_below(n as u64) as u32;
        let b = rng.next_below(n as u64) as u32;
        let (lo, hi) = (a.min(b), a.max(b));
        // Reject self-pairs and cycle-adjacent pairs (already edges).
        if lo == hi || hi - lo == 1 || (lo == 0 && hi as usize == n - 1) {
            continue;
        }
        if chords.insert((lo, hi)) {
            edges.push((lo, hi));
        }
    }
    Topology::from_edges(n, &edges)
}

/// The `k`-regular circulant: offsets `±1..=⌊k/2⌋`, plus the antipode
/// for odd `k` (validation guarantees even `n` then). Deterministic —
/// no randomness involved.
fn circulant(n: usize, k: usize) -> Topology {
    let mut edges = Vec::with_capacity(n * k.div_ceil(2));
    for v in 0..n as u32 {
        for j in 1..=(k / 2) as u32 {
            edges.push((v, (v + j) % n as u32));
        }
    }
    if k % 2 == 1 {
        let half = (n / 2) as u32;
        for v in 0..half {
            edges.push((v, v + half));
        }
    }
    Topology::from_edges(n, &edges)
}

/// Watts–Strogatz: the even-`k` circulant with each clockwise lattice
/// edge independently rewired (with probability `beta`) to a uniform
/// random endpoint that is neither the node itself nor already a
/// neighbour.
fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut Xoshiro256StarStar) -> Topology {
    // Adjacency sets as sorted Vecs: k is small, linear scans suffice.
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::with_capacity(k); n];
    let connect = |adj: &mut Vec<Vec<u32>>, a: u32, b: u32| {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    };
    for v in 0..n as u32 {
        for j in 1..=(k / 2) as u32 {
            connect(&mut adjacency, v, (v + j) % n as u32);
        }
    }
    for v in 0..n as u32 {
        for j in 1..=(k / 2) as u32 {
            if !rng.next_bool(beta) {
                continue;
            }
            let old = (v + j) % n as u32;
            // The lattice edge may already have been rewired away by an
            // earlier pass over `old`; only rewire edges still present.
            if !adjacency[v as usize].contains(&old) {
                continue;
            }
            // A node adjacent to everyone else has nowhere to rewire.
            if adjacency[v as usize].len() >= n - 1 {
                continue;
            }
            let target = loop {
                let t = rng.next_below(n as u64) as u32;
                if t != v && !adjacency[v as usize].contains(&t) {
                    break t;
                }
            };
            adjacency[v as usize].retain(|&u| u != old);
            adjacency[old as usize].retain(|&u| u != v);
            connect(&mut adjacency, v, target);
        }
    }
    let edges: Vec<(u32, u32)> = adjacency
        .iter()
        .enumerate()
        .flat_map(|(a, list)| {
            list.iter()
                .filter(move |&&b| (a as u32) < b)
                .map(move |&b| (a as u32, b))
        })
        .collect();
    Topology::from_edges(n, &edges)
}

/// Erased configuration model over a truncated power-law degree
/// sequence: sample degrees via an alias table, fix stub parity by
/// bumping one random node, stub-match with a Fisher–Yates shuffle, and
/// let CSR canonicalization erase self-loops and parallel edges.
fn power_law(
    n: usize,
    alpha: f64,
    kmin: usize,
    kmax: usize,
    rng: &mut Xoshiro256StarStar,
) -> Topology {
    let weights: Vec<f64> = (kmin..=kmax).map(|k| (k as f64).powf(-alpha)).collect();
    let table = AliasTable::new(&weights);
    let mut degrees: Vec<usize> = (0..n).map(|_| kmin + table.sample(rng)).collect();
    let total: usize = degrees.iter().sum();
    if total % 2 == 1 {
        // Odd stub count: bump a random node (clamped to kmax + 1 at
        // worst, which erasure trims back below n).
        let bump = rng.next_below(n as u64) as usize;
        degrees[bump] += 1;
    }
    let mut stubs: Vec<u32> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as u32, d));
    }
    // Fisher–Yates, then pair consecutive stubs.
    for i in (1..stubs.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        stubs.swap(i, j);
    }
    let edges: Vec<(u32, u32)> = stubs.chunks_exact(2).map(|p| (p[0], p[1])).collect();
    Topology::from_edges(n, &edges)
}

/// Clustered layout: contiguous zones of near-equal size; each node
/// draws `intra` distinct random peers inside its zone and `inter`
/// outside it. The undirected union gives mean degree ≈ 2(intra+inter).
fn clustered(
    n: usize,
    zones: usize,
    intra: usize,
    inter: usize,
    rng: &mut Xoshiro256StarStar,
) -> Topology {
    // Zone of node v: contiguous blocks, sizes differing by at most one.
    let zone_of = |v: usize| v * zones / n;
    // Inverse of `zone_of`: zone z covers [⌈zn/zones⌉, ⌈(z+1)n/zones⌉).
    let zone_bounds = |z: usize| ((z * n).div_ceil(zones), ((z + 1) * n).div_ceil(zones));
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * (intra + inter));
    for v in 0..n {
        let z = zone_of(v);
        let (lo, hi) = zone_bounds(z);
        let size = hi - lo;
        // Intra-zone peers: distinct, excluding self.
        let mut chosen: Vec<u32> = Vec::with_capacity(intra);
        while chosen.len() < intra.min(size - 1) {
            let t = (lo + rng.next_below(size as u64) as usize) as u32;
            if t as usize == v || chosen.contains(&t) {
                continue;
            }
            chosen.push(t);
            edges.push((v as u32, t));
        }
        // Cross-zone peers: distinct, anywhere outside [lo, hi).
        let outside = n - size;
        let mut remote: Vec<u32> = Vec::with_capacity(inter);
        while remote.len() < inter.min(outside) {
            let mut t = rng.next_below(outside as u64) as usize;
            if t >= lo {
                t += size; // skip over the home zone
            }
            let t = t as u32;
            if remote.contains(&t) {
                continue;
            }
            remote.push(t);
            edges.push((v as u32, t));
        }
    }
    Topology::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_has_cycle_plus_chords() {
        let t = build_overlay(&OverlaySpec::Ring { shortcuts: 50 }, 200, 7);
        assert_eq!(t.edge_count(), 250);
        assert!(t.is_connected());
        for v in 0..200u32 {
            assert!(t.neighbors(v).contains(&((v + 1) % 200)));
        }
    }

    #[test]
    fn circulant_is_exactly_k_regular() {
        for (n, k) in [(100, 6), (101, 4), (100, 5)] {
            let t = build_overlay(&OverlaySpec::KRegular { k }, n, 1);
            for v in 0..n as u32 {
                assert_eq!(t.degree(v), k, "node {v} in circulant({n},{k})");
            }
            assert!(t.is_connected());
        }
    }

    #[test]
    fn watts_strogatz_preserves_edge_count_and_min_degree() {
        let (n, k) = (300, 6);
        let t = build_overlay(&OverlaySpec::WattsStrogatz { k, beta: 0.3 }, n, 9);
        // Rewiring moves edges, never creates or destroys them.
        assert_eq!(t.edge_count(), n * k / 2);
        for v in 0..n as u32 {
            // A node keeps its k/2 clockwise edges (possibly rewired),
            // so its degree never drops below k/2.
            assert!(t.degree(v) >= k / 2, "node {v} degree {}", t.degree(v));
        }
    }

    #[test]
    fn watts_strogatz_beta_zero_is_the_lattice() {
        let lattice = build_overlay(&OverlaySpec::KRegular { k: 4 }, 50, 3);
        let ws = build_overlay(&OverlaySpec::WattsStrogatz { k: 4, beta: 0.0 }, 50, 3);
        assert_eq!(ws, lattice);
    }

    #[test]
    fn power_law_degrees_bounded_and_heavy_tailed() {
        let spec = OverlaySpec::PowerLaw {
            alpha: 2.5,
            kmin: 2,
            kmax: 30,
        };
        let t = build_overlay(&spec, 1000, 11);
        let mut max_deg = 0;
        for v in 0..1000u32 {
            // Erasure only removes edges; the bump adds at most one.
            assert!(t.degree(v) <= 31, "node {v} degree {}", t.degree(v));
            max_deg = max_deg.max(t.degree(v));
        }
        assert!(max_deg > 10, "tail never materialized (max {max_deg})");
        assert!(t.mean_degree() > 2.0);
    }

    #[test]
    fn clustered_keeps_zones_dense_and_bridges_sparse() {
        let spec = OverlaySpec::Clustered {
            zones: 10,
            intra: 4,
            inter: 1,
        };
        let n = 500;
        let t = build_overlay(&spec, n, 13);
        let zone_of = |v: usize| v * 10 / n;
        let mut cross = 0usize;
        let mut total = 0usize;
        for (a, b) in t.edges() {
            total += 1;
            if zone_of(a as usize) != zone_of(b as usize) {
                cross += 1;
            }
        }
        let cross_fraction = cross as f64 / total as f64;
        assert!(
            cross_fraction < 0.3,
            "cross-zone fraction {cross_fraction} too high"
        );
        assert!(cross > 0, "zones must be bridged");
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let specs = [
            OverlaySpec::Ring { shortcuts: 40 },
            OverlaySpec::WattsStrogatz { k: 6, beta: 0.2 },
            OverlaySpec::PowerLaw {
                alpha: 2.2,
                kmin: 2,
                kmax: 20,
            },
            OverlaySpec::Clustered {
                zones: 5,
                intra: 3,
                inter: 1,
            },
        ];
        for spec in &specs {
            let a = build_overlay(spec, 300, 0xABCD);
            let b = build_overlay(spec, 300, 0xABCD);
            assert_eq!(a, b, "{spec:?} not deterministic");
            let c = build_overlay(spec, 300, 0xABCE);
            assert_ne!(a, c, "{spec:?} ignores its seed");
        }
    }
}
