//! Compact undirected overlay adjacency in CSR form.
//!
//! Same layout discipline as the random-graph substrate (two flat
//! arrays, `u32` node ids), but *canonical*: self-loops dropped,
//! parallel edges merged, and every neighbour list sorted ascending.
//! Canonical form is what makes the deterministic peer-selection
//! policies (next-pair, skip-few) well defined — "the first neighbour
//! after me in cyclic id order" needs an unambiguous order.

/// An undirected overlay over nodes `0..n`, canonical CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Topology {
    /// Builds a canonical topology from an undirected edge list:
    /// self-loops are dropped, parallel edges merged, neighbour lists
    /// sorted.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        assert!(n <= u32::MAX as usize, "node ids limited to u32");
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range"
            );
            if a == b {
                continue; // a member never gossips to itself
            }
            adjacency[a as usize].push(b);
            adjacency[b as usize].push(a);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::new();
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Self { offsets, neighbors }
    }

    /// The complete overlay `K_n` (everyone adjacent to everyone),
    /// constructed directly — no `O(n²)` edge list materialized.
    pub fn complete(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "node ids limited to u32");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
        offsets.push(0usize);
        for v in 0..n as u32 {
            for u in 0..n as u32 {
                if u != v {
                    neighbors.push(u);
                }
            }
            offsets.push(neighbors.len());
        }
        Self { offsets, neighbors }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbours of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Mean degree `2|E|/n`.
    pub fn mean_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.node_count() as f64
    }

    /// Iterator over all edges `(a, b)` with `a < b`, each reported once.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.node_count() as u32).flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Whether the overlay is connected (BFS from node 0; the empty
    /// overlay counts as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = Vec::with_capacity(n / 4 + 1);
        seen[0] = true;
        queue.push(0u32);
        let mut cursor = 0usize;
        while cursor < queue.len() {
            let v = queue[cursor];
            cursor += 1;
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push(w);
                }
            }
        }
        queue.len() == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_edges() {
        // Self-loop dropped, parallel edge merged, lists sorted.
        let t = Topology::from_edges(4, &[(2, 1), (1, 2), (0, 0), (3, 1)]);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edge_count(), 2);
        assert_eq!(t.neighbors(1), &[2, 3]);
        assert_eq!(t.degree(0), 0);
    }

    #[test]
    fn symmetry_holds() {
        let t = Topology::from_edges(5, &[(0, 1), (1, 2), (3, 4), (4, 0)]);
        for a in 0..5u32 {
            for &b in t.neighbors(a) {
                assert!(t.neighbors(b).contains(&a), "edge {a}-{b} not symmetric");
            }
        }
    }

    #[test]
    fn complete_shape() {
        let t = Topology::complete(6);
        assert_eq!(t.edge_count(), 15);
        for v in 0..6u32 {
            assert_eq!(t.degree(v), 5);
            assert!(!t.neighbors(v).contains(&v));
        }
        assert!(t.is_connected());
        assert!((t.mean_degree() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_detects_islands() {
        let joined = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(joined.is_connected());
        let split = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!split.is_connected());
    }

    #[test]
    fn edges_iterator_reports_each_once() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut edges: Vec<_> = t.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edges() {
        Topology::from_edges(2, &[(0, 7)]);
    }
}
