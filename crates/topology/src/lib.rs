//! Overlay topologies and peer-selection policies for structured gossip.
//!
//! The source paper analyses gossip over the *complete* overlay: every
//! member can reach every other, and targets are drawn uniformly from
//! the whole group. Real deployments gossip over structured overlays —
//! rings with shortcuts, lattices, small-world rewirings, scale-free
//! graphs, clustered data-centre layouts — and the critical coverage
//! probability `q_c` shifts accordingly. This crate supplies the
//! machinery to measure that shift:
//!
//! - [`Topology`]: compact canonical CSR adjacency (sorted neighbour
//!   lists, no self-loops or parallel edges).
//! - [`OverlaySpec`]: six seed-deterministic generators, validated
//!   before construction.
//! - [`PeerSelection`]: how a node picks gossip targets from its
//!   neighbourhood, via [`select_targets`].
//! - [`TopologySpec`]: the serde-friendly pair of overlay + selection
//!   that the `Scenario` API embeds; its default (`Complete` +
//!   `UniformGlobal`) is exactly the paper's model.
//!
//! Every generator is a pure function of `(spec, n, seed)`, so the
//! analytic, percolation, Monte-Carlo, and live-runtime evaluation
//! layers can each rebuild the same overlay distribution independently.

mod csr;
mod generate;
mod select;
mod spec;

pub use csr::Topology;
pub use generate::build_overlay;
pub use select::select_targets;
pub use spec::{OverlaySpec, PeerSelection, TopologyError, TopologySpec};
