//! Peer-selection policies over a fixed overlay.
//!
//! Selection operates on the *sorted* neighbour list that canonical CSR
//! form guarantees, so the deterministic policies (`NextPair`,
//! `SkipFew`) mean the same thing on every machine and every run.

use gossip_stats::rng::Xoshiro256StarStar;

use crate::csr::Topology;
use crate::spec::PeerSelection;

/// Picks up to `fanout` gossip targets for `node` from its overlay
/// neighbourhood and appends them to `out` (cleared first).
///
/// All policies return distinct targets and never include `node`
/// itself. `UniformGlobal` and `RandomNeighbour` return
/// `min(fanout, degree)` targets; the deterministic policies may return
/// fewer (`SkipFew` skips exponentially through the neighbour ranks and
/// stops once the offsets wrap onto already-chosen peers).
pub fn select_targets(
    topo: &Topology,
    policy: PeerSelection,
    node: u32,
    fanout: usize,
    rng: &mut Xoshiro256StarStar,
    out: &mut Vec<u32>,
) {
    out.clear();
    let neighbors = topo.neighbors(node);
    if fanout == 0 || neighbors.is_empty() {
        return;
    }
    match policy {
        // On the complete overlay the neighbour list *is* the rest of
        // the group, so this reproduces the paper's uniform member
        // selection; on structured overlays validation forbids it.
        PeerSelection::UniformGlobal | PeerSelection::RandomNeighbour => {
            sample_distinct(neighbors, fanout, rng, out);
        }
        PeerSelection::NextPair => {
            // The first `fanout` neighbours after `node` in cyclic id
            // order (ciruela's "next two in the ring" generalized).
            let start = neighbors.partition_point(|&u| u <= node);
            for i in 0..fanout.min(neighbors.len()) {
                out.push(neighbors[(start + i) % neighbors.len()]);
            }
        }
        PeerSelection::SkipFew => {
            // Exponentially spaced ranks past `node`: offsets
            // 2^i − 1 = 0, 1, 3, 7, 15, … into the rotated list.
            let start = neighbors.partition_point(|&u| u <= node);
            let mut offset = 0usize;
            for i in 0..fanout {
                let peer = neighbors[(start + offset) % neighbors.len()];
                if out.contains(&peer) {
                    break; // wrapped onto an earlier pick: list exhausted
                }
                out.push(peer);
                offset = (1usize << (i + 1).min(usize::BITS as usize - 1)) - 1;
            }
        }
    }
}

/// Draws `min(k, pool.len())` distinct elements from `pool` uniformly
/// at random. Small-k rejection sampling when the pool is large, a
/// partial Fisher–Yates over a copy otherwise.
fn sample_distinct(pool: &[u32], k: usize, rng: &mut Xoshiro256StarStar, out: &mut Vec<u32>) {
    let k = k.min(pool.len());
    if k == pool.len() {
        out.extend_from_slice(pool);
        return;
    }
    if k * 4 <= pool.len() {
        while out.len() < k {
            let pick = pool[rng.next_below(pool.len() as u64) as usize];
            if !out.contains(&pick) {
                out.push(pick);
            }
        }
    } else {
        let mut copy = pool.to_vec();
        for i in 0..k {
            let j = i + rng.next_below((copy.len() - i) as u64) as usize;
            copy.swap(i, j);
            out.push(copy[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::OverlaySpec;

    fn ring(n: usize) -> Topology {
        crate::generate::build_overlay(&OverlaySpec::KRegular { k: 6 }, n, 42)
    }

    #[test]
    fn random_neighbour_stays_in_neighbourhood() {
        let t = ring(40);
        let mut rng = Xoshiro256StarStar::new(5);
        let mut out = Vec::new();
        for node in 0..40u32 {
            select_targets(
                &t,
                PeerSelection::RandomNeighbour,
                node,
                3,
                &mut rng,
                &mut out,
            );
            assert_eq!(out.len(), 3);
            for &p in &out {
                assert!(t.neighbors(node).contains(&p));
                assert_ne!(p, node);
            }
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), out.len(), "duplicate targets for {node}");
        }
    }

    #[test]
    fn random_neighbour_caps_at_degree() {
        let t = ring(40);
        let mut rng = Xoshiro256StarStar::new(5);
        let mut out = Vec::new();
        select_targets(
            &t,
            PeerSelection::RandomNeighbour,
            0,
            99,
            &mut rng,
            &mut out,
        );
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn uniform_global_on_complete_covers_whole_group() {
        let t = Topology::complete(10);
        let mut rng = Xoshiro256StarStar::new(7);
        let mut out = Vec::new();
        select_targets(&t, PeerSelection::UniformGlobal, 4, 9, &mut rng, &mut out);
        assert_eq!(out.len(), 9);
        assert!(!out.contains(&4));
    }

    #[test]
    fn next_pair_is_deterministic_and_cyclic() {
        let t = ring(12); // neighbours of 11 include 0, 1, 2 (wrap)
        let mut rng = Xoshiro256StarStar::new(1);
        let mut out = Vec::new();
        select_targets(&t, PeerSelection::NextPair, 11, 2, &mut rng, &mut out);
        assert_eq!(out, vec![0, 1]);
        // No RNG involvement: identical on repeat.
        let mut again = Vec::new();
        select_targets(&t, PeerSelection::NextPair, 11, 2, &mut rng, &mut again);
        assert_eq!(out, again);
    }

    #[test]
    fn skip_few_spaces_exponentially() {
        let t = Topology::complete(40);
        let mut rng = Xoshiro256StarStar::new(1);
        let mut out = Vec::new();
        select_targets(&t, PeerSelection::SkipFew, 0, 4, &mut rng, &mut out);
        // Neighbours of 0 are 1..=39; ranks 0,1,3,7 → ids 1,2,4,8.
        assert_eq!(out, vec![1, 2, 4, 8]);
    }

    #[test]
    fn skip_few_stops_on_wrap() {
        let t = ring(40); // degree 6
        let mut rng = Xoshiro256StarStar::new(1);
        let mut out = Vec::new();
        select_targets(&t, PeerSelection::SkipFew, 0, 6, &mut rng, &mut out);
        assert!(!out.is_empty() && out.len() <= 6);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), out.len());
    }

    #[test]
    fn zero_fanout_and_isolated_nodes_yield_nothing() {
        let t = Topology::from_edges(3, &[(0, 1)]);
        let mut rng = Xoshiro256StarStar::new(1);
        let mut out = vec![9, 9];
        select_targets(&t, PeerSelection::RandomNeighbour, 2, 3, &mut rng, &mut out);
        assert!(out.is_empty(), "isolated node must select nobody");
        select_targets(&t, PeerSelection::RandomNeighbour, 0, 0, &mut rng, &mut out);
        assert!(out.is_empty());
    }
}
