//! Property-based tests for the statistics substrate.

use gossip_stats::alias::AliasTable;
use gossip_stats::binomial::Binomial;
use gossip_stats::descriptive::OnlineStats;
use gossip_stats::gof::total_variation_distance;
use gossip_stats::poisson::Poisson;
use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};
use gossip_stats::special::{beta_inc, gamma_p, gamma_q, ln_choose, ln_gamma};
use proptest::prelude::*;

proptest! {
    /// ln Γ satisfies the recurrence Γ(x+1) = x·Γ(x).
    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "x = {x}");
    }

    /// P(a, x) + Q(a, x) = 1 and both lie in [0, 1].
    #[test]
    fn incomplete_gamma_complement(a in 0.1f64..80.0, x in 0.0f64..120.0) {
        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&q));
        prop_assert!((p + q - 1.0).abs() < 1e-9);
    }

    /// P(a, ·) is monotone non-decreasing in x.
    #[test]
    fn gamma_p_monotone(a in 0.2f64..40.0, x in 0.0f64..60.0, dx in 0.0f64..5.0) {
        prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-12);
    }

    /// Incomplete beta is a CDF in x: monotone, 0 at 0, 1 at 1.
    #[test]
    fn beta_inc_is_cdf(a in 0.2f64..20.0, b in 0.2f64..20.0, x in 0.0f64..1.0, dx in 0.0f64..0.2) {
        let hi = (x + dx).min(1.0);
        prop_assert!(beta_inc(a, b, hi) >= beta_inc(a, b, x) - 1e-9);
        prop_assert_eq!(beta_inc(a, b, 0.0), 0.0);
        prop_assert_eq!(beta_inc(a, b, 1.0), 1.0);
    }

    /// Pascal's rule in log space: C(n,k) = C(n−1,k−1) + C(n−1,k).
    #[test]
    fn pascal_rule(n in 1u64..60, k in 1u64..60) {
        prop_assume!(k <= n);
        let lhs = ln_choose(n, k).exp();
        let rhs = if k == n {
            ln_choose(n - 1, k - 1).exp()
        } else {
            ln_choose(n - 1, k - 1).exp() + ln_choose(n - 1, k).exp()
        };
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs), "C({n},{k})");
    }

    /// Binomial pmf sums to 1 and cdf is its running sum.
    #[test]
    fn binomial_pmf_cdf_consistent(n in 1u64..80, p in 0.0f64..1.0) {
        let b = Binomial::new(n, p);
        let pmf = b.pmf_vector();
        let total: f64 = pmf.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        let mut acc = 0.0;
        for (k, &m) in pmf.iter().enumerate() {
            acc += m;
            prop_assert!((b.cdf(k as u64) - acc).abs() < 1e-8, "cdf({k})");
        }
    }

    /// Poisson samples never stray absurdly far from the mean, and the
    /// sample mean over a batch is close to λ.
    #[test]
    fn poisson_sampling_sane(lambda in 0.1f64..60.0, seed in 0u64..1000) {
        let d = Poisson::new(lambda);
        let mut rng = Xoshiro256StarStar::new(seed);
        let n = 2000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng) as f64;
            prop_assert!(x < lambda + 20.0 * lambda.sqrt() + 30.0);
            sum += x;
        }
        let mean = sum / n as f64;
        prop_assert!(
            (mean - lambda).abs() < 6.0 * (lambda / n as f64).sqrt() + 0.05,
            "mean {mean} vs λ {lambda}"
        );
    }

    /// Alias tables reproduce their weight vector in TV distance.
    #[test]
    fn alias_matches_weights(
        weights in proptest::collection::vec(0.0f64..5.0, 1..12),
        seed in 0u64..200,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.5);
        let table = AliasTable::new(&weights);
        let total: f64 = weights.iter().sum();
        let target: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut rng = Xoshiro256StarStar::new(seed);
        let draws = 30_000;
        let mut counts = vec![0.0f64; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1.0;
        }
        for c in &mut counts {
            *c /= draws as f64;
        }
        let tv = total_variation_distance(&counts, &target);
        prop_assert!(tv < 0.03, "TV = {tv}");
    }

    /// Merging OnlineStats equals pushing everything into one.
    #[test]
    fn online_stats_merge_associates(
        xs in proptest::collection::vec(-1e3f64..1e3, 0..60),
        split in 0usize..60,
    ) {
        let split = split.min(xs.len());
        let whole = OnlineStats::from_slice(&xs);
        let mut left = OnlineStats::from_slice(&xs[..split]);
        let right = OnlineStats::from_slice(&xs[split..]);
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }

    /// Seed derivation is injective-ish: distinct indices give distinct
    /// seeds (collision would break replication independence).
    #[test]
    fn seed_derivation_distinct(base in 0u64..u64::MAX, i in 0u64..10_000, j in 0u64..10_000) {
        prop_assume!(i != j);
        prop_assert_ne!(SplitMix64::derive(base, i), SplitMix64::derive(base, j));
    }
}
