//! The Binomial distribution `B(n, p)`.
//!
//! The paper's success-of-gossiping calculus treats the `t` repeated
//! executions of the gossip algorithm as Bernoulli trials: the number of
//! executions in which a given nonfailed member receives the message is
//! `X ~ B(t, p_r)` (paper §4.2, Eq. 5). Figures 6 and 7 compare the
//! simulated distribution of the per-simulation success count against
//! `B(20, 0.967)`; this module supplies the pmf/cdf machinery for those
//! comparisons plus an exact inversion sampler.

use crate::rng::Xoshiro256StarStar;
use crate::special::{beta_inc, ln_choose};

/// Binomial distribution with `n` trials and success probability `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates `B(n, p)`. Panics if `p` is outside `[0, 1]` or not finite.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "binomial p must be in [0,1], got {p}"
        );
        Self { n, p }
    }

    /// Number of trials.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1−p)`.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Log probability mass `ln P(X = k)`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        // Degenerate endpoints avoid 0·ln 0.
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n, k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    /// Probability mass `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// The full pmf as a vector of length `n + 1` (index `k` holds
    /// `P(X = k)`), computed by the stable multiplicative recurrence.
    pub fn pmf_vector(&self) -> Vec<f64> {
        let n = self.n as usize;
        let mut out = vec![0.0; n + 1];
        if self.p == 0.0 {
            out[0] = 1.0;
            return out;
        }
        if self.p == 1.0 {
            out[n] = 1.0;
            return out;
        }
        // Start from the mode in log space to dodge underflow at the tails.
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.pmf(k as u64);
        }
        out
    }

    /// Cumulative distribution `P(X ≤ k)` via the regularized incomplete
    /// beta function: `P(X ≤ k) = I_{1−p}(n−k, k+1)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0; // k < n here
        }
        beta_inc((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
    }

    /// Survival function `P(X ≥ k)`.
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return 0.0; // k >= 1
        }
        if self.p == 1.0 {
            return 1.0; // k <= n
        }
        beta_inc(k as f64, (self.n - k + 1) as f64, self.p)
    }

    /// Smallest `k` with `P(X ≤ k) ≥ prob` (the quantile function).
    pub fn quantile(&self, prob: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&prob),
            "quantile prob must be in [0,1], got {prob}"
        );
        if prob >= 1.0 {
            return self.n;
        }
        // The n ≤ a-few-thousand cases in this workspace make a linear scan
        // from the mean cheap and exact.
        let mut k = 0u64;
        while k < self.n && self.cdf(k) < prob {
            k += 1;
        }
        k
    }

    /// Draws one sample by inversion (sequential search from 0), which is
    /// exact and fast for the small `n` (≤ a few hundred) used here.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        if self.p == 0.0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        // For small n, just run the trials: branch-predictable and exact.
        if self.n <= 64 {
            let mut count = 0u64;
            for _ in 0..self.n {
                if rng.next_bool(self.p) {
                    count += 1;
                }
            }
            return count;
        }
        // Inversion with the multiplicative recurrence
        // P(k+1) = P(k) · (n−k)/(k+1) · p/(1−p).
        let u = rng.next_f64();
        let ratio = self.p / (1.0 - self.p);
        let mut k = 0u64;
        let mut pmf = (1.0 - self.p).powi(self.n as i32);
        let mut cdf = pmf;
        while cdf < u && k < self.n {
            pmf *= (self.n - k) as f64 / (k + 1) as f64 * ratio;
            cdf += pmf;
            k += 1;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[
            (20u64, 0.967f64),
            (20, 0.5),
            (100, 0.01),
            (7, 1.0),
            (7, 0.0),
        ] {
            let total: f64 = Binomial::new(n, p).pmf_vector().iter().sum();
            assert!(close(total, 1.0, 1e-10), "sum {total} for n={n}, p={p}");
        }
    }

    #[test]
    fn paper_case_b20_0967() {
        // The analysis line in Figs. 6/7: B(20, 0.967). Mode must be at 20
        // and the pmf there equals 0.967^20 ≈ 0.5113.
        let b = Binomial::new(20, 0.967);
        let p20 = b.pmf(20);
        assert!(close(p20, 0.967f64.powi(20), 1e-12));
        assert!((0.50..0.52).contains(&p20));
        let p19 = b.pmf(19);
        assert!((0.34..0.36).contains(&p19), "pmf(19) = {p19}");
    }

    #[test]
    fn cdf_matches_direct_sum() {
        let b = Binomial::new(15, 0.3);
        let mut acc = 0.0;
        for k in 0..=15u64 {
            acc += b.pmf(k);
            assert!(
                close(b.cdf(k), acc, 1e-10),
                "cdf({k}) = {} vs sum {}",
                b.cdf(k),
                acc
            );
        }
    }

    #[test]
    fn sf_complements_cdf() {
        let b = Binomial::new(30, 0.6);
        for k in 1..=30u64 {
            assert!(close(b.sf(k), 1.0 - b.cdf(k - 1), 1e-10), "k = {k}");
        }
        assert_eq!(b.sf(0), 1.0);
        assert_eq!(b.sf(31), 0.0);
    }

    #[test]
    fn success_of_gossiping_eq5() {
        // Eq. (5): Pr(success) = P(X >= 1) = 1 − (1−p_r)^t.
        let t = 20u64;
        let pr = 0.967;
        let b = Binomial::new(t, pr);
        let expected = 1.0 - (1.0 - pr).powi(t as i32);
        assert!(close(b.sf(1), expected, 1e-12));
    }

    #[test]
    fn quantile_is_inverse_of_cdf() {
        let b = Binomial::new(20, 0.4);
        for &q in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            let k = b.quantile(q);
            assert!(b.cdf(k) >= q);
            if k > 0 {
                assert!(b.cdf(k - 1) < q);
            }
        }
        assert_eq!(b.quantile(1.0), 20);
    }

    #[test]
    fn sampling_matches_moments() {
        let b = Binomial::new(20, 0.967);
        let mut rng = Xoshiro256StarStar::new(12345);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = b.sample(&mut rng) as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(
            (mean - b.mean()).abs() < 0.02,
            "mean {mean} vs {}",
            b.mean()
        );
        assert!(
            (var - b.variance()).abs() < 0.05,
            "var {var} vs {}",
            b.variance()
        );
    }

    #[test]
    fn sampling_large_n_inversion_path() {
        let b = Binomial::new(500, 0.1);
        let mut rng = Xoshiro256StarStar::new(777);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = b.sample(&mut rng);
            assert!(x <= 500);
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn degenerate_endpoints() {
        let zero = Binomial::new(10, 0.0);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.sample(&mut Xoshiro256StarStar::new(1)), 0);
        let one = Binomial::new(10, 1.0);
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.sample(&mut Xoshiro256StarStar::new(1)), 10);
    }

    #[test]
    #[should_panic(expected = "binomial p must be in [0,1]")]
    fn rejects_bad_p() {
        Binomial::new(5, 1.5);
    }
}
