//! Goodness-of-fit utilities.
//!
//! The paper's Figs. 6/7 claim the simulated success-count distribution
//! "tallies with" `B(20, 0.967)`. We make that claim checkable: the
//! integration tests run a Pearson chi-square test of the simulated
//! histogram against the binomial pmf, and the figure binaries report the
//! total-variation distance between the two.

use crate::special::gamma_q;

/// Result of a chi-square goodness-of-fit computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChiSquareOutcome {
    /// Pearson statistic Σ (O − E)² / E over the pooled cells.
    pub statistic: f64,
    /// Degrees of freedom after pooling (cells − 1).
    pub dof: usize,
    /// Upper-tail p-value `Q(dof/2, statistic/2)`.
    pub p_value: f64,
    /// Number of cells after low-expectation pooling.
    pub cells: usize,
}

/// Pearson chi-square statistic for observed counts against expected
/// counts. Slices must be the same length; no pooling is applied.
pub fn chi_square_statistic(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed/expected length mismatch"
    );
    observed
        .iter()
        .zip(expected)
        .filter(|(_, &e)| e > 0.0)
        .map(|(&o, &e)| {
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

/// Full chi-square goodness-of-fit test of observed counts against a model
/// pmf.
///
/// Cells whose expected count falls below `min_expected` (the classic rule
/// of thumb is 5) are pooled with their right neighbour before computing
/// the statistic, which keeps the chi-square approximation honest for
/// sparse tails like the left side of `B(20, 0.967)`.
pub fn chi_square_pvalue(
    observed: &[u64],
    model_pmf: &[f64],
    min_expected: f64,
) -> ChiSquareOutcome {
    assert_eq!(observed.len(), model_pmf.len(), "length mismatch");
    assert!(!observed.is_empty(), "need at least one cell");
    let total: u64 = observed.iter().sum();
    assert!(total > 0, "need at least one observation");
    let pmf_sum: f64 = model_pmf.iter().sum();
    assert!(
        (pmf_sum - 1.0).abs() < 1e-6,
        "model pmf must sum to 1 (got {pmf_sum})"
    );

    // Pool adjacent cells until every pooled cell has expectation >=
    // min_expected (the final cell absorbs any small remainder).
    let mut pooled_obs: Vec<f64> = Vec::with_capacity(observed.len());
    let mut pooled_exp: Vec<f64> = Vec::with_capacity(observed.len());
    let mut acc_o = 0.0;
    let mut acc_e = 0.0;
    for (&o, &p) in observed.iter().zip(model_pmf) {
        acc_o += o as f64;
        acc_e += p * total as f64;
        if acc_e >= min_expected {
            pooled_obs.push(acc_o);
            pooled_exp.push(acc_e);
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    if acc_e > 0.0 || acc_o > 0.0 {
        if let (Some(last_o), Some(last_e)) = (pooled_obs.last_mut(), pooled_exp.last_mut()) {
            *last_o += acc_o;
            *last_e += acc_e;
        } else {
            pooled_obs.push(acc_o);
            pooled_exp.push(acc_e);
        }
    }

    let cells = pooled_obs.len();
    let statistic: f64 = pooled_obs
        .iter()
        .zip(&pooled_exp)
        .map(|(&o, &e)| {
            let d = o - e;
            d * d / e
        })
        .sum();
    let dof = cells.saturating_sub(1).max(1);
    let p_value = gamma_q(dof as f64 / 2.0, statistic / 2.0);
    ChiSquareOutcome {
        statistic,
        dof,
        p_value,
        cells,
    }
}

/// Total-variation distance `½ Σ |p_k − q_k|` between two pmfs over the
/// same support. A TV distance of 0.05 means the distributions disagree on
/// at most 5% of probability mass.
pub fn total_variation_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "pmf length mismatch");
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::Binomial;
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn statistic_zero_when_exact() {
        let observed = [10u64, 20, 30];
        let expected = [10.0, 20.0, 30.0];
        assert_eq!(chi_square_statistic(&observed, &expected), 0.0);
    }

    #[test]
    fn statistic_known_value() {
        // Classic die example: 60 rolls, observed [5,8,9,8,10,20].
        let observed = [5u64, 8, 9, 8, 10, 20];
        let expected = [10.0; 6];
        let stat = chi_square_statistic(&observed, &expected);
        assert!((stat - 13.4).abs() < 1e-12, "stat {stat}");
    }

    #[test]
    fn matching_samples_pass_test() {
        // Samples drawn *from* B(20, 0.7) should not be rejected.
        let b = Binomial::new(20, 0.7);
        let mut rng = Xoshiro256StarStar::new(42);
        let mut observed = vec![0u64; 21];
        for _ in 0..5000 {
            observed[b.sample(&mut rng) as usize] += 1;
        }
        let pmf = b.pmf_vector();
        let outcome = chi_square_pvalue(&observed, &pmf, 5.0);
        assert!(
            outcome.p_value > 0.001,
            "true-model samples rejected: p = {}",
            outcome.p_value
        );
    }

    #[test]
    fn wrong_model_fails_test() {
        // Samples from B(20, 0.5) tested against B(20, 0.7) must be
        // overwhelmingly rejected.
        let true_dist = Binomial::new(20, 0.5);
        let wrong_model = Binomial::new(20, 0.7);
        let mut rng = Xoshiro256StarStar::new(43);
        let mut observed = vec![0u64; 21];
        for _ in 0..5000 {
            observed[true_dist.sample(&mut rng) as usize] += 1;
        }
        let outcome = chi_square_pvalue(&observed, &wrong_model.pmf_vector(), 5.0);
        assert!(
            outcome.p_value < 1e-10,
            "wrong model not rejected: p = {}",
            outcome.p_value
        );
    }

    #[test]
    fn pooling_reduces_cells() {
        let b = Binomial::new(20, 0.967);
        let pmf = b.pmf_vector();
        // 100 observations all at 19/20 — the realistic Fig. 6 situation.
        let mut observed = vec![0u64; 21];
        observed[19] = 35;
        observed[20] = 65;
        let outcome = chi_square_pvalue(&observed, &pmf, 5.0);
        assert!(outcome.cells < 21, "low-expectation cells must be pooled");
        assert!(outcome.dof >= 1);
    }

    #[test]
    fn tv_distance_properties() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.0, 0.5, 0.5];
        assert!((total_variation_distance(&p, &q) - 0.5).abs() < 1e-15);
        assert_eq!(total_variation_distance(&p, &p), 0.0);
        // Symmetry.
        assert_eq!(
            total_variation_distance(&p, &q),
            total_variation_distance(&q, &p)
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn tv_rejects_mismatch() {
        total_variation_distance(&[1.0], &[0.5, 0.5]);
    }
}
