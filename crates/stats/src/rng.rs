//! Deterministic pseudo-random number generators.
//!
//! Everything stochastic in this workspace is seeded through here so that a
//! single `u64` reproduces an entire experiment bit-for-bit, regardless of
//! thread count (see [`crate::parallel`]). Two generators are provided:
//!
//! * [`SplitMix64`] — Steele/Lea/Vigna's 64-bit mixer. Tiny state, passes
//!   BigCrush when used as a stream, and — crucially — ideal for *seed
//!   derivation*: feeding a counter through SplitMix64 yields decorrelated
//!   seeds for child generators.
//! * [`Xoshiro256StarStar`] — Blackman/Vigna's general-purpose generator;
//!   the workhorse for simulation sampling.
//!
//! Both implement `rand::RngCore` + `rand::SeedableRng` so
//! they compose with the `rand` distribution machinery used elsewhere.

use rand::{RngCore, SeedableRng};

/// SplitMix64 generator (public-domain algorithm by Sebastiano Vigna).
///
/// Primarily used to derive independent child seeds from a `(base, index)`
/// pair: replication `i` of a Monte-Carlo experiment uses
/// `SplitMix64::new(base).nth_seed(i)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output and advances the state.
    ///
    /// Named `next` to match the reference C implementation; this is not
    /// an `Iterator` (an RNG never ends), hence the lint allowance.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives the `index`-th child seed of this generator's *initial*
    /// state without disturbing `self`.
    ///
    /// The derivation is `mix(seed + (index+1)·γ)`, i.e. the `(index+1)`-th
    /// output of a fresh SplitMix64 — stable under reordering and safe to
    /// call from multiple threads on clones.
    #[inline]
    pub fn nth_seed(&self, index: u64) -> u64 {
        let mut g = Self::new(
            self.state
                .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        g.next()
    }

    /// Convenience: derive a child seed directly from `(base, index)`.
    #[inline]
    pub fn derive(base: u64, index: u64) -> u64 {
        Self::new(base).nth_seed(index)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// Xoshiro256** generator (public-domain algorithm by Blackman & Vigna).
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality, and
/// roughly one rotation + two multiplies per output — the default sampler
/// for every simulation in the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state by running SplitMix64 on `seed`, as
    /// recommended by the algorithm's authors (avoids the all-zero state).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next();
        }
        // The all-zero state is the only invalid one; SplitMix64 cannot
        // produce four consecutive zeros in practice, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the next 64-bit output.
    ///
    /// Named `next` to match the reference C implementation; not an
    /// `Iterator` (see [`SplitMix64::next`]).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased, usually a single multiply).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be positive");
        let mut x = self.next();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Long-jump equivalent to 2^192 `next()` calls; yields a
    /// non-overlapping stream for a parallel worker.
    pub fn long_jump(&mut self) {
        const LONG_JUMP: [u64; 4] = [
            0x7674_3211_5b6a_a5dd,
            0xe49c_5aba_0f43_c9b1,
            0xa9582618e03fc9aa,
            0x39abdc4529b1661c,
        ];
        let mut s = [0u64; 4];
        for jump in LONG_JUMP {
            for bit in 0..64 {
                if (jump >> bit) & 1 != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next();
            }
        }
        self.s = s;
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            return Self::new(0);
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

fn fill_bytes_via_u64<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from Vigna's C implementation.
        let mut g = SplitMix64::new(1234567);
        let first = g.next();
        let second = g.next();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut h = SplitMix64::new(1234567);
        assert_eq!(h.next(), first);
        assert_eq!(h.next(), second);
    }

    #[test]
    fn splitmix_zero_seed_streams() {
        let mut g = SplitMix64::new(0);
        // Known first output of SplitMix64 with seed 0.
        assert_eq!(g.next(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn derive_is_stable_and_decorrelated() {
        let a = SplitMix64::derive(42, 0);
        let b = SplitMix64::derive(42, 1);
        let c = SplitMix64::derive(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, SplitMix64::derive(42, 0));
    }

    #[test]
    fn xoshiro_determinism_and_distribution() {
        let mut g = Xoshiro256StarStar::new(7);
        let mut h = Xoshiro256StarStar::new(7);
        for _ in 0..100 {
            assert_eq!(g.next(), h.next());
        }
        // Crude uniformity sanity check on f64 outputs.
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut g = Xoshiro256StarStar::new(99);
        let bound = 10u64;
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = g.next_below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn long_jump_changes_stream() {
        let mut g = Xoshiro256StarStar::new(5);
        let mut h = g.clone();
        h.long_jump();
        assert_ne!(g.next(), h.next());
    }

    #[test]
    fn rngcore_fill_bytes_covers_remainder() {
        let mut g = Xoshiro256StarStar::new(3);
        let mut buf = [0u8; 13];
        g.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seedable_from_seed_roundtrip() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let mut a = Xoshiro256StarStar::from_seed(seed);
        let mut b = Xoshiro256StarStar::from_seed(seed);
        assert_eq!(a.next(), b.next());
        let mut z = Xoshiro256StarStar::from_seed([0u8; 32]);
        // All-zero seed must be remapped to a valid state.
        assert_ne!(z.next(), 0);
    }
}
