//! Online descriptive statistics (Welford) with parallel merge support.
//!
//! Every reliability number the paper reports is an average over repeated
//! gossip executions (20 runs per `{f, q}` point in §5.1). The accumulators
//! here compute numerically stable means/variances one observation at a
//! time and merge across threads via Chan et al.'s pairwise update, so the
//! parallel Monte-Carlo runner produces identical statistics to a serial
//! pass.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance/extremes accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "observations must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Builds an accumulator from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        s.extend(xs.iter().copied());
        s
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 for an empty accumulator.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (n − 1 denominator); 0 with < 2 samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation; +inf when empty.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; −inf when empty.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation confidence interval around the mean at the
    /// given z-score (1.96 ≈ 95%, 2.576 ≈ 99%).
    pub fn confidence_interval(&self, z: f64) -> ConfidenceInterval {
        let half = z * self.sem();
        ConfidenceInterval {
            lo: self.mean - half,
            hi: self.mean + half,
        }
    }

    /// 95% normal-approximation confidence interval.
    pub fn ci95(&self) -> ConfidenceInterval {
        self.confidence_interval(1.959_963_984_540_054)
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// update). The result equals pushing all observations into one
    /// accumulator, up to floating-point rounding.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let total_f = total as f64;
        self.mean += delta * other.count as f64 / total_f;
        self.m2 += other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total_f;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A symmetric interval around a sample mean.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = OnlineStats::from_slice(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1 = 7: Σ(x−5)² = 32 → 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let e = OnlineStats::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.variance(), 0.0);
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sem(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let whole = OnlineStats::from_slice(&xs);
        let mut left = OnlineStats::from_slice(&xs[..313]);
        let right = OnlineStats::from_slice(&xs[313..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut s = OnlineStats::from_slice(&xs);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ci95_behaviour() {
        let mut s = OnlineStats::new();
        for i in 0..100 {
            s.push(10.0 + (i % 5) as f64);
        }
        let ci = s.ci95();
        assert!(ci.contains(s.mean()));
        assert!(ci.width() > 0.0);
        assert!(
            ci.width() < 1.0,
            "width {} too wide for 100 samples",
            ci.width()
        );
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let offset = 1e9;
        let xs = [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0];
        let s = OnlineStats::from_slice(&xs);
        assert!((s.mean() - (offset + 10.0)).abs() < 1e-3);
        assert!(
            (s.variance() - 30.0).abs() < 1e-6,
            "variance {}",
            s.variance()
        );
    }
}
