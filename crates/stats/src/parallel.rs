//! Seed-stable parallel map/reduce on OS threads.
//!
//! The Monte-Carlo experiments (paper §5: 20 runs per parameter point for
//! Figs. 4/5, 100 × 20 executions for Figs. 6/7) are embarrassingly
//! parallel. This module distributes *indices* over `crossbeam::scope`
//! threads; each task derives its own PRNG seed from `(base_seed, index)`
//! via SplitMix64, so the result of an experiment is a pure function of the
//! base seed — independent of thread count, chunk size, or scheduling.
//!
//! Per the HPC guides, we stay on std threads + crossbeam (no extra
//! dependencies) and split work into contiguous chunks to keep per-thread
//! state local.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Whether this thread is already a `parallel_map` worker. Nested
    /// calls (a parallel sweep whose cells each run a parallel
    /// Monte-Carlo) run serially instead of oversubscribing the machine
    /// with workers² threads — the outer level already saturates the
    /// cores, and per-index seed derivation keeps results identical
    /// either way.
    static IN_PARALLEL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the caller is already running on a `parallel_map` worker
/// thread. Callers that spawn threads of their own (e.g. the live
/// gossip runtime's node actors) use this to collapse nested
/// parallelism to a single thread instead of oversubscribing the
/// machine with workers² threads.
pub fn in_parallel_worker() -> bool {
    IN_PARALLEL_WORKER.with(Cell::get)
}

/// Number of worker threads to use: `available_parallelism`, capped by the
/// job count so tiny jobs don't spawn idle threads.
fn worker_count(jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(jobs).max(1)
}

/// Applies `f(index)` for every `index` in `0..jobs` in parallel and
/// returns the results in index order.
///
/// `f` must be `Sync` (it is shared by reference across workers) and the
/// output `Send`. Work is handed out via an atomic cursor in small batches,
/// which balances uneven per-index costs (e.g. mixed n=1000/n=5000 runs).
///
/// Calls nested inside another `parallel_map` (on a worker thread) run
/// serially; the result is the same either way because every index
/// derives its own seed.
pub fn parallel_map<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = worker_count(jobs);
    if workers == 1 || IN_PARALLEL_WORKER.with(Cell::get) {
        return (0..jobs).map(f).collect();
    }

    let mut results: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let cursor = AtomicUsize::new(0);
    // Batch size: enough to amortize the atomic, small enough to balance.
    let batch = (jobs / (workers * 8)).max(1);
    let results_ptr = SendPtr(results.as_mut_ptr());

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let cursor = &cursor;
            #[allow(clippy::redundant_locals)]
            let results_ptr = results_ptr;
            scope.spawn(move |_| {
                // Force whole-struct capture: edition-2021 disjoint capture
                // would otherwise move only the (non-Send) pointer field.
                #[allow(clippy::redundant_locals)]
                let results_ptr = &results_ptr;
                IN_PARALLEL_WORKER.with(|flag| flag.set(true));
                loop {
                    let start = cursor.fetch_add(batch, Ordering::Relaxed);
                    if start >= jobs {
                        break;
                    }
                    let end = (start + batch).min(jobs);
                    for i in start..end {
                        let value = f(i);
                        // SAFETY: each index i in 0..jobs is claimed by
                        // exactly one worker (the atomic cursor hands out
                        // disjoint ranges), so this write is exclusive, and
                        // `results` outlives the scope.
                        unsafe {
                            results_ptr.0.add(i).write(Some(value));
                        }
                    }
                }
            });
        }
    })
    .expect("parallel_map worker panicked");

    results
        .into_iter()
        .map(|slot| slot.expect("every index written exactly once"))
        .collect()
}

/// Raw-pointer wrapper that asserts cross-thread transferability.
///
/// Safe usage is established in [`parallel_map`]: workers write disjoint
/// indices only.
struct SendPtr<T>(*mut T);
// Manual impls: derive would add an unwanted `T: Copy` bound.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Parallel map followed by a sequential fold over results **in index
/// order**, so floating-point reductions are deterministic.
pub fn parallel_map_reduce<T, A, F, R>(jobs: usize, f: F, init: A, mut reduce: R) -> A
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: FnMut(A, T) -> A,
{
    let mapped = parallel_map(jobs, f);
    let mut acc = init;
    for item in mapped {
        acc = reduce(acc, item);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SplitMix64, Xoshiro256StarStar};

    #[test]
    fn map_preserves_order() {
        let out = parallel_map(1000, |i| i * i);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn empty_and_single_job() {
        let empty: Vec<u32> = parallel_map(0, |_| 1u32);
        assert!(empty.is_empty());
        let one = parallel_map(1, |i| i + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn seeded_work_is_deterministic() {
        let base = 0xDEAD_BEEF;
        let run = || {
            parallel_map(64, |i| {
                let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(base, i as u64));
                (0..100).map(|_| rng.next_f64()).sum::<f64>()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same base seed must give identical results");
    }

    #[test]
    fn reduce_in_index_order() {
        // Build a string so out-of-order reduction would be visible.
        let s = parallel_map_reduce(
            10,
            |i| i.to_string(),
            String::new(),
            |mut acc, x| {
                acc.push_str(&x);
                acc
            },
        );
        assert_eq!(s, "0123456789");
    }

    #[test]
    fn reduce_numeric_sum() {
        let total = parallel_map_reduce(1000, |i| i as u64, 0u64, |a, b| a + b);
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn nested_calls_run_serially_with_identical_results() {
        // A parallel map whose jobs call parallel_map again: the inner
        // calls must stay on the outer worker's thread (no worker pool
        // squared), and results must match the serial computation.
        let nested = parallel_map(8, |i| {
            let outer_thread = std::thread::current().id();
            let inner = parallel_map(8, move |j| {
                assert_eq!(
                    std::thread::current().id(),
                    outer_thread,
                    "nested parallel_map must not spawn workers"
                );
                (i * 8 + j) as u64
            });
            inner.iter().sum::<u64>()
        });
        let serial: Vec<u64> = (0..8)
            .map(|i| (0..8).map(|j| (i * 8 + j) as u64).sum())
            .collect();
        assert_eq!(nested, serial);
    }

    #[test]
    fn uneven_workload_completes() {
        // Mix trivial and heavier jobs to exercise the batching cursor.
        let out = parallel_map(37, |i| {
            if i % 5 == 0 {
                (0..10_000).map(|k| (k ^ i) as u64).sum::<u64>()
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 37);
    }
}
