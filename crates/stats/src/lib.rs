//! Statistics substrate for the gossip fault-tolerance reproduction.
//!
//! The ICPP 2008 paper ("On Modeling Fault Tolerance of Gossip-Based
//! Reliable Multicast Protocols", Fan et al.) leans on MATLAB for all of its
//! numerical plumbing: Poisson sampling for random fanouts, the Binomial
//! distribution `B(t, p_r)` behind the success-of-gossiping calculus
//! (Eqs. 5–6 and Figs. 3, 6, 7), and the statistics used to compare
//! simulated histograms against analytic curves. This crate rebuilds that
//! plumbing from scratch so the rest of the workspace has no numerical
//! dependencies beyond `rand`'s uniform source.
//!
//! Contents:
//!
//! * [`rng`] — deterministic, splittable PRNGs ([`SplitMix64`],
//!   [`Xoshiro256StarStar`]) wired into the `rand` traits, so every
//!   simulation in the workspace is reproducible from a single `u64` seed.
//! * [`special`] — `ln Γ`, regularized incomplete gamma `P/Q`, log-binomial
//!   coefficients; the bedrock of the distribution CDFs and the chi-square
//!   test.
//! * [`binomial`] / [`poisson`] — full pmf/cdf/quantile/sampling
//!   implementations of the two distributions the paper uses.
//! * [`alias`] — Walker/Vose alias tables for O(1) sampling of arbitrary
//!   finite fanout distributions.
//! * [`descriptive`] — Welford online moments, confidence intervals, and
//!   mergeable accumulators for parallel reduction.
//! * [`histogram`] — integer histograms used for the Fig. 6/7 success-count
//!   distributions.
//! * [`gof`] — chi-square goodness-of-fit and total-variation distance,
//!   used by the integration tests to check `X ~ B(20, R)`.
//! * [`parallel`] — seed-stable parallel map/reduce built on
//!   `crossbeam::scope`.

pub mod alias;
pub mod binomial;
pub mod descriptive;
pub mod gof;
pub mod histogram;
pub mod parallel;
pub mod poisson;
pub mod rng;
pub mod special;

pub use alias::AliasTable;
pub use binomial::Binomial;
pub use descriptive::{ConfidenceInterval, OnlineStats};
pub use gof::{
    chi_square_pvalue, chi_square_statistic, total_variation_distance, ChiSquareOutcome,
};
pub use histogram::IntHistogram;
pub use parallel::{parallel_map, parallel_map_reduce};
pub use poisson::Poisson;
pub use rng::{SplitMix64, Xoshiro256StarStar};

/// Machine tolerance used as the default convergence/truncation bound by
/// the numerical routines in this crate.
pub const DEFAULT_EPS: f64 = 1e-12;
