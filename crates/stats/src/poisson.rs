//! The Poisson distribution `Po(λ)`.
//!
//! The paper's case study (§4.3) specializes the fanout distribution to
//! `Po(z)`; the simulator draws per-member fanouts from this sampler, and
//! the analytic side needs the pmf for generating-function truncation and
//! the CDF (via the regularized incomplete gamma) for tail bounds.

use crate::rng::Xoshiro256StarStar;
use crate::special::{gamma_q, ln_factorial};

/// Poisson distribution with rate `λ > 0` (also defined for `λ = 0` as the
/// point mass at 0, which the fanout sweeps occasionally touch).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates `Po(λ)`. Panics if `λ` is negative or non-finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "poisson lambda must be finite and >= 0, got {lambda}"
        );
        Self { lambda }
    }

    /// The rate (and mean, and variance) `λ`.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean `λ`.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Variance `λ`.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.lambda
    }

    /// Log probability mass `ln P(X = k) = −λ + k ln λ − ln k!`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        -self.lambda + k as f64 * self.lambda.ln() - ln_factorial(k)
    }

    /// Probability mass `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Cumulative distribution `P(X ≤ k) = Q(k + 1, λ)` (regularized upper
    /// incomplete gamma).
    pub fn cdf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return 1.0;
        }
        gamma_q(k as f64 + 1.0, self.lambda)
    }

    /// Survival function `P(X > k)`.
    pub fn sf(&self, k: u64) -> f64 {
        1.0 - self.cdf(k)
    }

    /// Smallest `k` such that the tail mass `P(X > k)` falls below `eps` —
    /// used to truncate generating-function series.
    pub fn truncation_point(&self, eps: f64) -> u64 {
        assert!(eps > 0.0, "truncation eps must be positive");
        if self.lambda == 0.0 {
            return 0;
        }
        // Start from mean + 10σ and walk outward if needed; the Poisson
        // tail decays super-exponentially so this terminates immediately
        // in practice.
        let mut k = (self.lambda + 10.0 * self.lambda.sqrt()).ceil() as u64 + 10;
        while self.sf(k) > eps {
            k = k * 2 + 10;
        }
        // Walk back to tighten.
        while k > 0 && self.sf(k - 1) <= eps {
            k -= 1;
        }
        k
    }

    /// Draws one sample.
    ///
    /// For `λ < 30` this is Knuth's product-of-uniforms method (exact, fast
    /// at small rates — the regime of gossip fanouts, z ∈ [1, 10]). For
    /// larger rates it splits λ into halves recursively, keeping exactness
    /// without needing a rejection sampler; the recursion depth is
    /// `log2(λ/30)`, negligible for any realistic fanout.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        sample_rate(self.lambda, rng)
    }
}

fn sample_rate(lambda: f64, rng: &mut Xoshiro256StarStar) -> u64 {
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        // Knuth: count uniforms until their product drops below e^{−λ}.
        let limit = (-lambda).exp();
        let mut product = rng.next_f64();
        let mut count = 0u64;
        while product > limit {
            product *= rng.next_f64();
            count += 1;
        }
        count
    } else {
        // Po(λ) = Po(λ/2) + Po(λ/2) by infinite divisibility.
        let half = lambda / 2.0;
        sample_rate(half, rng) + sample_rate(half, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn pmf_sums_to_one() {
        for &lambda in &[0.5, 1.0, 4.0, 6.0, 25.0] {
            let p = Poisson::new(lambda);
            let kmax = p.truncation_point(1e-14);
            let total: f64 = (0..=kmax).map(|k| p.pmf(k)).sum();
            assert!(close(total, 1.0, 1e-10), "λ={lambda}: sum {total}");
        }
    }

    #[test]
    fn pmf_known_values() {
        // Po(4): P(0) = e^{-4} ≈ 0.018316, P(4) ≈ 0.195367.
        let p = Poisson::new(4.0);
        assert!(close(p.pmf(0), (-4.0f64).exp(), 1e-14));
        assert!(close(p.pmf(4), 0.195_366_8, 1e-6));
        // Po(1): P(1) = e^{-1}.
        let p1 = Poisson::new(1.0);
        assert!(close(p1.pmf(1), (-1.0f64).exp(), 1e-14));
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let p = Poisson::new(6.0);
        let mut acc = 0.0;
        for k in 0..=30u64 {
            acc += p.pmf(k);
            assert!(
                close(p.cdf(k), acc, 1e-10),
                "cdf({k}) = {} vs {}",
                p.cdf(k),
                acc
            );
        }
    }

    #[test]
    fn truncation_point_bounds_tail() {
        for &lambda in &[1.1, 4.0, 6.7, 50.0] {
            let p = Poisson::new(lambda);
            let k = p.truncation_point(1e-12);
            assert!(p.sf(k) <= 1e-12);
            if k > 0 {
                assert!(p.sf(k - 1) > 1e-12, "truncation not tight at λ={lambda}");
            }
        }
    }

    #[test]
    fn sampler_moments_small_lambda() {
        let p = Poisson::new(4.0);
        let mut rng = Xoshiro256StarStar::new(2024);
        let n = 100_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = p.sample(&mut rng) as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 4.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sampler_moments_large_lambda() {
        let p = Poisson::new(120.0);
        let mut rng = Xoshiro256StarStar::new(17);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += p.sample(&mut rng) as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 120.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn sampler_distribution_chi_square_sanity() {
        // Compare sampled frequencies of Po(2) against the pmf by hand.
        let p = Poisson::new(2.0);
        let mut rng = Xoshiro256StarStar::new(5);
        let n = 50_000usize;
        let mut counts = [0u64; 12];
        for _ in 0..n {
            let x = p.sample(&mut rng) as usize;
            let idx = x.min(counts.len() - 1);
            counts[idx] += 1;
        }
        for (k, &count) in counts.iter().enumerate().take(8) {
            let expected = p.pmf(k as u64) * n as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt() + 5.0,
                "k={k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn zero_lambda_is_point_mass() {
        let p = Poisson::new(0.0);
        assert_eq!(p.pmf(0), 1.0);
        assert_eq!(p.pmf(3), 0.0);
        assert_eq!(p.cdf(0), 1.0);
        assert_eq!(p.sample(&mut Xoshiro256StarStar::new(9)), 0);
        assert_eq!(p.truncation_point(1e-9), 0);
    }

    #[test]
    #[should_panic(expected = "poisson lambda must be finite")]
    fn rejects_negative_lambda() {
        Poisson::new(-1.0);
    }
}
