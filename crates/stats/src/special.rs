//! Special functions: log-gamma, regularized incomplete gamma, and
//! log-binomial coefficients.
//!
//! These are the numerical bedrock under the [`crate::binomial`] and
//! [`crate::poisson`] CDFs and the chi-square p-values in [`crate::gof`].
//! Implementations follow the classic Lanczos / series / continued-fraction
//! recipes (Press et al., *Numerical Recipes*, 3rd ed. §6), giving close to
//! full double precision over the parameter ranges this workspace uses
//! (arguments up to ~1e6).

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation with g = 7, n = 9 coefficients; absolute error
/// below 1e-13 for `x > 0.5`, with the reflection formula handling
/// `0 < x ≤ 0.5`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` with an exact table for small `n` and `ln Γ(n+1)` beyond.
pub fn ln_factorial(n: u64) -> f64 {
    // Exact values for 0! .. 20! fit in f64 without rounding error in the log.
    const TABLE_LEN: usize = 171;
    thread_local! {
        static TABLE: [f64; TABLE_LEN] = {
            let mut t = [0.0f64; TABLE_LEN];
            let mut acc = 0.0f64;
            let mut i = 1usize;
            while i < TABLE_LEN {
                acc += (i as f64).ln();
                t[i] = acc;
                i += 1;
            }
            t
        };
    }
    if (n as usize) < TABLE_LEN {
        TABLE.with(|t| t[n as usize])
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`, the log binomial coefficient. Returns `-inf` for `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Maximum iterations for the incomplete-gamma series / continued fraction.
const MAX_ITER: usize = 500;
/// Relative convergence tolerance for the incomplete-gamma routines.
const GAMMA_EPS: f64 = 1e-15;

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`.
///
/// `P(a, x)` is the CDF of the Gamma(a, 1) distribution; `Q(k+1, λ)` is the
/// Poisson CDF used in [`crate::poisson`], and `Q(df/2, x/2)` is the
/// chi-square survival function used in [`crate::gof`].
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of `P(a, x)` — converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * GAMMA_EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified Lentz continued fraction for `Q(a, x)` — converges fast for
/// `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < GAMMA_EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// `I_p(k, n−k+1)` gives the Binomial survival function, which is how
/// [`crate::binomial`] computes tail probabilities without summing long
/// pmf series.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a, b > 0");
    assert!(
        (0.0..=1.0).contains(&x),
        "beta_inc requires 0 <= x <= 1, got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction in its region of fast convergence and the
    // symmetry I_x(a,b) = 1 − I_{1−x}(b,a) otherwise.
    // `<=` (not `<`) so x exactly at the threshold takes the direct branch;
    // otherwise a == b, x == 0.5 would recurse onto itself forever.
    if x <= (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - beta_inc(b, a, 1.0 - x)
    }
}

/// Modified Lentz continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < GAMMA_EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)! for integer n.
        let mut fact = 1.0f64;
        for n in 1..=20u64 {
            assert!(
                close(ln_gamma(n as f64), fact.ln(), 1e-12),
                "ln_gamma({n}) = {} vs ln({n}-1)! = {}",
                ln_gamma(n as f64),
                fact.ln()
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12));
        // Γ(3/2) = √π/2.
        assert!(close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12
        ));
    }

    #[test]
    fn ln_factorial_agrees_with_gamma() {
        for n in [0u64, 1, 5, 10, 100, 170, 171, 500, 10_000] {
            assert!(
                close(ln_factorial(n), ln_gamma(n as f64 + 1.0), 1e-11),
                "mismatch at n = {n}"
            );
        }
    }

    #[test]
    fn ln_choose_small_values() {
        assert!(close(ln_choose(5, 2), (10.0f64).ln(), 1e-12));
        assert!(close(ln_choose(20, 10), (184_756.0f64).ln(), 1e-12));
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert!(close(ln_choose(7, 0), 0.0, 1e-12));
    }

    #[test]
    fn gamma_p_q_complement() {
        for &(a, x) in &[
            (0.5, 0.3),
            (1.0, 1.0),
            (2.5, 4.0),
            (10.0, 3.0),
            (100.0, 120.0),
        ] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!(close(p + q, 1.0, 1e-12), "P+Q != 1 at a={a}, x={x}");
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 10.0] {
            assert!(close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12));
        }
    }

    #[test]
    fn gamma_q_chi_square_reference() {
        // Chi-square survival with df=2: Q(1, x/2) = e^{-x/2}.
        for &x in &[0.5, 1.0, 3.84, 10.0] {
            assert!(close(gamma_q(1.0, x / 2.0), (-x / 2.0f64).exp(), 1e-12));
        }
        // Known quantile: chi2(df=1) upper tail at 3.841 ≈ 0.05.
        let p = gamma_q(0.5, 3.841_458_820_694_124 / 2.0);
        assert!((p - 0.05).abs() < 1e-6, "got {p}");
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1, 1) = x.
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(close(beta_inc(1.0, 1.0, x), x, 1e-12));
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (5.0, 1.5, 0.7), (0.5, 0.5, 0.2)] {
            let lhs = beta_inc(a, b, x);
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x);
            assert!(close(lhs, rhs, 1e-10), "symmetry broken at ({a},{b},{x})");
        }
    }

    #[test]
    fn beta_inc_binomial_consistency() {
        // Binomial survival: P(X >= k) = I_p(k, n-k+1) for X~B(n,p).
        // Check against direct summation for n = 10, p = 0.3, k = 4.
        let (n, p, k) = (10u64, 0.3f64, 4u64);
        let direct: f64 = (k..=n)
            .map(|j| {
                (ln_choose(n, j) + (j as f64) * p.ln() + ((n - j) as f64) * (1.0 - p).ln()).exp()
            })
            .sum();
        let via_beta = beta_inc(k as f64, (n - k + 1) as f64, p);
        assert!(close(direct, via_beta, 1e-10), "{direct} vs {via_beta}");
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
