//! Walker/Vose alias method for O(1) sampling from a finite discrete
//! distribution.
//!
//! The general gossiping algorithm lets each member draw its fanout from an
//! *arbitrary* distribution `P` (paper §3, Fig. 1). For empirical or
//! power-law fanout distributions the pmf is just a table; the alias method
//! turns that table into constant-time samples, which matters when the
//! simulator draws one fanout per infected member across millions of
//! Monte-Carlo executions.

use crate::rng::Xoshiro256StarStar;

/// Precomputed alias table over outcomes `0..len`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability for each cell.
    prob: Vec<f64>,
    /// Alias outcome for each cell.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from (possibly unnormalized) non-negative
    /// weights. Panics on empty input, negative weights, or all-zero mass.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table limited to 2^32 outcomes"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(
                    w.is_finite() && w >= 0.0,
                    "weights must be finite and >= 0, got {w}"
                );
                w
            })
            .sum();
        assert!(total > 0.0, "alias table needs positive total mass");

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scaled probabilities; "small" cells have mass < 1, "large" > 1.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("small non-empty");
            // Keep the donor on the large stack until it drops below 1;
            // popping it eagerly would lose it if the other stack empties.
            let l = *large.last().expect("large non-empty");
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            // The large cell donates the deficit of the small cell.
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically 1.0.
        for i in large.into_iter().chain(small) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never: construction forbids it,
    /// provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome in `0..len` in O(1).
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        let cell = rng.next_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[cell] {
            cell
        } else {
            self.alias[cell] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut counts = vec![0u64; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let freq = frequencies(&t, 200_000, 1);
        for f in freq {
            assert!((f - 0.25).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights() {
        let t = AliasTable::new(&[8.0, 1.0, 1.0]);
        let freq = frequencies(&t, 200_000, 2);
        assert!((freq[0] - 0.8).abs() < 0.01);
        assert!((freq[1] - 0.1).abs() < 0.01);
        assert!((freq[2] - 0.1).abs() < 0.01);
    }

    #[test]
    fn zero_weight_outcome_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 3.0]);
        let mut rng = Xoshiro256StarStar::new(3);
        for _ in 0..50_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-weight outcome {s}");
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[2.5]);
        let mut rng = Xoshiro256StarStar::new(4);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn unnormalized_weights_equivalent() {
        let a = AliasTable::new(&[0.2, 0.3, 0.5]);
        let b = AliasTable::new(&[2.0, 3.0, 5.0]);
        let fa = frequencies(&a, 300_000, 5);
        let fb = frequencies(&b, 300_000, 5);
        for (x, y) in fa.iter().zip(&fb) {
            assert!((x - y).abs() < 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "positive total mass")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn rejects_negative() {
        AliasTable::new(&[1.0, -0.5]);
    }
}
