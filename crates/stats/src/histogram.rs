//! Integer histograms.
//!
//! Figures 6 and 7 of the paper report `Pr(X = k)` for `k = 0..=20`, where
//! `X` counts gossip successes among 20 executions, estimated over 100
//! simulations. [`IntHistogram`] is the accumulator behind those bars.

use serde::{Deserialize, Serialize};

/// Histogram over the non-negative integers `0..=max_value`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl IntHistogram {
    /// Creates a histogram covering `0..=max_value`.
    pub fn new(max_value: usize) -> Self {
        Self {
            counts: vec![0; max_value + 1],
            total: 0,
        }
    }

    /// Builds a histogram from samples; values above `max_value` are
    /// clamped into the last bucket.
    pub fn from_samples(max_value: usize, samples: impl IntoIterator<Item = u64>) -> Self {
        let mut h = Self::new(max_value);
        for s in samples {
            h.record(s);
        }
        h
    }

    /// Records one observation (clamped to the top bucket).
    pub fn record(&mut self, value: u64) {
        let idx = (value as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of buckets (`max_value + 1`).
    #[inline]
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total observations recorded.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw count in bucket `k` (0 if out of range).
    pub fn count(&self, k: usize) -> u64 {
        self.counts.get(k).copied().unwrap_or(0)
    }

    /// All raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Empirical probability `Pr(X = k)`; 0 for an empty histogram.
    pub fn pmf(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count(k) as f64 / self.total as f64
    }

    /// The full empirical pmf as a vector aligned with bucket indices.
    pub fn pmf_vector(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| self.pmf_of(c)).collect()
    }

    fn pmf_of(&self, c: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            c as f64 / self.total as f64
        }
    }

    /// Empirical mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(k, &c)| k as f64 * c as f64)
            .sum();
        weighted / self.total as f64
    }

    /// Index of the most frequent bucket (smallest index on ties).
    pub fn mode(&self) -> usize {
        let mut best = 0usize;
        for (k, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = k;
            }
        }
        best
    }

    /// Merges another histogram with the same bucket count.
    pub fn merge(&mut self, other: &IntHistogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge histograms with different bucket counts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_pmf() {
        let mut h = IntHistogram::new(5);
        for v in [0u64, 1, 1, 2, 2, 2, 5, 5] {
            h.record(v);
        }
        assert_eq!(h.total(), 8);
        assert_eq!(h.count(2), 3);
        assert!((h.pmf(2) - 3.0 / 8.0).abs() < 1e-15);
        assert_eq!(h.mode(), 2);
        let pmf = h.pmf_vector();
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamping_above_max() {
        let mut h = IntHistogram::new(3);
        h.record(100);
        h.record(3);
        assert_eq!(h.count(3), 2);
    }

    #[test]
    fn mean_of_point_mass() {
        let h = IntHistogram::from_samples(20, std::iter::repeat_n(20, 10));
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.mode(), 20);
    }

    #[test]
    fn empty_histogram() {
        let h = IntHistogram::new(4);
        assert_eq!(h.total(), 0);
        assert_eq!(h.pmf(0), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.mode(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = IntHistogram::from_samples(4, [0u64, 1, 2]);
        let b = IntHistogram::from_samples(4, [2u64, 3, 4]);
        a.merge(&b);
        assert_eq!(a.total(), 6);
        assert_eq!(a.count(2), 2);
    }

    #[test]
    #[should_panic(expected = "different bucket counts")]
    fn merge_rejects_mismatched() {
        let mut a = IntHistogram::new(3);
        let b = IntHistogram::new(4);
        a.merge(&b);
    }

    #[test]
    fn out_of_range_count_is_zero() {
        let h = IntHistogram::new(2);
        assert_eq!(h.count(99), 0);
    }
}
