//! Property-based tests for the random-graph substrate.

use gossip_model::distribution::PoissonFanout;
use gossip_rgraph::components::{census, census_occupied};
use gossip_rgraph::reach::reach_from;
use gossip_rgraph::{ConfigurationModel, Digraph, GossipGraphBuilder, Graph, UnionFind};
use gossip_stats::rng::Xoshiro256StarStar;
use proptest::prelude::*;

/// Reference disjoint-set: naive label propagation.
fn reference_components(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut label: Vec<u32> = (0..n as u32).collect();
    // Iterate to fixpoint (n is small in these tests).
    loop {
        let mut changed = false;
        for &(a, b) in edges {
            let (la, lb) = (label[a as usize], label[b as usize]);
            let min = la.min(lb);
            if la != min {
                label[a as usize] = min;
                changed = true;
            }
            if lb != min {
                label[b as usize] = min;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Normalize labels to representatives by chasing.
    for i in 0..n {
        let mut l = label[i];
        while label[l as usize] != l {
            l = label[l as usize];
        }
        label[i] = l;
    }
    label
}

fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |edges| (n, edges))
    })
}

proptest! {
    /// Union-find agrees with naive label propagation on arbitrary edge
    /// sets.
    #[test]
    fn unionfind_matches_reference((n, edges) in arb_edges(40, 80)) {
        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        let reference = reference_components(n, &edges);
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                let same_ref = reference[i as usize] == reference[j as usize];
                prop_assert_eq!(
                    uf.connected(i, j),
                    same_ref,
                    "nodes {} and {} disagree", i, j
                );
            }
        }
    }

    /// Component sizes always partition the node set.
    #[test]
    fn census_partitions_nodes((n, edges) in arb_edges(60, 120)) {
        let g = Graph::from_edges(n, &edges);
        let c = census(&g);
        prop_assert_eq!(c.nodes, n);
        prop_assert!(c.largest >= c.second_largest);
        prop_assert!(c.largest <= n);
        prop_assert!(c.count >= 1);
        prop_assert!((c.mean_size * c.count as f64 - n as f64).abs() < 1e-9);
    }

    /// Occupied census counts only occupied nodes and never exceeds the
    /// full census.
    #[test]
    fn occupied_census_bounded((n, edges) in arb_edges(40, 80), seed in 0u64..1000) {
        let g = Graph::from_edges(n, &edges);
        let mut rng = Xoshiro256StarStar::new(seed);
        let occupied: Vec<bool> = (0..n).map(|_| rng.next_bool(0.6)).collect();
        let occ_count = occupied.iter().filter(|&&b| b).count();
        let c = census_occupied(&g, &occupied);
        prop_assert_eq!(c.nodes, occ_count);
        prop_assert!(c.largest <= occ_count);
        let full = census(&g);
        prop_assert!(c.largest <= full.largest);
    }

    /// Configuration model with an explicit degree sequence realizes it
    /// exactly (as a multigraph).
    #[test]
    fn configuration_model_realizes_degrees(
        mut degrees in proptest::collection::vec(0usize..6, 4..30),
        seed in 0u64..1000,
    ) {
        if degrees.iter().sum::<usize>() % 2 == 1 {
            degrees[0] += 1;
        }
        let dist = PoissonFanout::new(1.0); // unused
        let model = ConfigurationModel::new(&dist, degrees.len());
        let g = model.generate_with_degrees(&degrees, &mut Xoshiro256StarStar::new(seed));
        for (v, &d) in degrees.iter().enumerate() {
            prop_assert_eq!(g.degree(v as u32), d, "node {}", v);
        }
    }

    /// Directed reach: source always reached; counts consistent; failed
    /// nodes never forward (removing a failed node's out-edges changes
    /// nothing).
    #[test]
    fn reach_invariants(
        n in 3usize..40,
        seed in 0u64..500,
        q in 0.3f64..1.0,
    ) {
        let dist = PoissonFanout::new(2.0);
        let builder = GossipGraphBuilder::new(&dist, n, q);
        let g = builder.build(&mut Xoshiro256StarStar::new(seed));
        let out = reach_from(&g.digraph, &g.failed, g.source);
        prop_assert!(out.reached[g.source as usize]);
        prop_assert!(out.nonfailed_reached <= out.nonfailed_total);
        prop_assert!(out.nonfailed_reached >= 1, "source counts");
        prop_assert_eq!(out.is_success(), out.nonfailed_reached == out.nonfailed_total);

        // Censor failed nodes' out-edges: reach must be identical.
        let censored_edges: Vec<(u32, u32)> = (0..n as u32)
            .filter(|&v| !g.failed[v as usize])
            .flat_map(|v| {
                g.digraph
                    .out_neighbors(v)
                    .iter()
                    .map(move |&w| (v, w))
                    .collect::<Vec<_>>()
            })
            .collect();
        let censored = Digraph::from_edges(n, &censored_edges);
        let out2 = reach_from(&censored, &g.failed, g.source);
        prop_assert_eq!(out.nonfailed_reached, out2.nonfailed_reached);
        prop_assert_eq!(out.reached, out2.reached);
    }

    /// Gossip graphs: arcs never point at self, out-degrees are clamped
    /// to n − 1, and the source never fails.
    #[test]
    fn gossip_graph_invariants(n in 2usize..60, seed in 0u64..500, q in 0.1f64..1.0) {
        let dist = PoissonFanout::new(3.0);
        let g = GossipGraphBuilder::new(&dist, n, q).build(&mut Xoshiro256StarStar::new(seed));
        prop_assert!(!g.failed[g.source as usize]);
        for v in 0..n as u32 {
            prop_assert!(g.digraph.out_degree(v) < n);
            for &w in g.digraph.out_neighbors(v) {
                prop_assert_ne!(w, v, "self-arc at {}", v);
            }
        }
    }
}
