//! The configuration model: uniform random (multi)graphs with a
//! prescribed degree sequence.
//!
//! This is the graph family the generalized-random-graph theory (paper
//! §3, Newman–Strogatz–Watts) describes *exactly*: sample a degree for
//! every node from the fanout distribution, cut each node into that many
//! "stubs", and match stubs uniformly at random. Measuring giant
//! components on these graphs validates the analytic `G0`/`G1` machinery
//! independently of any gossip semantics.

use gossip_model::distribution::FanoutDistribution;
use gossip_stats::rng::Xoshiro256StarStar;

use crate::graph::Graph;

/// Configuration-model sampler for a fanout/degree distribution.
#[derive(Clone, Copy, Debug)]
pub struct ConfigurationModel<'a, D: FanoutDistribution + ?Sized> {
    dist: &'a D,
    n: usize,
    /// Erase self-loops and parallel edges after matching (the "erased"
    /// configuration model). Biases degrees down by O(1/n) but yields
    /// simple graphs.
    erase_defects: bool,
}

impl<'a, D: FanoutDistribution + ?Sized> ConfigurationModel<'a, D> {
    /// Creates a sampler for graphs on `n` nodes with degrees drawn from
    /// `dist`.
    pub fn new(dist: &'a D, n: usize) -> Self {
        assert!(n >= 2, "configuration model needs at least 2 nodes");
        assert!(
            n <= u32::MAX as usize,
            "configuration model node ids are u32 (n <= 2^32 - 1, got {n})"
        );
        Self {
            dist,
            n,
            erase_defects: false,
        }
    }

    /// Switches to the erased configuration model (simple graphs).
    pub fn erased(mut self) -> Self {
        self.erase_defects = true;
        self
    }

    /// Samples a degree sequence; if the stub total is odd, one extra
    /// stub is added to a uniformly chosen node (the standard parity fix —
    /// O(1/n) distortion).
    pub fn sample_degrees(&self, rng: &mut Xoshiro256StarStar) -> Vec<usize> {
        let mut degrees = Vec::with_capacity(self.n);
        let mut total = 0usize;
        for _ in 0..self.n {
            let d = self.dist.sample(rng);
            total += d;
            degrees.push(d);
        }
        if total % 2 == 1 {
            let lucky = rng.next_below(self.n as u64) as usize;
            degrees[lucky] += 1;
        }
        degrees
    }

    /// Generates one graph: sample degrees, shuffle the stub list
    /// (Fisher–Yates), pair consecutive stubs.
    pub fn generate(&self, rng: &mut Xoshiro256StarStar) -> Graph {
        let degrees = self.sample_degrees(rng);
        self.generate_with_degrees(&degrees, rng)
    }

    /// Generates one graph for an explicit (even-sum) degree sequence.
    pub fn generate_with_degrees(&self, degrees: &[usize], rng: &mut Xoshiro256StarStar) -> Graph {
        assert_eq!(degrees.len(), self.n, "degree sequence length must be n");
        let total: usize = degrees.iter().sum();
        assert!(
            total.is_multiple_of(2),
            "degree sum must be even, got {total}"
        );

        // Build the stub list: node i appears degrees[i] times.
        let mut stubs = Vec::with_capacity(total);
        for (node, &d) in degrees.iter().enumerate() {
            let node = u32::try_from(node).expect("node count validated to fit u32");
            for _ in 0..d {
                stubs.push(node);
            }
        }
        // Fisher–Yates shuffle, then pair consecutive stubs: a uniform
        // perfect matching of stubs.
        for i in (1..stubs.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            stubs.swap(i, j);
        }
        let mut edges = Vec::with_capacity(total / 2);
        for pair in stubs.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            if self.erase_defects && a == b {
                continue; // drop self-loop
            }
            edges.push((a.min(b), a.max(b)));
        }
        if self.erase_defects {
            // Drop parallel edges.
            edges.sort_unstable();
            edges.dedup();
        }
        Graph::from_edges(self.n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::distribution::{FixedFanout, PoissonFanout};

    #[test]
    fn degree_sum_is_even_and_mean_matches() {
        let dist = PoissonFanout::new(4.0);
        let model = ConfigurationModel::new(&dist, 5000);
        let mut rng = Xoshiro256StarStar::new(7);
        let degrees = model.sample_degrees(&mut rng);
        let total: usize = degrees.iter().sum();
        assert_eq!(total % 2, 0);
        let mean = total as f64 / degrees.len() as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean degree {mean}");
    }

    #[test]
    fn generated_graph_realizes_degrees() {
        let dist = FixedFanout::new(3);
        let model = ConfigurationModel::new(&dist, 1000);
        let mut rng = Xoshiro256StarStar::new(11);
        let g = model.generate(&mut rng);
        assert_eq!(g.node_count(), 1000);
        // 3-regular (multigraph): every degree exactly 3 — parity fix may
        // bump one node to 4 when n·3 is odd, but 1000·3 is even.
        for v in 0..1000u32 {
            assert_eq!(g.degree(v), 3, "node {v}");
        }
    }

    #[test]
    fn erased_model_is_simple() {
        let dist = PoissonFanout::new(6.0);
        let model = ConfigurationModel::new(&dist, 500).erased();
        let mut rng = Xoshiro256StarStar::new(13);
        let g = model.generate(&mut rng);
        for v in 0..500u32 {
            let ns = g.neighbors(v);
            assert!(!ns.contains(&v), "self-loop at {v}");
            let mut sorted = ns.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), ns.len(), "parallel edge at {v}");
        }
    }

    #[test]
    fn explicit_degrees_roundtrip() {
        let dist = FixedFanout::new(0); // unused by generate_with_degrees
        let model = ConfigurationModel::new(&dist, 4);
        let mut rng = Xoshiro256StarStar::new(3);
        let g = model.generate_with_degrees(&[1, 1, 2, 2], &mut rng);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(3), 2);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn determinism_by_seed() {
        let dist = PoissonFanout::new(3.0);
        let model = ConfigurationModel::new(&dist, 300);
        let g1 = model.generate(&mut Xoshiro256StarStar::new(99));
        let g2 = model.generate(&mut Xoshiro256StarStar::new(99));
        assert_eq!(g1.edge_count(), g2.edge_count());
        for v in 0..300u32 {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    #[should_panic(expected = "degree sum must be even")]
    fn rejects_odd_degree_sum() {
        let dist = FixedFanout::new(0);
        let model = ConfigurationModel::new(&dist, 3);
        let mut rng = Xoshiro256StarStar::new(1);
        model.generate_with_degrees(&[1, 1, 1], &mut rng);
    }
}
