//! Empirical site percolation on undirected graphs.
//!
//! The Monte-Carlo counterpart of `gossip_model::percolation`: occupy
//! each node with probability `q`, census the occupied subgraph, and
//! compare the measured giant component against `1 − G0(u)`. Used by the
//! phase scans (E7) and the model-vs-graph integration tests.

use gossip_stats::descriptive::OnlineStats;
use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};

use crate::components::{census_occupied, ComponentCensus};
use crate::graph::Graph;

/// One percolation replication's summary.
#[derive(Clone, Debug, PartialEq)]
pub struct PercolationOutcome {
    /// Census of the occupied subgraph.
    pub census: ComponentCensus,
    /// Number of occupied nodes.
    pub occupied: usize,
}

impl PercolationOutcome {
    /// Giant component as a fraction of occupied nodes — the empirical
    /// reliability `R(q, P)`.
    pub fn reliability(&self) -> f64 {
        self.census.largest_fraction()
    }
}

/// Percolates `g` once at occupation probability `q`; `immune` nodes
/// (e.g. the gossip source) are always occupied.
pub fn percolate(
    g: &Graph,
    q: f64,
    immune: &[u32],
    rng: &mut Xoshiro256StarStar,
) -> PercolationOutcome {
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1], got {q}");
    let n = g.node_count();
    let mut occupied = Vec::with_capacity(n);
    for _ in 0..n {
        occupied.push(rng.next_bool(q));
    }
    for &v in immune {
        occupied[v as usize] = true;
    }
    let census = census_occupied(g, &occupied);
    PercolationOutcome {
        occupied: census.nodes,
        census,
    }
}

/// Aggregated statistics over many percolation replications.
#[derive(Clone, Debug, Default)]
pub struct PercolationStats {
    /// Giant-component fraction of occupied nodes per replication.
    pub reliability: OnlineStats,
    /// Second-largest component fraction per replication.
    pub second_fraction: OnlineStats,
    /// Susceptibility per replication.
    pub susceptibility: OnlineStats,
}

/// Runs `reps` independent percolations of `g` at `q`, deriving each
/// replication's seed from `(base_seed, rep)` — deterministic and
/// order-independent.
pub fn percolate_many(
    g: &Graph,
    q: f64,
    immune: &[u32],
    reps: usize,
    base_seed: u64,
) -> PercolationStats {
    let mut stats = PercolationStats::default();
    for rep in 0..reps {
        let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(base_seed, rep as u64));
        let out = percolate(g, q, immune, &mut rng);
        stats.reliability.push(out.reliability());
        let second = if out.occupied == 0 {
            0.0
        } else {
            out.census.second_largest as f64 / out.occupied as f64
        };
        stats.second_fraction.push(second);
        stats.susceptibility.push(out.census.susceptibility);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configuration::ConfigurationModel;
    use gossip_model::distribution::PoissonFanout;
    use gossip_model::SitePercolation;

    fn poisson_graph(n: usize, z: f64, seed: u64) -> Graph {
        let dist = PoissonFanout::new(z);
        ConfigurationModel::new(&dist, n).generate(&mut Xoshiro256StarStar::new(seed))
    }

    #[test]
    fn q_one_matches_full_census() {
        let g = poisson_graph(2000, 3.0, 1);
        let mut rng = Xoshiro256StarStar::new(2);
        let out = percolate(&g, 1.0, &[], &mut rng);
        assert_eq!(out.occupied, 2000);
        let full = crate::components::census(&g);
        assert_eq!(out.census.largest, full.largest);
    }

    #[test]
    fn empirical_matches_analytic_reliability() {
        // Po(4) at q = 0.8: analytic reliability ≈ 0.9575…; a 5000-node
        // graph should land within a few percent.
        let g = poisson_graph(5000, 4.0, 3);
        let stats = percolate_many(&g, 0.8, &[], 10, 99);
        let dist = PoissonFanout::new(4.0);
        let analytic = SitePercolation::new(&dist, 0.8)
            .unwrap()
            .reliability()
            .unwrap();
        let measured = stats.reliability.mean();
        assert!(
            (measured - analytic).abs() < 0.03,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn subcritical_has_no_giant() {
        // Po(4) at q = 0.15 < q_c = 0.25: largest component is tiny.
        let g = poisson_graph(5000, 4.0, 4);
        let stats = percolate_many(&g, 0.15, &[], 5, 7);
        assert!(
            stats.reliability.mean() < 0.05,
            "subcritical giant fraction {}",
            stats.reliability.mean()
        );
    }

    #[test]
    fn immune_nodes_always_occupied() {
        let g = poisson_graph(100, 2.0, 5);
        let mut rng = Xoshiro256StarStar::new(6);
        // q = 0 with immune node 7: exactly one occupied node.
        let out = percolate(&g, 0.0, &[7], &mut rng);
        assert_eq!(out.occupied, 1);
        assert_eq!(out.census.largest, 1);
    }

    #[test]
    fn determinism_across_runs() {
        let g = poisson_graph(500, 3.0, 8);
        let a = percolate_many(&g, 0.5, &[], 5, 1234);
        let b = percolate_many(&g, 0.5, &[], 5, 1234);
        assert_eq!(a.reliability.mean(), b.reliability.mean());
        assert_eq!(a.susceptibility.mean(), b.susceptibility.mean());
    }
}
