//! Compact undirected graphs in CSR (compressed sparse row) form.
//!
//! Two flat arrays — prefix offsets and concatenated neighbour lists —
//! instead of `Vec<Vec<u32>>`: one allocation each, sequential traversal,
//! and `u32` node ids halve the memory traffic (per the HPC guides;
//! graphs in the phase scans reach millions of nodes).

/// An undirected graph with nodes `0..n` in CSR form. Parallel edges and
/// self-loops are representable (the configuration model can produce
/// them; callers choose whether to erase).
#[derive(Clone, Debug)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an undirected edge list.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        assert!(n <= u32::MAX as usize, "node ids limited to u32");
        // Two-pass CSR build: count degrees, prefix-sum, scatter.
        let mut degree = vec![0usize; n];
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range"
            );
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for d in &degree {
            offsets.push(offsets.last().expect("non-empty") + d);
        }
        let mut neighbors = vec![0u32; offsets[n]];
        let mut cursor = offsets[..n].to_vec();
        for &(a, b) in edges {
            neighbors[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        Self { offsets, neighbors }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (self-loops count once).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v` (self-loops contribute 2, as usual).
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbours of `v` as a slice.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterator over all edges `(a, b)` with `a ≤ b` (each undirected
    /// edge reported once; self-loops reported once).
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.node_count() as u32).flat_map(move |a| {
            self.neighbors(a)
                .iter()
                .copied()
                .filter(move |&b| a <= b)
                .map(move |b| (a, b))
        })
    }

    /// Mean degree `2|E|/n`.
    pub fn mean_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.node_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_isolate() -> Graph {
        // Nodes 0-1-2 form a triangle; node 3 isolated.
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn basic_shape() {
        let g = triangle_plus_isolate();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(3).is_empty());
        assert!((g.mean_degree() - 1.5).abs() < 1e-15);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle_plus_isolate();
        for a in 0..4u32 {
            for &b in g.neighbors(a) {
                assert!(g.neighbors(b).contains(&a), "edge {a}->{b} missing reverse");
            }
        }
    }

    #[test]
    fn edges_iterator_reports_each_once() {
        let g = triangle_plus_isolate();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (1, 1)]);
        assert_eq!(g.degree(0), 2);
        // Self-loop contributes 2 to degree of node 1.
        assert_eq!(g.degree(1), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        Graph::from_edges(2, &[(0, 5)]);
    }
}
