//! Flat struct-of-arrays percolation for the million-node regime.
//!
//! The classic default path builds a [`crate::graph::Graph`] CSR per
//! replication, optionally rebuilds it thinned for loss, and then runs
//! a component census over a `Vec<bool>` occupancy — three O(n + m)
//! allocations per replication. This module fuses all of it into one
//! pass over a reusable arena: degrees are drawn through the
//! `gossip-engine` alias sampler straight into a stub list, the stub
//! list is shuffled and paired (the configuration-model matching), and
//! each pair feeds a [`UnionFind`] union *only if the bond survives
//! loss and both endpoints are occupied*. The adjacency never
//! materializes — union-find over the stub pairing is the component
//! census — and every buffer is reset, never reallocated, between
//! replications.
//!
//! The measured quantity is identical to the classic path's:
//! reliability = largest occupied component / occupied count (Eq. 4's
//! giant-component fraction under site percolation with ratio `q` and
//! bond percolation with rate `1 − loss`). Only the RNG stream differs
//! (one flat stream instead of the classic 0x6A/0x9C pair), so flat
//! and classic agree within Monte-Carlo tolerance, not bit-for-bit.

use gossip_engine::{BitSet, FanoutSampler};
use gossip_model::distribution::FanoutDistribution;
use gossip_stats::rng::Xoshiro256StarStar;

use crate::unionfind::UnionFind;

/// Arena for flat percolation replications: reset in place, sized once
/// per evaluation.
#[derive(Debug)]
pub struct PercolationScratch {
    stubs: Vec<u32>,
    occupied: BitSet,
    uf: UnionFind,
}

impl PercolationScratch {
    /// Buffers for graphs on `n` nodes.
    pub fn new(n: usize) -> Self {
        PercolationScratch {
            stubs: Vec::new(),
            occupied: BitSet::new(n),
            uf: UnionFind::new(n),
        }
    }
}

/// One evaluation's immutable percolation configuration (shared
/// read-only across replications and worker threads).
#[derive(Clone, Copy)]
pub struct FlatPercolation<'a> {
    /// Number of nodes.
    pub n: usize,
    /// Site-occupation (nonfailed) probability.
    pub q: f64,
    /// Bond-removal (message loss) probability.
    pub loss: f64,
    /// Degree distribution.
    pub dist: &'a dyn FanoutDistribution,
    /// Alias-table degree draws.
    pub sampler: &'a FanoutSampler,
}

impl<'a> FlatPercolation<'a> {
    /// Runs one replication, returning the paper's reliability: the
    /// largest occupied component over the occupied count.
    pub fn run(&self, scratch: &mut PercolationScratch, rng: &mut Xoshiro256StarStar) -> f64 {
        debug_assert_eq!(scratch.occupied.len(), self.n);

        // Site percolation first: occupied ⇔ nonfailed.
        if self.q >= 1.0 {
            scratch.occupied.set_all();
        } else {
            scratch.occupied.clear();
            for v in 0..self.n {
                if rng.next_bool(self.q) {
                    scratch.occupied.set(v);
                }
            }
        }
        let occupied_count = scratch.occupied.count_ones();
        if occupied_count == 0 {
            return 0.0;
        }

        // Configuration-model degree sequence, drawn straight into the
        // stub list (node v appears deg(v) times).
        scratch.stubs.clear();
        for v in 0..self.n as u32 {
            for _ in 0..self.sampler.sample(self.dist, rng) {
                scratch.stubs.push(v);
            }
        }
        if scratch.stubs.len() % 2 == 1 {
            // Standard parity fix: one extra stub at a uniform node.
            let lucky = rng.next_below(self.n as u64) as u32;
            scratch.stubs.push(lucky);
        }

        // Fisher–Yates; pairing consecutive stubs is then a uniform
        // perfect matching — the configuration model.
        for i in (1..scratch.stubs.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            scratch.stubs.swap(i, j);
        }

        // Union survivors-only: a component of size ≥ 2 is all-occupied
        // by construction, and unoccupied nodes stay singletons, so
        // `uf.largest()` *is* the largest occupied component whenever
        // any node is occupied.
        scratch.uf.reset();
        for pair in scratch.stubs.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            if self.loss > 0.0 && rng.next_bool(self.loss) {
                continue; // bond percolation: the edge never transmits
            }
            if scratch.occupied.get(a as usize) && scratch.occupied.get(b as usize) {
                scratch.uf.union(a, b);
            }
        }
        scratch.uf.largest() as f64 / occupied_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::distribution::PoissonFanout;
    use gossip_model::percolation::SitePercolation;
    use gossip_stats::rng::SplitMix64;

    fn mean_reliability(n: usize, z: f64, q: f64, loss: f64, reps: u64, seed: u64) -> f64 {
        let dist = PoissonFanout::new(z);
        let sampler = FanoutSampler::new(&dist);
        let flat = FlatPercolation {
            n,
            q,
            loss,
            dist: &dist,
            sampler: &sampler,
        };
        let mut scratch = PercolationScratch::new(n);
        let total: f64 = (0..reps)
            .map(|rep| {
                let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, rep));
                flat.run(&mut scratch, &mut rng)
            })
            .sum();
        total / reps as f64
    }

    #[test]
    fn matches_the_analytic_giant_component() {
        // Po(4) at q = 0.9: S from the generating-function model.
        let dist = PoissonFanout::new(4.0);
        let predicted = SitePercolation::new(&dist, 0.9)
            .unwrap()
            .reliability()
            .unwrap();
        let measured = mean_reliability(5000, 4.0, 0.9, 0.0, 12, 0xF1A7);
        assert!(
            (measured - predicted).abs() < 0.03,
            "flat {measured} vs analytic {predicted}"
        );
    }

    #[test]
    fn loss_thins_to_the_smaller_poisson() {
        // Po(6) with 25% bond loss ≈ Po(4.5) lossless.
        let lossy = mean_reliability(5000, 6.0, 0.9, 0.25, 10, 1);
        let thinned = mean_reliability(5000, 4.5, 0.9, 0.0, 10, 2);
        assert!((lossy - thinned).abs() < 0.04, "lossy {lossy} vs {thinned}");
    }

    #[test]
    fn subcritical_collapses() {
        // q = 0.15 < q_c = 0.25 for Po(4).
        let r = mean_reliability(5000, 4.0, 0.15, 0.0, 8, 3);
        assert!(r < 0.05, "subcritical reliability {r}");
    }

    #[test]
    fn deterministic_and_scratch_reuse_is_clean() {
        let a = mean_reliability(2000, 4.0, 0.9, 0.1, 6, 42);
        let b = mean_reliability(2000, 4.0, 0.9, 0.1, 6, 42);
        assert_eq!(a, b);
    }
}
