//! Compact directed graphs in CSR form.
//!
//! The gossip process is inherently directed — "x gossips the message to
//! y" is the arc `{x, y}` of the paper's reference \[6\]. The directed view
//! is what the message actually traverses; `gossip_graph` builds these.

/// A directed graph with nodes `0..n` in CSR form (out-adjacency).
#[derive(Clone, Debug)]
pub struct Digraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Digraph {
    /// Builds from a directed edge list of `(from, to)` pairs.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range"
            );
            degree[a as usize] += 1;
        }
        Self::from_degrees_and_fill(n, &degree, |push| {
            for &(a, b) in edges {
                push(a, b);
            }
        })
    }

    /// Builds from known out-degrees and a fill callback — lets callers
    /// stream edges without materializing an edge list.
    pub fn from_degrees_and_fill<F>(n: usize, out_degree: &[usize], fill: F) -> Self
    where
        F: FnOnce(&mut dyn FnMut(u32, u32)),
    {
        assert_eq!(out_degree.len(), n, "degree slice length must equal n");
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for d in out_degree {
            offsets.push(offsets.last().expect("non-empty") + d);
        }
        let mut targets = vec![0u32; offsets[n]];
        let mut cursor = offsets[..n].to_vec();
        {
            let mut push = |a: u32, b: u32| {
                targets[cursor[a as usize]] = b;
                cursor[a as usize] += 1;
            };
            fill(&mut push);
        }
        debug_assert_eq!(cursor, offsets[1..].to_vec(), "fill must match degrees");
        Self { offsets, targets }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of arcs.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbours of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Mean out-degree.
    pub fn mean_out_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        self.targets.len() as f64 / self.node_count() as f64
    }

    /// Collapses direction: the undirected [`crate::Graph`] over the same
    /// arcs (used to compare directed reach with undirected components).
    pub fn to_undirected(&self) -> crate::Graph {
        let edges: Vec<(u32, u32)> = (0..self.node_count() as u32)
            .flat_map(|a| self.out_neighbors(a).iter().map(move |&b| (a, b)))
            .collect();
        crate::Graph::from_edges(self.node_count(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_basic() {
        let g = Digraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.arc_count(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(2), 0);
        let mut n0 = g.out_neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn streaming_fill_matches_edge_list() {
        let degrees = [2usize, 1, 0];
        let g = Digraph::from_degrees_and_fill(3, &degrees, |push| {
            push(0, 2);
            push(1, 0);
            push(0, 1);
        });
        assert_eq!(g.arc_count(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn to_undirected_symmetrizes() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2)]);
        let u = g.to_undirected();
        assert_eq!(u.edge_count(), 2);
        assert!(u.neighbors(1).contains(&0));
        assert!(u.neighbors(1).contains(&2));
        assert!(u.neighbors(0).contains(&1));
    }

    #[test]
    fn mean_out_degree() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((g.mean_out_degree() - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edges() {
        Digraph::from_edges(2, &[(3, 0)]);
    }
}
