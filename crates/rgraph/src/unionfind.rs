//! Disjoint-set forest (union-find) with path halving and union by size.
//!
//! The workhorse behind every component census in this crate. Both
//! optimizations together give effectively-constant amortized operations;
//! `u32` parent indices keep the structure cache-friendly for the
//! million-node graphs in the phase-transition scans.

/// Disjoint-set forest over elements `0..len`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    /// Parent pointer per element; roots point at themselves.
    parent: Vec<u32>,
    /// Component size, valid only at roots.
    size: Vec<u32>,
    /// Number of disjoint sets.
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(
            len <= u32::MAX as usize,
            "union-find limited to u32 indices"
        );
        Self {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure tracks no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Finds the set representative of `x`, halving the path on the way.
    #[inline]
    pub fn find(&mut self, mut x: u32) -> u32 {
        debug_assert!((x as usize) < self.parent.len());
        // Path halving: point every other node at its grandparent.
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        if ra == rb {
            return false;
        }
        // Union by size: attach the smaller tree under the larger.
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: u32) -> u32 {
        let root = self.find(x);
        self.size[root as usize]
    }

    /// Size of the largest set.
    pub fn largest(&mut self) -> u32 {
        let len = self.len();
        let mut best = 0u32;
        for x in 0..len as u32 {
            if self.parent[x as usize] == x {
                best = best.max(self.size[x as usize]);
            }
        }
        best
    }

    /// Sizes of all sets, unordered.
    pub fn component_sizes(&mut self) -> Vec<u32> {
        let len = self.len();
        let mut out = Vec::with_capacity(self.components);
        for x in 0..len as u32 {
            if self.parent[x as usize] == x {
                out.push(self.size[x as usize]);
            }
        }
        out
    }

    /// Resets to all-singletons without reallocating — the percolation
    /// Monte Carlo reuses one structure across replications.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.size.fill(1);
        self.components = self.parent.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.size_of(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "repeat union returns false");
        assert_eq!(uf.component_count(), 4);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 3));
        assert_eq!(uf.size_of(3), 4);
        assert_eq!(uf.largest(), 4);
    }

    #[test]
    fn component_sizes_sum_to_len() {
        let mut uf = UnionFind::new(10);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(5, 6);
        let sizes = uf.component_sizes();
        assert_eq!(sizes.iter().sum::<u32>(), 10);
        assert_eq!(sizes.len(), uf.component_count());
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 1, 1, 1, 1, 2, 3]);
    }

    #[test]
    fn chain_path_compression() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..(n as u32 - 1) {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.size_of(0), n as u32);
        // After find, paths should be (mostly) flat — spot-check depth 1.
        let root = uf.find(0);
        assert_eq!(uf.find(n as u32 - 1), root);
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.reset();
        assert_eq!(uf.component_count(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.size_of(2), 1);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
        assert_eq!(uf.largest(), 0);
        assert!(uf.component_sizes().is_empty());
    }
}
