//! The gossip digraph: the paper's Fig. 1 algorithm frozen into a graph.
//!
//! One execution of the general gossiping algorithm determines, for every
//! member, *who it would relay to if it ever received the message*: a
//! fanout drawn from `P` and that many distinct uniformly random targets.
//! Together with the crash pattern (each non-source member failed with
//! probability `1 − q`), this digraph fully determines the execution —
//! the message reaches exactly the nodes reachable from the source
//! through nonfailed intermediaries. Building the graph first (rather
//! than simulating message passing) is what lets us measure both the
//! directed reach *and* the undirected component structure the analysis
//! talks about, on the same random object.

use gossip_model::distribution::FanoutDistribution;
use gossip_stats::rng::Xoshiro256StarStar;

use crate::digraph::Digraph;

/// A realized gossip execution: who-points-at-whom plus the crash
/// pattern.
#[derive(Clone, Debug)]
pub struct GossipGraph {
    /// The relay digraph (arcs from every member, failed or not — failed
    /// members' arcs exist but are never traversed, matching "crash after
    /// receiving but before forwarding").
    pub digraph: Digraph,
    /// `failed[v]` — whether member `v` crashed. `failed[source]` is
    /// always `false` (paper §4.1: the source never fails).
    pub failed: Vec<bool>,
    /// The source member.
    pub source: u32,
}

impl GossipGraph {
    /// Number of members.
    pub fn n(&self) -> usize {
        self.digraph.node_count()
    }

    /// Number of nonfailed members (source included).
    pub fn nonfailed_count(&self) -> usize {
        self.failed.iter().filter(|&&f| !f).count()
    }
}

/// Builder for [`GossipGraph`] realizations.
#[derive(Clone, Copy, Debug)]
pub struct GossipGraphBuilder<'a, D: FanoutDistribution + ?Sized> {
    dist: &'a D,
    n: usize,
    q: f64,
    source: u32,
}

impl<'a, D: FanoutDistribution + ?Sized> GossipGraphBuilder<'a, D> {
    /// Creates a builder for `Gossip(n, P, q)` with source member 0.
    pub fn new(dist: &'a D, n: usize, q: f64) -> Self {
        assert!(n >= 2, "group needs at least 2 members");
        assert!(
            n <= u32::MAX as usize,
            "member ids are u32 (n <= 2^32 - 1, got {n})"
        );
        assert!(
            q > 0.0 && q <= 1.0,
            "nonfailed ratio must be in (0, 1], got {q}"
        );
        Self {
            dist,
            n,
            q,
            source: 0,
        }
    }

    /// Changes the source member (default 0).
    pub fn with_source(mut self, source: u32) -> Self {
        assert!((source as usize) < self.n, "source out of range");
        self.source = source;
        self
    }

    /// Realizes one execution.
    ///
    /// Every member (failed or not) draws its fanout and targets — the
    /// paper treats "crash before receiving" and "crash after receiving
    /// but before forwarding" identically, so the arcs of failed members
    /// simply never carry the message. Targets are distinct and exclude
    /// the sender (sampling without replacement from the membership
    /// view).
    pub fn build(&self, rng: &mut Xoshiro256StarStar) -> GossipGraph {
        let n = self.n;
        // Crash pattern: i.i.d. with probability 1 − q, source immune.
        let mut failed = Vec::with_capacity(n);
        for v in 0..n as u32 {
            failed.push(v != self.source && !rng.next_bool(self.q));
        }

        // Fanouts first (so CSR offsets are known), then targets.
        let mut fanouts = Vec::with_capacity(n);
        for _ in 0..n {
            // A member cannot usefully gossip to more distinct members
            // than exist besides itself.
            fanouts.push(self.dist.sample(rng).min(n - 1));
        }

        // Scratch buffer for distinct-target rejection sampling: fanouts
        // are small (≪ n), so a linear duplicate scan beats hashing.
        let mut chosen: Vec<u32> = Vec::with_capacity(16);
        let digraph = Digraph::from_degrees_and_fill(n, &fanouts, |push| {
            for v in 0..n as u32 {
                let f = fanouts[v as usize];
                chosen.clear();
                while chosen.len() < f {
                    let t = rng.next_below(n as u64) as u32;
                    if t == v || chosen.contains(&t) {
                        continue;
                    }
                    chosen.push(t);
                    push(v, t);
                }
            }
        });

        GossipGraph {
            digraph,
            failed,
            source: self.source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::distribution::{FixedFanout, PoissonFanout};

    #[test]
    fn source_never_fails_and_ratio_holds() {
        let dist = PoissonFanout::new(4.0);
        let builder = GossipGraphBuilder::new(&dist, 4000, 0.6);
        let mut rng = Xoshiro256StarStar::new(41);
        let g = builder.build(&mut rng);
        assert!(!g.failed[0]);
        let nonfailed = g.nonfailed_count();
        let expected = 0.6 * 4000.0;
        assert!(
            (nonfailed as f64 - expected).abs() < 4.0 * (4000.0f64 * 0.6 * 0.4).sqrt(),
            "nonfailed = {nonfailed}"
        );
    }

    #[test]
    fn fanouts_match_distribution_mean() {
        let dist = PoissonFanout::new(4.0);
        let builder = GossipGraphBuilder::new(&dist, 2000, 1.0);
        let mut rng = Xoshiro256StarStar::new(5);
        let g = builder.build(&mut rng);
        let mean = g.digraph.mean_out_degree();
        assert!((mean - 4.0).abs() < 0.2, "mean out-degree {mean}");
    }

    #[test]
    fn targets_distinct_and_not_self() {
        let dist = FixedFanout::new(7);
        let builder = GossipGraphBuilder::new(&dist, 100, 1.0);
        let mut rng = Xoshiro256StarStar::new(9);
        let g = builder.build(&mut rng);
        for v in 0..100u32 {
            let out = g.digraph.out_neighbors(v);
            assert_eq!(out.len(), 7);
            assert!(!out.contains(&v), "self-target at {v}");
            let mut sorted = out.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 7, "duplicate target at {v}");
        }
    }

    #[test]
    fn fanout_clamped_to_group_size() {
        // Fanout 10 in a 4-member group must clamp to 3 distinct targets.
        let dist = FixedFanout::new(10);
        let builder = GossipGraphBuilder::new(&dist, 4, 1.0);
        let mut rng = Xoshiro256StarStar::new(2);
        let g = builder.build(&mut rng);
        for v in 0..4u32 {
            assert_eq!(g.digraph.out_degree(v), 3);
        }
    }

    #[test]
    fn custom_source_is_immune() {
        let dist = PoissonFanout::new(2.0);
        let builder = GossipGraphBuilder::new(&dist, 500, 0.1).with_source(42);
        let mut rng = Xoshiro256StarStar::new(77);
        let g = builder.build(&mut rng);
        assert!(!g.failed[42]);
        assert_eq!(g.source, 42);
    }

    #[test]
    fn deterministic_under_seed() {
        let dist = PoissonFanout::new(3.0);
        let builder = GossipGraphBuilder::new(&dist, 300, 0.8);
        let a = builder.build(&mut Xoshiro256StarStar::new(123));
        let b = builder.build(&mut Xoshiro256StarStar::new(123));
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.digraph.arc_count(), b.digraph.arc_count());
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn rejects_bad_source() {
        let dist = PoissonFanout::new(3.0);
        let _ = GossipGraphBuilder::new(&dist, 10, 0.5).with_source(10);
    }
}
