//! Directed reachability: who actually receives the message.
//!
//! The message starts at the source and crosses an arc `v → w` only if
//! `v` is nonfailed (failed members never forward — the paper's fail-stop
//! semantics collapses both crash timings to exactly this rule). The set
//! of reached members, intersected with the nonfailed members, gives the
//! simulated reliability `n_rece / n_nonfailed` of §4.2.

use crate::digraph::Digraph;
use crate::gossip_graph::GossipGraph;

/// Outcome of one reachability run over a gossip graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReachOutcome {
    /// `reached[v]` — whether member `v` received the message (failed
    /// members can receive; they just never forward).
    pub reached: Vec<bool>,
    /// Number of nonfailed members that received the message (`n_rece`).
    pub nonfailed_reached: usize,
    /// Number of nonfailed members in total (`n_nonfailed`).
    pub nonfailed_total: usize,
    /// Total messages sent = arcs traversed from nonfailed reached nodes.
    pub messages_sent: usize,
}

impl ReachOutcome {
    /// Simulated reliability `n_rece / n_nonfailed` (paper §4.2).
    pub fn reliability(&self) -> f64 {
        if self.nonfailed_total == 0 {
            return 0.0;
        }
        self.nonfailed_reached as f64 / self.nonfailed_total as f64
    }

    /// Success of gossiping: every nonfailed member received the message.
    pub fn is_success(&self) -> bool {
        self.nonfailed_reached == self.nonfailed_total
    }
}

/// Breadth-first reach over a gossip graph (source + crash pattern
/// bundled).
pub fn reach(gossip: &GossipGraph) -> ReachOutcome {
    reach_from(&gossip.digraph, &gossip.failed, gossip.source)
}

/// Breadth-first reach from `source` on `digraph`, where `failed` nodes
/// absorb but never forward.
pub fn reach_from(digraph: &Digraph, failed: &[bool], source: u32) -> ReachOutcome {
    let n = digraph.node_count();
    assert_eq!(failed.len(), n, "failure mask length must equal node count");
    assert!((source as usize) < n, "source out of range");
    assert!(!failed[source as usize], "the source must be nonfailed");

    let mut reached = vec![false; n];
    let mut queue = Vec::with_capacity(n / 4 + 1);
    let mut messages_sent = 0usize;
    reached[source as usize] = true;
    queue.push(source);
    // `queue` doubles as BFS frontier storage: a cursor walks it in
    // place, so the whole traversal allocates twice (reached + queue).
    let mut cursor = 0usize;
    while cursor < queue.len() {
        let v = queue[cursor];
        cursor += 1;
        if failed[v as usize] {
            continue; // received, but crashes before forwarding
        }
        let outs = digraph.out_neighbors(v);
        messages_sent += outs.len();
        for &w in outs {
            if !reached[w as usize] {
                reached[w as usize] = true;
                queue.push(w);
            }
        }
    }

    let mut nonfailed_reached = 0usize;
    let mut nonfailed_total = 0usize;
    for v in 0..n {
        if !failed[v] {
            nonfailed_total += 1;
            if reached[v] {
                nonfailed_reached += 1;
            }
        }
    }
    ReachOutcome {
        reached,
        nonfailed_reached,
        nonfailed_total,
        messages_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_digraph(n: usize) -> Digraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Digraph::from_edges(n, &edges)
    }

    #[test]
    fn full_line_reaches_everyone() {
        let g = line_digraph(5);
        let out = reach_from(&g, &[false; 5], 0);
        assert_eq!(out.nonfailed_reached, 5);
        assert!(out.is_success());
        assert_eq!(out.reliability(), 1.0);
        assert_eq!(out.messages_sent, 4);
    }

    #[test]
    fn failed_node_blocks_forwarding_but_receives() {
        // 0 → 1 → 2; node 1 failed: it receives but never forwards.
        let g = line_digraph(3);
        let failed = [false, true, false];
        let out = reach_from(&g, &failed, 0);
        assert!(out.reached[1], "failed node still receives");
        assert!(!out.reached[2], "message must not pass through a crash");
        assert_eq!(out.nonfailed_total, 2); // nodes 0 and 2
        assert_eq!(out.nonfailed_reached, 1); // only the source
        assert!((out.reliability() - 0.5).abs() < 1e-15);
        assert!(!out.is_success());
    }

    #[test]
    fn unreachable_branch() {
        // 0 → 1, 2 → 3: second pair disconnected from source.
        let g = Digraph::from_edges(4, &[(0, 1), (2, 3)]);
        let out = reach_from(&g, &[false; 4], 0);
        assert_eq!(out.nonfailed_reached, 2);
        assert!((out.reliability() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn source_only_group() {
        let g = Digraph::from_edges(3, &[]);
        let out = reach_from(&g, &[false, true, true], 0);
        assert_eq!(out.nonfailed_total, 1);
        assert_eq!(out.nonfailed_reached, 1);
        assert!(out.is_success(), "source alone counts as total success");
        assert_eq!(out.messages_sent, 0);
    }

    #[test]
    fn cycle_terminates() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let out = reach_from(&g, &[false; 3], 0);
        assert_eq!(out.nonfailed_reached, 3);
        assert_eq!(out.messages_sent, 3);
    }

    #[test]
    #[should_panic(expected = "source must be nonfailed")]
    fn rejects_failed_source() {
        let g = line_digraph(2);
        reach_from(&g, &[true, false], 0);
    }
}
