//! Empirical location of the percolation phase transition.
//!
//! Validates the paper's critical point `q_c = 1/G1'(1)` (Eq. 3, Eq. 10
//! for Poisson): sweep `q`, run Monte-Carlo site percolation at each
//! value, and locate the transition by the peak of the second-largest
//! component (the standard finite-size estimator — the susceptibility
//! proxy that is maximal exactly at the transition).

use gossip_model::distribution::FanoutDistribution;
use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};

use crate::configuration::ConfigurationModel;
use crate::percolation_sim::percolate_many;

/// One point of a phase scan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhasePoint {
    /// Occupation (nonfailed) probability.
    pub q: f64,
    /// Mean giant-component fraction of occupied nodes.
    pub reliability: f64,
    /// Mean second-largest-component fraction (peaks at q_c).
    pub second_fraction: f64,
    /// Mean susceptibility of finite components.
    pub susceptibility: f64,
}

/// Result of a phase scan over `q`.
#[derive(Clone, Debug)]
pub struct PhaseScan {
    /// The scanned points, in increasing `q`.
    pub points: Vec<PhasePoint>,
    /// Estimated critical point: `q` of the second-fraction peak.
    pub estimated_qc: f64,
}

/// Scans occupation probabilities `qs` on a fresh configuration-model
/// graph per replication (graph disorder is averaged out, as in the
/// paper's simulations).
///
/// `reps` graphs × 1 percolation each per `q` point. Deterministic in
/// `base_seed`.
pub fn scan_configuration_model<D: FanoutDistribution + ?Sized>(
    dist: &D,
    n: usize,
    qs: &[f64],
    reps: usize,
    base_seed: u64,
) -> PhaseScan {
    assert!(!qs.is_empty(), "need at least one q value");
    let mut points = Vec::with_capacity(qs.len());
    for (qi, &q) in qs.iter().enumerate() {
        let mut rel = 0.0;
        let mut second = 0.0;
        let mut susc = 0.0;
        for rep in 0..reps {
            // Independent graph and percolation pattern per replication.
            let graph_seed = SplitMix64::derive(base_seed, (qi * reps + rep) as u64 * 2);
            let perc_seed = SplitMix64::derive(base_seed, (qi * reps + rep) as u64 * 2 + 1);
            let g =
                ConfigurationModel::new(dist, n).generate(&mut Xoshiro256StarStar::new(graph_seed));
            let stats = percolate_many(&g, q, &[], 1, perc_seed);
            rel += stats.reliability.mean();
            second += stats.second_fraction.mean();
            susc += stats.susceptibility.mean();
        }
        let r = reps as f64;
        points.push(PhasePoint {
            q,
            reliability: rel / r,
            second_fraction: second / r,
            susceptibility: susc / r,
        });
    }
    let estimated_qc = points
        .iter()
        .max_by(|a, b| {
            a.second_fraction
                .partial_cmp(&b.second_fraction)
                .expect("fractions are finite")
        })
        .map(|p| p.q)
        .expect("non-empty scan");
    PhaseScan {
        points,
        estimated_qc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::distribution::PoissonFanout;

    #[test]
    fn poisson_transition_near_one_over_z() {
        // Po(4): q_c = 0.25. A coarse scan on 4000-node graphs should put
        // the second-component peak within ±0.08 of it.
        let dist = PoissonFanout::new(4.0);
        let qs: Vec<f64> = (1..=12).map(|i| i as f64 * 0.05).collect(); // 0.05..0.60
        let scan = scan_configuration_model(&dist, 4000, &qs, 4, 2024);
        assert!(
            (scan.estimated_qc - 0.25).abs() <= 0.08,
            "estimated q_c = {} (expected ≈ 0.25)",
            scan.estimated_qc
        );
        // Reliability should be ~0 well below and large well above.
        let below = &scan.points[0]; // q = 0.05
        let above = scan.points.last().unwrap(); // q = 0.60
        assert!(below.reliability < 0.05, "below: {}", below.reliability);
        assert!(above.reliability > 0.5, "above: {}", above.reliability);
    }

    #[test]
    fn scan_is_deterministic() {
        let dist = PoissonFanout::new(3.0);
        let qs = [0.2, 0.4, 0.6];
        let a = scan_configuration_model(&dist, 500, &qs, 2, 7);
        let b = scan_configuration_model(&dist, 500, &qs, 2, 7);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.reliability, pb.reliability);
        }
        assert_eq!(a.estimated_qc, b.estimated_qc);
    }

    #[test]
    #[should_panic(expected = "at least one q value")]
    fn rejects_empty_scan() {
        let dist = PoissonFanout::new(3.0);
        scan_configuration_model(&dist, 100, &[], 1, 1);
    }
}
