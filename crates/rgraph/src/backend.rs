//! The random-graph evaluation layer of the unified `Scenario` →
//! `Backend` → `Report` API.
//!
//! [`GraphBackend`] is the Monte-Carlo counterpart of the paper's §4
//! modeling object itself: it generates configuration-model graphs with
//! the scenario's fanout distribution as degree distribution, applies
//! site percolation for crashes (occupied ⇔ nonfailed, Eq. 1) and bond
//! percolation for message loss (an edge transmits with probability
//! `1 − loss`), and measures the giant component of the percolated
//! graph — the paper's reliability `R(q, P)` (Eq. 4/11) without any
//! protocol dynamics.

use gossip_model::percolation::SitePercolation;
use gossip_model::scenario::{Backend, MembershipSpec, ProtocolSpec, Report, Scenario};
use gossip_model::{success, ModelError};
use gossip_stats::descriptive::OnlineStats;
use gossip_stats::parallel::parallel_map;
use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};

use crate::configuration::ConfigurationModel;
use crate::graph::Graph;
use crate::percolation_sim::percolate;

/// Keeps each edge independently with probability `1 − loss` — bond
/// percolation, the graph-level model of message loss.
fn thin_edges(g: &Graph, loss: f64, rng: &mut Xoshiro256StarStar) -> Graph {
    let kept: Vec<(u32, u32)> = g.edges().filter(|_| !rng.next_bool(loss)).collect();
    Graph::from_edges(g.node_count(), &kept)
}

/// The random-graph percolation layer: giant components of percolated
/// configuration-model graphs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphBackend;

impl Backend for GraphBackend {
    fn name(&self) -> &'static str {
        "graph"
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<Report, ModelError> {
        scenario.validate()?;
        let q = scenario.q().ok_or(ModelError::Unsupported {
            backend: "graph",
            what: "crash schedules (percolation is a static snapshot)",
        })?;
        if scenario.membership != MembershipSpec::Full {
            return Err(ModelError::Unsupported {
                backend: "graph",
                what: "partial-view membership (configuration models draw targets uniformly)",
            });
        }
        if scenario.protocol != ProtocolSpec::Push {
            return Err(ModelError::Unsupported {
                backend: "graph",
                what: "protocol variants (the random-graph layer models the Fig. 1 push algorithm)",
            });
        }
        let dist = scenario.fanout.build()?;

        let reliabilities: Vec<f64> = parallel_map(scenario.replications, |rep| {
            let seed = SplitMix64::derive(scenario.seed, rep as u64);
            let mut graph_rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, 0x6A));
            let graph = ConfigurationModel::new(&dist, scenario.n).generate(&mut graph_rng);
            let mut perc_rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, 0x9C));
            let graph = if scenario.loss > 0.0 {
                thin_edges(&graph, scenario.loss, &mut perc_rng)
            } else {
                graph
            };
            percolate(&graph, q, &[], &mut perc_rng).reliability()
        });

        let mut stats = OnlineStats::new();
        stats.extend(reliabilities.iter().copied());
        let reliability = stats.mean();
        let ci = stats.ci95();
        let critical_q = SitePercolation::new(&dist, 1.0)?.critical_q();
        Ok(Report {
            backend: self.name().to_string(),
            scenario: scenario.label(),
            replications: scenario.replications,
            reliability,
            reliability_std_error: stats.sem(),
            reliability_ci95: (ci.lo, ci.hi),
            // The static census has no fizzle mode: raw = conditional.
            reliability_raw: Some(reliability),
            critical_q,
            // The undirected census has no source dynamics, hence no
            // take-off/fizzle split and no rounds or message cost.
            takeoff_rate: None,
            rounds: None,
            messages_per_member: None,
            quiescence_secs: None,
            transport: None,
            messages_lost: None,
            success_within_t: success::success_probability(reliability, scenario.executions),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::scenario::{AnalyticBackend, FanoutSpec};

    fn headline(n: usize, reps: usize) -> Scenario {
        Scenario::new(n, FanoutSpec::poisson(4.0))
            .with_failure_ratio(0.9)
            .with_replications(reps)
    }

    #[test]
    fn graph_matches_analytic_headline() {
        let scenario = headline(5000, 10);
        let analytic = AnalyticBackend.evaluate(&scenario).unwrap();
        let graph = GraphBackend.evaluate(&scenario).unwrap();
        assert!(
            (graph.reliability - analytic.reliability).abs() < 0.02,
            "graph {} vs analytic {}",
            graph.reliability,
            analytic.reliability
        );
        assert!(graph.reliability_std_error < 0.02);
        assert_eq!(graph.replications, 10);
    }

    #[test]
    fn graph_loss_is_bond_percolation() {
        // Po(6), q = 0.9, loss 0.25 ≈ Po(4.5) lossless.
        let lossy = GraphBackend
            .evaluate(
                &Scenario::new(5000, FanoutSpec::poisson(6.0))
                    .with_failure_ratio(0.9)
                    .with_loss(0.25)
                    .with_replications(8),
            )
            .unwrap();
        let analytic = AnalyticBackend
            .evaluate(&Scenario::new(5000, FanoutSpec::poisson(4.5)).with_failure_ratio(0.9))
            .unwrap();
        assert!(
            (lossy.reliability - analytic.reliability).abs() < 0.03,
            "lossy graph {} vs thinned analytic {}",
            lossy.reliability,
            analytic.reliability
        );
    }

    #[test]
    fn graph_subcritical_has_no_giant() {
        let scenario = Scenario::new(5000, FanoutSpec::poisson(4.0))
            .with_failure_ratio(0.15) // below q_c = 0.25
            .with_replications(5);
        let report = GraphBackend.evaluate(&scenario).unwrap();
        assert!(report.reliability < 0.05, "r = {}", report.reliability);
    }

    #[test]
    fn graph_rejects_unsupported() {
        let scamp = headline(500, 3).with_membership(MembershipSpec::Scamp { c: 1 });
        assert!(matches!(
            GraphBackend.evaluate(&scamp),
            Err(ModelError::Unsupported { .. })
        ));
        let flood = headline(500, 3).with_protocol(ProtocolSpec::Flood);
        assert!(matches!(
            GraphBackend.evaluate(&flood),
            Err(ModelError::Unsupported { .. })
        ));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = GraphBackend.evaluate(&headline(2000, 5)).unwrap();
        let b = GraphBackend.evaluate(&headline(2000, 5)).unwrap();
        assert_eq!(a.reliability, b.reliability);
    }
}
