//! The random-graph evaluation layer of the unified `Scenario` →
//! `Backend` → `Report` API.
//!
//! [`GraphBackend`] is the Monte-Carlo counterpart of the paper's §4
//! modeling object itself: it generates configuration-model graphs with
//! the scenario's fanout distribution as degree distribution, applies
//! site percolation for crashes (occupied ⇔ nonfailed, Eq. 1) and bond
//! percolation for message loss (an edge transmits with probability
//! `1 − loss`), and measures the giant component of the percolated
//! graph — the paper's reliability `R(q, P)` (Eq. 4/11) without any
//! protocol dynamics.
//!
//! Static fault families percolate too: a correlated zone failure adds
//! the killed zones to the crash set (the scheduled `at_ms` collapses
//! to an at-start kill — a static census has no clock, so this is the
//! conservative approximation) and an adversary removes its blocked
//! arcs from the relay digraph. Dynamic families (churn, bursty loss)
//! have per-event state no snapshot can express; they are declined
//! with a typed [`ModelError::Unsupported`].

use gossip_engine::{FanoutSampler, RelayScratch, RelaySetup, FLAT_STREAM, FLAT_TOPOLOGY_STREAM};
use gossip_faults::{zone_members, BlockedLinks};
use gossip_model::distribution::FanoutDistribution;
use gossip_model::loss::LossyGossip;
use gossip_model::percolation::SitePercolation;
use gossip_model::scenario::{Backend, MembershipSpec, ProtocolSpec, Report, Scenario};
use gossip_model::{success, ModelError};
use gossip_stats::descriptive::OnlineStats;
use gossip_stats::parallel::parallel_map;
use gossip_stats::rng::{SplitMix64, Xoshiro256StarStar};
use gossip_topology::select_targets;

use crate::configuration::ConfigurationModel;
use crate::digraph::Digraph;
use crate::flat::{FlatPercolation, PercolationScratch};
use crate::graph::Graph;
use crate::percolation_sim::percolate;
use crate::reach::reach_from;

/// Seed-stream tags for the structured-overlay path (the default path
/// keeps its historical 0x6A/0x9C streams untouched).
const TOPOLOGY_STREAM: u64 = 0x70;
const RELAY_STREAM: u64 = 0xD1;
/// Same tag the protocol engine derives its blocked-link set from, so
/// both layers face the same per-replication adversary.
const ADVERSARY_STREAM: u64 = 0xAD7E;

/// Keeps each edge independently with probability `1 − loss` — bond
/// percolation, the graph-level model of message loss.
fn thin_edges(g: &Graph, loss: f64, rng: &mut Xoshiro256StarStar) -> Graph {
    let kept: Vec<(u32, u32)> = g.edges().filter(|_| !rng.next_bool(loss)).collect();
    Graph::from_edges(g.node_count(), &kept)
}

/// The random-graph percolation layer: giant components of percolated
/// configuration-model graphs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphBackend;

impl Backend for GraphBackend {
    fn name(&self) -> &'static str {
        "graph"
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<Report, ModelError> {
        scenario.validate()?;
        let q = scenario.q().ok_or(ModelError::Unsupported {
            backend: "graph",
            what: "crash schedules (percolation is a static snapshot)",
        })?;
        if scenario.membership != MembershipSpec::Full {
            return Err(ModelError::Unsupported {
                backend: "graph",
                what: "partial-view membership (configuration models draw targets uniformly)",
            });
        }
        if scenario.protocol != ProtocolSpec::Push {
            return Err(ModelError::Unsupported {
                backend: "graph",
                what: "protocol variants (the random-graph layer models the Fig. 1 push algorithm)",
            });
        }
        if let Some(what) = scenario.faults.first_dynamic_family() {
            return Err(ModelError::Unsupported {
                backend: "graph",
                what,
            });
        }
        if scenario.traffic.is_some() {
            return Err(ModelError::Unsupported {
                backend: "graph",
                what: "multi-message traffic (a static percolation census has no rounds, \
                       queues, or bandwidth)",
            });
        }
        let dist = scenario.fanout.build()?;
        let flat = scenario.engine.flat_for(scenario.n);
        // Static faults (zone kills, adversarial blocking) need a source
        // and directed reach, so they ride the structured path even on
        // the default complete overlay.
        if !scenario.topology.is_default() || !scenario.faults.is_default() {
            return if flat {
                evaluate_structured_flat(scenario, q, &*dist)
            } else {
                evaluate_structured(scenario, q, &*dist)
            };
        }
        if flat {
            return evaluate_flat_default(scenario, q, &*dist);
        }

        let reliabilities: Vec<f64> = parallel_map(scenario.replications, |rep| {
            let seed = SplitMix64::derive(scenario.seed, rep as u64);
            let mut graph_rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, 0x6A));
            let graph = ConfigurationModel::new(&dist, scenario.n).generate(&mut graph_rng);
            let mut perc_rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, 0x9C));
            let graph = if scenario.loss > 0.0 {
                thin_edges(&graph, scenario.loss, &mut perc_rng)
            } else {
                graph
            };
            percolate(&graph, q, &[], &mut perc_rng).reliability()
        });

        let mut stats = OnlineStats::new();
        stats.extend(reliabilities.iter().copied());
        let reliability = stats.mean();
        let ci = stats.ci95();
        let critical_q = SitePercolation::new(&dist, 1.0)?.critical_q();
        Ok(Report {
            backend: self.name().to_string(),
            scenario: scenario.label(),
            replications: scenario.replications,
            reliability,
            reliability_std_error: stats.sem(),
            reliability_ci95: (ci.lo, ci.hi),
            // The static census has no fizzle mode: raw = conditional.
            reliability_raw: Some(reliability),
            critical_q,
            // The undirected census has no source dynamics, hence no
            // take-off/fizzle split and no rounds or message cost.
            takeoff_rate: None,
            rounds: None,
            messages_per_member: None,
            quiescence_secs: None,
            transport: None,
            topology: None,
            faults: scenario.faults_label(),
            messages_lost: None,
            success_within_t: success::success_probability(reliability, scenario.executions),
            traffic: None,
        })
    }
}

/// The flat default path: fused configuration-model + site/bond
/// percolation over arena-reused scratch (see [`crate::flat`]). Same
/// census as the classic default path, different RNG stream.
fn evaluate_flat_default(
    scenario: &Scenario,
    q: f64,
    dist: &dyn FanoutDistribution,
) -> Result<Report, ModelError> {
    let sampler = FanoutSampler::new(dist);
    let reps = scenario.replications;
    let (chunks, bounds) = gossip_engine::chunk_bounds(reps);
    let per_chunk: Vec<Vec<f64>> = parallel_map(chunks, |chunk| {
        let flat = FlatPercolation {
            n: scenario.n,
            q,
            loss: scenario.loss,
            dist,
            sampler: &sampler,
        };
        let mut scratch = PercolationScratch::new(scenario.n);
        bounds(chunk)
            .map(|rep| {
                let seed = SplitMix64::derive(scenario.seed, rep as u64);
                let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, FLAT_STREAM));
                flat.run(&mut scratch, &mut rng)
            })
            .collect()
    });
    let mut stats = OnlineStats::new();
    stats.extend(per_chunk.iter().flatten().copied());
    let reliability = stats.mean();
    let ci = stats.ci95();
    let critical_q = SitePercolation::new(dist, 1.0)?.critical_q();
    Ok(Report {
        backend: "graph".to_string(),
        scenario: scenario.label(),
        replications: reps,
        reliability,
        reliability_std_error: stats.sem(),
        reliability_ci95: (ci.lo, ci.hi),
        reliability_raw: Some(reliability),
        critical_q,
        takeoff_rate: None,
        rounds: None,
        messages_per_member: None,
        quiescence_secs: None,
        transport: None,
        topology: None,
        faults: scenario.faults_label(),
        messages_lost: None,
        success_within_t: success::success_probability(reliability, scenario.executions),
        traffic: None,
    })
}

/// The flat structured path: the `gossip-engine` lazy relay kernel.
///
/// Two deliberate deviations from the classic structured path, both
/// covered by the cross-engine agreement tests:
/// * the overlay CSR is built ONCE per evaluation (stream
///   [`FLAT_TOPOLOGY_STREAM`]) and shared read-only across
///   replications — a quenched-overlay approximation of the classic
///   per-replication resample;
/// * the relay digraph is never materialized — fanouts and targets are
///   drawn lazily at first receipt, which is distributionally the same
///   process.
fn evaluate_structured_flat(
    scenario: &Scenario,
    q: f64,
    dist: &dyn FanoutDistribution,
) -> Result<Report, ModelError> {
    let spec = scenario.topology;
    let n = scenario.n;
    // Complete overlays are never materialized: K(n−1) neighbour lists
    // at n = 10⁶ would be the exact allocation wall this engine removes.
    let overlay = if spec.is_default() {
        None
    } else {
        Some(spec.build(n, SplitMix64::derive(scenario.seed, FLAT_TOPOLOGY_STREAM)))
    };
    let prefailed: Vec<u32> = scenario
        .faults
        .zone_failure
        .as_ref()
        .map(|zf| {
            let zone_count = match spec.overlay {
                gossip_topology::OverlaySpec::Clustered { zones, .. } => zones,
                _ => unreachable!("validate() requires a Clustered overlay for zone failures"),
            };
            zf.zones
                .iter()
                .flat_map(|&zone| zone_members(n, zone_count, zone))
                .filter(|&member| member != 0)
                .map(|member| member as u32)
                .collect()
        })
        .unwrap_or_default();
    let sampler = FanoutSampler::new(dist);
    let reps = scenario.replications;
    let (chunks, bounds) = gossip_engine::chunk_bounds(reps);
    let per_chunk: Vec<Vec<(f64, f64)>> = parallel_map(chunks, |chunk| {
        let mut scratch = RelayScratch::new(n);
        bounds(chunk)
            .map(|rep| {
                let seed = SplitMix64::derive(scenario.seed, rep as u64);
                // Per replication so a `Random` adversary re-rolls its
                // blocked set each run, like the classic 0xAD7E draw.
                let blocked = scenario.faults.adversary.as_ref().map(|adv| {
                    BlockedLinks::build(n, 0, adv, SplitMix64::derive(seed, ADVERSARY_STREAM))
                });
                let setup = RelaySetup {
                    n,
                    source: 0,
                    q,
                    loss: scenario.loss,
                    dist,
                    sampler: &sampler,
                    overlay: overlay.as_ref().map(|topo| (topo, spec.selection)),
                    blocked: blocked.as_ref(),
                    prefailed: &prefailed,
                };
                let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, FLAT_STREAM));
                let out = setup.run(&mut scratch, &mut rng);
                let messages = out.messages_sent as f64 / out.nonfailed.max(1) as f64;
                (out.reliability(), messages)
            })
            .collect()
    });
    let outcomes: Vec<(f64, f64)> = per_chunk.into_iter().flatten().collect();
    structured_report(scenario, q, dist, outcomes)
}

/// The structured-overlay path: the Fig. 1 relay digraph is realized on
/// the overlay's neighbour lists instead of the complete graph — each
/// member draws `F ~ P` and picks that many targets with the scenario's
/// peer-selection policy — then bond percolation (loss), site
/// percolation (crashes, source immune), and directed reach run as
/// usual. Unlike the undirected census of the default path, this has a
/// source and therefore a take-off/fizzle split; conditioning uses the
/// same complete-graph analytic threshold as the protocol backends so
/// reliabilities stay comparable across layers.
fn evaluate_structured(
    scenario: &Scenario,
    q: f64,
    dist: &dyn FanoutDistribution,
) -> Result<Report, ModelError> {
    let spec = scenario.topology;
    let n = scenario.n;
    // A correlated zone failure resolves against the Clustered overlay's
    // zone count ([`gossip_faults::FaultSpec::validate`] has already
    // rejected every other overlay). The static census has no clock, so
    // the scheduled `at_ms` collapses to an at-start kill.
    let zone_failed: Vec<usize> = scenario
        .faults
        .zone_failure
        .as_ref()
        .map(|zf| {
            let zone_count = match spec.overlay {
                gossip_topology::OverlaySpec::Clustered { zones, .. } => zones,
                _ => unreachable!("validate() requires a Clustered overlay for zone failures"),
            };
            zf.zones
                .iter()
                .flat_map(|&zone| zone_members(n, zone_count, zone))
                .filter(|&member| member != 0)
                .collect()
        })
        .unwrap_or_default();
    let outcomes: Vec<(f64, f64)> = parallel_map(scenario.replications, |rep| {
        let seed = SplitMix64::derive(scenario.seed, rep as u64);
        let overlay = spec.build(n, SplitMix64::derive(seed, TOPOLOGY_STREAM));
        // Per replication so a `Random` adversary re-rolls its blocked
        // set each run, exactly like the protocol engine's 0xAD7E draw.
        let blocked =
            scenario.faults.adversary.as_ref().map(|adv| {
                BlockedLinks::build(n, 0, adv, SplitMix64::derive(seed, ADVERSARY_STREAM))
            });
        let mut rng = Xoshiro256StarStar::new(SplitMix64::derive(seed, RELAY_STREAM));
        let mut arcs: Vec<(u32, u32)> = Vec::new();
        let mut targets = Vec::new();
        for v in 0..n as u32 {
            let fanout = dist.sample(&mut rng);
            select_targets(&overlay, spec.selection, v, fanout, &mut rng, &mut targets);
            for &t in &targets {
                if blocked.as_ref().is_some_and(|b| b.blocks(v, t)) {
                    continue;
                }
                if scenario.loss == 0.0 || !rng.next_bool(scenario.loss) {
                    arcs.push((v, t));
                }
            }
        }
        let digraph = Digraph::from_edges(n, &arcs);
        let mut failed = vec![false; n];
        for &member in &zone_failed {
            failed[member] = true;
        }
        // Crash draws run for every node — pre-failed or not — so the
        // RNG stream is identical with and without a zone failure.
        for slot in failed.iter_mut().skip(1) {
            let crashed = !rng.next_bool(q);
            *slot = *slot || crashed;
        }
        let out = reach_from(&digraph, &failed, 0);
        let messages = out.messages_sent as f64 / out.nonfailed_total.max(1) as f64;
        (out.reliability(), messages)
    });
    structured_report(scenario, q, dist, outcomes)
}

/// Reduces per-replication `(reliability, messages_per_member)` pairs
/// from either structured engine into the graph backend's [`Report`].
fn structured_report(
    scenario: &Scenario,
    q: f64,
    dist: &dyn FanoutDistribution,
    outcomes: Vec<(f64, f64)>,
) -> Result<Report, ModelError> {
    // Take-off threshold: half the complete-graph analytic prediction
    // (0 when subcritical) — the protocol/netsim/runtime convention.
    let prediction = LossyGossip::new(dist, q, scenario.loss)
        .and_then(|m| m.reliability())
        .unwrap_or(1.0);
    let threshold = if prediction < 0.05 {
        0.0
    } else {
        0.5 * prediction
    };
    let mut conditional = OnlineStats::new();
    let mut raw = OnlineStats::new();
    let mut messages = OnlineStats::new();
    let mut takeoffs = 0usize;
    for &(r, m) in &outcomes {
        raw.push(r);
        messages.push(m);
        if r > threshold {
            takeoffs += 1;
            conditional.push(r);
        }
    }
    let reliability = if conditional.count() == 0 {
        0.0
    } else {
        conditional.mean()
    };
    let ci = conditional.ci95();
    let critical_q = SitePercolation::new(dist, 1.0)?.critical_q();
    Ok(Report {
        backend: "graph".to_string(),
        scenario: scenario.label(),
        replications: outcomes.len(),
        reliability,
        reliability_std_error: conditional.sem(),
        reliability_ci95: (ci.lo, ci.hi),
        reliability_raw: Some(raw.mean()),
        // Still the complete-graph Eq. 3 prediction: the overlay shifts
        // the *measured* q_c away from it, which is the point of the
        // topology ablation.
        critical_q,
        takeoff_rate: Some(takeoffs as f64 / outcomes.len() as f64),
        rounds: None,
        messages_per_member: Some(messages.mean()),
        quiescence_secs: None,
        transport: None,
        topology: scenario.topology_label(),
        faults: scenario.faults_label(),
        messages_lost: None,
        success_within_t: success::success_probability(reliability, scenario.executions),
        traffic: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_model::scenario::{AnalyticBackend, FanoutSpec};

    fn headline(n: usize, reps: usize) -> Scenario {
        Scenario::new(n, FanoutSpec::poisson(4.0))
            .with_failure_ratio(0.9)
            .with_replications(reps)
    }

    #[test]
    fn graph_matches_analytic_headline() {
        let scenario = headline(5000, 10);
        let analytic = AnalyticBackend.evaluate(&scenario).unwrap();
        let graph = GraphBackend.evaluate(&scenario).unwrap();
        assert!(
            (graph.reliability - analytic.reliability).abs() < 0.02,
            "graph {} vs analytic {}",
            graph.reliability,
            analytic.reliability
        );
        assert!(graph.reliability_std_error < 0.02);
        assert_eq!(graph.replications, 10);
    }

    #[test]
    fn graph_loss_is_bond_percolation() {
        // Po(6), q = 0.9, loss 0.25 ≈ Po(4.5) lossless.
        let lossy = GraphBackend
            .evaluate(
                &Scenario::new(5000, FanoutSpec::poisson(6.0))
                    .with_failure_ratio(0.9)
                    .with_loss(0.25)
                    .with_replications(8),
            )
            .unwrap();
        let analytic = AnalyticBackend
            .evaluate(&Scenario::new(5000, FanoutSpec::poisson(4.5)).with_failure_ratio(0.9))
            .unwrap();
        assert!(
            (lossy.reliability - analytic.reliability).abs() < 0.03,
            "lossy graph {} vs thinned analytic {}",
            lossy.reliability,
            analytic.reliability
        );
    }

    #[test]
    fn graph_subcritical_has_no_giant() {
        let scenario = Scenario::new(5000, FanoutSpec::poisson(4.0))
            .with_failure_ratio(0.15) // below q_c = 0.25
            .with_replications(5);
        let report = GraphBackend.evaluate(&scenario).unwrap();
        assert!(report.reliability < 0.05, "r = {}", report.reliability);
    }

    #[test]
    fn graph_rejects_unsupported() {
        let scamp = headline(500, 3).with_membership(MembershipSpec::Scamp { c: 1 });
        assert!(matches!(
            GraphBackend.evaluate(&scamp),
            Err(ModelError::Unsupported { .. })
        ));
        let flood = headline(500, 3).with_protocol(ProtocolSpec::Flood);
        assert!(matches!(
            GraphBackend.evaluate(&flood),
            Err(ModelError::Unsupported { .. })
        ));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = GraphBackend.evaluate(&headline(2000, 5)).unwrap();
        let b = GraphBackend.evaluate(&headline(2000, 5)).unwrap();
        assert_eq!(a.reliability, b.reliability);
    }

    #[test]
    fn structured_dense_overlay_approaches_complete() {
        use gossip_topology::OverlaySpec;
        use gossip_topology::TopologySpec;
        // A dense Watts-Strogatz overlay (k = 16, plenty of shortcuts)
        // at a mild operating point behaves like the complete graph.
        let base = Scenario::new(2000, FanoutSpec::poisson(5.0))
            .with_failure_ratio(0.95)
            .with_replications(12);
        let complete = GraphBackend.evaluate(&base).unwrap();
        let structured =
            GraphBackend
                .evaluate(&base.clone().with_topology(TopologySpec::new(
                    OverlaySpec::WattsStrogatz { k: 16, beta: 0.5 },
                )))
                .unwrap();
        assert!(
            (structured.reliability - complete.reliability).abs() < 0.08,
            "ws {} vs complete {}",
            structured.reliability,
            complete.reliability
        );
        assert_eq!(
            structured.topology.as_deref(),
            Some("ws(k=16,beta=0.5)/neigh")
        );
        assert!(structured.takeoff_rate.is_some());
        assert!(structured.messages_per_member.unwrap() > 0.0);
    }

    #[test]
    fn structured_lattice_never_percolates() {
        use gossip_topology::OverlaySpec;
        use gossip_topology::TopologySpec;
        // A 1D circulant is a long thin lattice: any crash density cuts
        // the line, so reach collapses even at q where the complete
        // graph delivers > 0.95.
        let scenario = Scenario::new(2000, FanoutSpec::poisson(4.0))
            .with_failure_ratio(0.9)
            .with_replications(8)
            .with_topology(TopologySpec::new(OverlaySpec::KRegular { k: 4 }));
        let lattice = GraphBackend.evaluate(&scenario).unwrap();
        assert!(
            lattice.reliability_raw.unwrap() < 0.2,
            "lattice raw reliability {} should collapse",
            lattice.reliability_raw.unwrap()
        );
    }

    #[test]
    fn graph_declines_dynamic_faults() {
        use gossip_model::{BurstySpec, ChurnSpec, FaultSpec};
        let churned = headline(500, 3)
            .with_faults(FaultSpec::none().with_churn(ChurnSpec::symmetric(5.0, 100)));
        match GraphBackend.evaluate(&churned) {
            Err(ModelError::Unsupported { backend, what }) => {
                assert_eq!(backend, "graph");
                assert!(what.contains("churn"), "what = {what}");
            }
            other => panic!("expected a typed refusal, got {other:?}"),
        }
        let bursty = headline(500, 3).with_faults(FaultSpec::none().with_bursty_loss(BurstySpec {
            p_gb: 0.1,
            p_bg: 0.4,
            loss_good: 0.0,
            loss_bad: 0.8,
        }));
        assert!(matches!(
            GraphBackend.evaluate(&bursty),
            Err(ModelError::Unsupported { .. })
        ));
    }

    #[test]
    fn zone_kill_percolates_as_at_start_crashes() {
        use gossip_model::FaultSpec;
        use gossip_topology::{OverlaySpec, TopologySpec};
        // Kill 2 of 8 zones of a well-connected clustered overlay at
        // q = 1: the survivors stay one giant component, so raw
        // reliability sits near the 6/8 survivor fraction under the
        // alive-at-end denominator... except the graph layer counts
        // reached/nonfailed, so killing a quarter of the group leaves
        // r ≈ 1 among survivors but strictly fewer than n reached.
        let base = Scenario::new(1600, FanoutSpec::poisson(6.0))
            .with_replications(8)
            .with_topology(TopologySpec::new(OverlaySpec::Clustered {
                zones: 8,
                intra: 4,
                inter: 2,
            }));
        let clean = GraphBackend.evaluate(&base).unwrap();
        let killed = GraphBackend
            .evaluate(
                &base
                    .clone()
                    .with_faults(FaultSpec::none().with_zone_failure(vec![1, 5], 3)),
            )
            .unwrap();
        assert!(clean.reliability > 0.95, "clean r = {}", clean.reliability);
        // Survivors (6 zones + immune source) still reach each other.
        assert!(
            killed.reliability > 0.9,
            "killed-zone conditional r = {}",
            killed.reliability
        );
        assert_eq!(killed.faults.as_deref(), Some("zones([1,5]@3ms)"));
        // Determinism with the fault active.
        let again = GraphBackend
            .evaluate(
                &base
                    .clone()
                    .with_faults(FaultSpec::none().with_zone_failure(vec![1, 5], 3)),
            )
            .unwrap();
        assert_eq!(killed.reliability, again.reliability);
    }

    #[test]
    fn worst_case_adversary_cuts_the_source_fan() {
        use gossip_model::{AdversaryStrategy, FaultSpec};
        // f = n − 1 blocks every out-arc of the source on the complete
        // overlay: nothing leaves node 0, raw reliability collapses to
        // the source alone while the i.i.d.-equivalent loss rate would
        // predict near-full delivery.
        let blocked =
            GraphBackend
                .evaluate(&headline(400, 6).with_failure_ratio(1.0).with_faults(
                    FaultSpec::none().with_adversary(399, AdversaryStrategy::WorstCase),
                ))
                .unwrap();
        assert!(
            blocked.reliability_raw.unwrap() < 0.01,
            "raw r = {}",
            blocked.reliability_raw.unwrap()
        );
        // A random adversary wasting the same budget barely dents it.
        let random = GraphBackend
            .evaluate(
                &headline(400, 6)
                    .with_failure_ratio(1.0)
                    .with_faults(FaultSpec::none().with_adversary(399, AdversaryStrategy::Random)),
            )
            .unwrap();
        assert!(
            random.reliability_raw.unwrap() > 0.9,
            "random raw r = {}",
            random.reliability_raw.unwrap()
        );
    }

    #[test]
    fn flat_engine_agrees_on_the_default_path() {
        use gossip_model::scenario::EngineSpec;
        let base = headline(5000, 10);
        let classic = GraphBackend
            .evaluate(&base.clone().with_engine(EngineSpec::Classic))
            .unwrap();
        let flat = GraphBackend
            .evaluate(&base.with_engine(EngineSpec::Flat))
            .unwrap();
        assert!(
            (flat.reliability - classic.reliability).abs() < 0.03,
            "flat {} vs classic {}",
            flat.reliability,
            classic.reliability
        );
        assert_eq!(flat.scenario, classic.scenario, "labels must not diverge");
    }

    #[test]
    fn flat_engine_agrees_on_a_structured_overlay() {
        use gossip_model::scenario::EngineSpec;
        use gossip_topology::{OverlaySpec, TopologySpec};
        let base = Scenario::new(2000, FanoutSpec::poisson(5.0))
            .with_failure_ratio(0.95)
            .with_replications(12)
            .with_topology(TopologySpec::new(OverlaySpec::WattsStrogatz {
                k: 16,
                beta: 0.5,
            }));
        let classic = GraphBackend
            .evaluate(&base.clone().with_engine(EngineSpec::Classic))
            .unwrap();
        let flat = GraphBackend
            .evaluate(&base.with_engine(EngineSpec::Flat))
            .unwrap();
        // The flat engine quenches the overlay (one build per
        // evaluation), so tolerance is wider than same-engine noise.
        assert!(
            (flat.reliability - classic.reliability).abs() < 0.08,
            "flat {} vs classic {}",
            flat.reliability,
            classic.reliability
        );
        assert!(flat.messages_per_member.unwrap() > 0.0);
    }

    #[test]
    fn auto_engine_below_threshold_matches_classic_byte_for_byte() {
        use gossip_model::scenario::EngineSpec;
        let auto = GraphBackend.evaluate(&headline(2000, 5)).unwrap();
        let classic = GraphBackend
            .evaluate(&headline(2000, 5).with_engine(EngineSpec::Classic))
            .unwrap();
        assert_eq!(auto, classic);
    }

    #[test]
    fn structured_path_is_deterministic() {
        use gossip_topology::OverlaySpec;
        use gossip_topology::TopologySpec;
        let scenario = headline(1000, 5)
            .with_topology(TopologySpec::new(OverlaySpec::Ring { shortcuts: 2000 }));
        let a = GraphBackend.evaluate(&scenario).unwrap();
        let b = GraphBackend.evaluate(&scenario).unwrap();
        assert_eq!(a.reliability, b.reliability);
        assert_eq!(a.reliability_raw, b.reliability_raw);
    }
}
