//! Component census of undirected graphs.
//!
//! Giant-component size is the paper's reliability proxy; the
//! second-largest component and the susceptibility (mean squared finite-
//! component size) locate the phase transition empirically (paper §3:
//! giant ~ n^{2/3} at the transition, others at most ~ n^{2/3}/2).

use crate::graph::Graph;
use crate::unionfind::UnionFind;

/// Summary of the component structure of a graph (optionally restricted
/// to a node subset).
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentCensus {
    /// Number of nodes considered (all, or the occupied subset).
    pub nodes: usize,
    /// Number of components among considered nodes.
    pub count: usize,
    /// Size of the largest component (0 when `nodes == 0`).
    pub largest: usize,
    /// Size of the second-largest component.
    pub second_largest: usize,
    /// Mean size over all components.
    pub mean_size: f64,
    /// Susceptibility: `Σ s² / Σ s` over components *excluding* the
    /// largest — diverging susceptibility marks the phase transition.
    pub susceptibility: f64,
}

impl ComponentCensus {
    /// Largest component as a fraction of considered nodes.
    pub fn largest_fraction(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.largest as f64 / self.nodes as f64
        }
    }

    fn from_sizes(mut sizes: Vec<u32>, nodes: usize) -> Self {
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let largest = sizes.first().copied().unwrap_or(0) as usize;
        let second_largest = sizes.get(1).copied().unwrap_or(0) as usize;
        let count = sizes.len();
        let mean_size = if count == 0 {
            0.0
        } else {
            nodes as f64 / count as f64
        };
        // Susceptibility over finite (non-giant) components.
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for &s in sizes.iter().skip(1) {
            let s = s as f64;
            sum += s;
            sum_sq += s * s;
        }
        let susceptibility = if sum > 0.0 { sum_sq / sum } else { 0.0 };
        Self {
            nodes,
            count,
            largest,
            second_largest,
            mean_size,
            susceptibility,
        }
    }
}

/// Census over **all** nodes of `g`.
pub fn census(g: &Graph) -> ComponentCensus {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    for a in 0..n as u32 {
        for &b in g.neighbors(a) {
            if a < b {
                uf.union(a, b);
            }
        }
    }
    ComponentCensus::from_sizes(uf.component_sizes(), n)
}

/// Census over the subgraph induced by `occupied` nodes: only edges with
/// both endpoints occupied connect, and unoccupied nodes are not counted.
///
/// This is empirical site percolation — the graph-level meaning of the
/// paper's nonfailed ratio `q`.
pub fn census_occupied(g: &Graph, occupied: &[bool]) -> ComponentCensus {
    let n = g.node_count();
    assert_eq!(occupied.len(), n, "occupancy mask length must equal n");
    let mut uf = UnionFind::new(n);
    for a in 0..n as u32 {
        if !occupied[a as usize] {
            continue;
        }
        for &b in g.neighbors(a) {
            if a < b && occupied[b as usize] {
                uf.union(a, b);
            }
        }
    }
    // Collect sizes only for occupied roots.
    let mut sizes = Vec::new();
    let mut occupied_count = 0usize;
    for v in 0..n as u32 {
        if occupied[v as usize] {
            occupied_count += 1;
            if uf.find(v) == v {
                sizes.push(uf.size_of(v));
            }
        }
    }
    ComponentCensus::from_sizes(sizes, occupied_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_of_two_triangles_and_isolate() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let c = census(&g);
        assert_eq!(c.nodes, 7);
        assert_eq!(c.count, 3);
        assert_eq!(c.largest, 3);
        assert_eq!(c.second_largest, 3);
        assert!((c.mean_size - 7.0 / 3.0).abs() < 1e-12);
        assert!((c.largest_fraction() - 3.0 / 7.0).abs() < 1e-12);
        // Susceptibility over non-giant components: sizes {3, 1} →
        // (9 + 1)/(3 + 1) = 2.5.
        assert!((c.susceptibility - 2.5).abs() < 1e-12);
    }

    #[test]
    fn census_occupied_restricts() {
        // Path 0-1-2-3; occupying all but node 1 splits it.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let occ = [true, false, true, true];
        let c = census_occupied(&g, &occ);
        assert_eq!(c.nodes, 3);
        assert_eq!(c.count, 2);
        assert_eq!(c.largest, 2); // {2,3}
        assert_eq!(c.second_largest, 1); // {0}
    }

    #[test]
    fn fully_unoccupied() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let c = census_occupied(&g, &[false, false, false]);
        assert_eq!(c.nodes, 0);
        assert_eq!(c.count, 0);
        assert_eq!(c.largest, 0);
        assert_eq!(c.largest_fraction(), 0.0);
    }

    #[test]
    fn occupied_equals_full_when_all_true() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let full = census(&g);
        let occ = census_occupied(&g, &[true; 5]);
        assert_eq!(full, occ);
    }

    #[test]
    fn empty_graph_census() {
        let g = Graph::from_edges(0, &[]);
        let c = census(&g);
        assert_eq!(c.nodes, 0);
        assert_eq!(c.count, 0);
        assert_eq!(c.mean_size, 0.0);
        assert_eq!(c.susceptibility, 0.0);
    }

    #[test]
    #[should_panic(expected = "occupancy mask length")]
    fn rejects_wrong_mask_length() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        census_occupied(&g, &[true]);
    }
}
