//! # gossip-rgraph
//!
//! Random-graph substrate for the gossip fault-tolerance reproduction.
//!
//! The paper's central modelling move is "the process of generating a
//! random graph is similar to the process of gossiping a message" (§1):
//! one execution of the gossip algorithm *is* a random graph whose degree
//! distribution is the fanout distribution, and node crashes are site
//! percolation on it. This crate makes that correspondence executable:
//!
//! * [`graph`] / [`digraph`] — compact CSR adjacency (flat `u32` arrays,
//!   per the HPC guides: no `Vec<Vec<_>>`, no per-node allocation).
//! * [`unionfind`] — path-halving + union-by-size disjoint sets for
//!   component censuses.
//! * [`configuration`] — the configuration model: uniform random graphs
//!   with a prescribed degree sequence, the graphs the paper's
//!   generating-function analysis describes exactly.
//! * [`gossip_graph`] — the *gossip digraph*: each nonfailed member draws
//!   a fanout from `P` and points at that many uniformly random members;
//!   this is the paper's Fig. 1 algorithm frozen into a graph.
//! * [`components`] — component census, giant/second components,
//!   susceptibility.
//! * [`reach`] — directed reachability from the source (= who receives
//!   the message), with failed nodes absorbing but not forwarding.
//! * [`percolation_sim`] — empirical site percolation on any undirected
//!   graph, the Monte-Carlo counterpart of `gossip_model::percolation`.
//! * [`phase`] — critical-point estimation by susceptibility peak, used
//!   to validate `q_c = 1/G1'(1)` (paper Eq. 3/10).
//! * [`flat`] — the million-node engine's percolation kernel. Where the
//!   classic paths keep `Vec<bool>` membership flags and rebuild CSR
//!   adjacency per replication, the flat layout packs every per-node
//!   set (occupied, failed, reached) into u64-word bitsets — 512
//!   members per cache line, `memset` clears, hardware popcount
//!   reductions — and streams configuration-model stub pairs straight
//!   into a [`UnionFind`] without ever materializing the graph. BFS
//!   frontiers on the relay side (`gossip-engine`) are `u32` arrays
//!   swapped level-by-level over the same bitset visited test. All
//!   scratch lives in arenas reset — never reallocated — between
//!   replications. [`backend::GraphBackend`] switches onto these
//!   kernels above `EngineSpec`'s size threshold (or when a scenario
//!   pins `EngineSpec::Flat`).

pub mod backend;
pub mod components;
pub mod configuration;
pub mod digraph;
pub mod flat;
pub mod gossip_graph;
pub mod graph;
pub mod percolation_sim;
pub mod phase;
pub mod reach;
pub mod unionfind;

pub use backend::GraphBackend;
pub use components::ComponentCensus;
pub use configuration::ConfigurationModel;
pub use digraph::Digraph;
pub use flat::{FlatPercolation, PercolationScratch};
pub use gossip_graph::{GossipGraph, GossipGraphBuilder};
pub use graph::Graph;
pub use percolation_sim::{percolate, PercolationOutcome};
pub use unionfind::UnionFind;
