//! Property-based tests for the simulator substrate.

use gossip_netsim::membership::{FullView, Membership, ScampViews};
use gossip_netsim::queue::EventQueue;
use gossip_netsim::{
    EventKind, FailurePlan, LatencyModel, NetworkConfig, NodeBehavior, NodeCtx, NodeId,
    SimDuration, SimTime, Simulator,
};
use gossip_stats::rng::Xoshiro256StarStar;
use proptest::prelude::*;

/// Behaviour that relays each message once to `fanout` random targets.
struct RelayOnce {
    fanout: usize,
    seen: bool,
}

impl NodeBehavior<u32> for RelayOnce {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, u32>, _from: NodeId, msg: u32) {
        if self.seen {
            return;
        }
        self.seen = true;
        let mut targets = Vec::new();
        ctx.sample_targets(self.fanout, &mut targets);
        for t in targets {
            ctx.send(t, msg);
        }
    }
}

proptest! {
    /// The event queue is a stable priority queue: pops are globally
    /// time-ordered, FIFO among equal timestamps.
    #[test]
    fn queue_pops_sorted_stable(times in proptest::collection::vec(0u64..50, 1..200)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), 0, EventKind::Timer { id: i as u64 });
        }
        let mut last_time = 0u64;
        let mut last_id_at_time: Option<u64> = None;
        while let Some(e) = q.pop() {
            let t = e.time.as_nanos();
            prop_assert!(t >= last_time);
            let id = match e.kind {
                EventKind::Timer { id } => id,
                _ => unreachable!(),
            };
            if t == last_time {
                if let Some(prev) = last_id_at_time {
                    prop_assert!(id > prev, "FIFO violated at t = {}", t);
                }
            }
            last_time = t;
            last_id_at_time = Some(id);
        }
    }

    /// Uniform latency samples stay in bounds; exponential are
    /// non-negative.
    #[test]
    fn latency_models_in_domain(lo in 0u64..1000, span in 0u64..1000, seed in 0u64..100) {
        let mut rng = Xoshiro256StarStar::new(seed);
        let uniform = LatencyModel::Uniform {
            lo: SimDuration::from_nanos(lo),
            hi: SimDuration::from_nanos(lo + span),
        };
        for _ in 0..100 {
            let d = uniform.sample(&mut rng).as_nanos();
            prop_assert!((lo..=lo + span).contains(&d));
        }
        let exp = LatencyModel::Exponential { mean: SimDuration::from_nanos(500) };
        for _ in 0..100 {
            // Non-negativity is structural (u64); just exercise it.
            let _ = exp.sample(&mut rng);
        }
    }

    /// Message conservation: every sent message is delivered, lost, or
    /// absorbed by a crashed node; plus the one injected message.
    #[test]
    fn message_conservation(
        n in 2usize..40,
        fanout in 0usize..6,
        loss in 0.0f64..0.9,
        q in 0.2f64..1.0,
        seed in 0u64..500,
    ) {
        let mut sim = Simulator::new(
            (0..n).map(|_| RelayOnce { fanout, seen: false }).collect::<Vec<_>>(),
            NetworkConfig::new(LatencyModel::constant_millis(1)).with_loss(loss),
            Box::new(FullView::new(n)),
            seed,
        );
        sim.apply_failure_plan(&FailurePlan::paper_model(q, 0));
        sim.inject(0, 0, 7);
        sim.run_to_quiescence();
        let m = sim.metrics();
        prop_assert_eq!(
            m.messages_sent + 1,
            m.messages_delivered + m.messages_lost + m.deliveries_to_crashed,
            "conservation violated: {:?}", m
        );
    }

    /// Determinism: identical seeds give identical metrics.
    #[test]
    fn run_deterministic(n in 2usize..30, seed in 0u64..500) {
        let run = || {
            let mut sim = Simulator::new(
                (0..n).map(|_| RelayOnce { fanout: 2, seen: false }).collect::<Vec<_>>(),
                NetworkConfig::new(LatencyModel::Uniform {
                    lo: SimDuration::from_millis(1),
                    hi: SimDuration::from_millis(5),
                }),
                Box::new(FullView::new(n)),
                seed,
            );
            sim.inject(0, 0, 1);
            sim.run_to_quiescence();
            *sim.metrics()
        };
        prop_assert_eq!(run(), run());
    }

    /// SCAMP views never contain self or duplicates, for any (n, c,
    /// seed); sampling respects the view.
    #[test]
    fn scamp_views_wellformed(n in 2usize..120, c in 0usize..4, seed in 0u64..200) {
        let views = ScampViews::build(n, c, seed);
        prop_assert_eq!(views.group_size(), n);
        for v in 0..n as u32 {
            let view = views.view(v);
            prop_assert!(!view.contains(&v));
            let mut sorted = view.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), view.len());
        }
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut out = Vec::new();
        views.sample_targets(0, 3, &mut rng, &mut out);
        for t in &out {
            prop_assert!(views.view(0).contains(t));
        }
    }

    /// Crash schedules: after a scheduled crash, the node is crashed and
    /// the live count drops accordingly.
    #[test]
    fn crash_schedule_applies(n in 3usize..30, victim in 1u32..29, seed in 0u64..100) {
        prop_assume!((victim as usize) < n);
        let mut sim = Simulator::new(
            (0..n).map(|_| RelayOnce { fanout: 1, seen: false }).collect::<Vec<_>>(),
            NetworkConfig::default(),
            Box::new(FullView::new(n)),
            seed,
        );
        sim.apply_failure_plan(&FailurePlan::CrashAtTimes(vec![(SimTime::from_nanos(5), victim)]));
        sim.run_to_quiescence();
        prop_assert!(sim.is_crashed(victim));
        prop_assert_eq!(sim.live_count(), n - 1);
    }
}
