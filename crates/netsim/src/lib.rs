//! # gossip-netsim
//!
//! A deterministic discrete-event network simulator, rebuilt from scratch
//! as the substrate the paper ran on MATLAB.
//!
//! The paper's §5 simulations execute the gossip algorithm over a group
//! of 1000–5000 members with fail-stop crashes; §3 additionally *assumes*
//! "a scalable membership protocol is available, such as \[12\] (SCAMP)".
//! This crate provides both: an event-driven simulator with configurable
//! latency/loss, crash injection matching the paper's failure model, and
//! membership services (full view, and a SCAMP-style partial-view
//! construction) that protocols draw gossip targets from.
//!
//! Design constraints, per the HPC guides and the reproduction's needs:
//!
//! * **Determinism** — one `u64` seed fixes the entire run: event
//!   tie-breaks are by `(time, sequence)`, all randomness flows through
//!   one `Xoshiro256**`, and nothing depends on thread scheduling or map
//!   iteration order.
//! * **Zero steady-state allocation** — the event queue, BFS-style
//!   outboxes and per-node state are reused; behaviours write into
//!   buffers owned by the simulator.
//! * **Protocol-agnostic** — protocols implement [`NodeBehavior`] and
//!   never touch the queue directly; the simulator owns time.
//!
//! ```
//! use gossip_netsim::{
//!     membership::FullView, LatencyModel, NetworkConfig, NodeBehavior, NodeCtx, NodeId,
//!     Simulator,
//! };
//!
//! // A behaviour that echoes every message back to its sender once.
//! struct Echo {
//!     echoed: bool,
//! }
//! impl NodeBehavior<u32> for Echo {
//!     fn on_message(&mut self, ctx: &mut NodeCtx<'_, u32>, from: NodeId, msg: u32) {
//!         if !self.echoed {
//!             self.echoed = true;
//!             ctx.send(from, msg + 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(
//!     (0..2).map(|_| Echo { echoed: false }).collect(),
//!     NetworkConfig::new(LatencyModel::constant_millis(1)),
//!     Box::new(FullView::new(2)),
//!     42,
//! );
//! sim.inject(0, 1, 7); // deliver 7 to node 1, pretending node 0 sent it
//! sim.run_to_quiescence();
//! // Injection, node 1's echo to node 0, and node 0's echo back.
//! assert_eq!(sim.metrics().messages_delivered, 3);
//! ```

pub mod event;
pub mod fault;
pub mod membership;
pub mod metrics;
pub mod network;
pub mod node;
pub mod queue;
pub mod sim;
pub mod time;
pub mod trace;

pub use event::{Event, EventKind, NodeId};
pub use fault::{FailurePlan, LinkFaults};
pub use metrics::SimMetrics;
pub use network::{LatencyModel, NetworkConfig};
pub use node::{NodeBehavior, NodeCtx};
pub use sim::Simulator;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceKind, Tracer};
