//! Simulation-wide counters.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Counters accumulated over one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// `send()` calls made by behaviours.
    pub messages_sent: u64,
    /// Messages delivered to live nodes (behaviour invoked).
    pub messages_delivered: u64,
    /// Messages dropped by the network loss model.
    pub messages_lost: u64,
    /// Messages that arrived at crashed nodes (absorbed silently).
    pub deliveries_to_crashed: u64,
    /// Timers set by behaviours.
    pub timers_set: u64,
    /// Timers that fired on live nodes.
    pub timers_fired: u64,
    /// Crash events applied.
    pub crashes: u64,
    /// Total events processed.
    pub events_processed: u64,
    /// Time of the last processed event.
    pub last_event_time: SimTime,
}

impl SimMetrics {
    /// Messages that left a node but never reached a live behaviour
    /// (lost in the network or absorbed by a crashed target).
    pub fn messages_wasted(&self) -> u64 {
        self.messages_lost + self.deliveries_to_crashed
    }

    /// Redundancy ratio: messages sent per message delivered (∞ → `None`
    /// when nothing was delivered).
    pub fn redundancy(&self) -> Option<f64> {
        if self.messages_delivered == 0 {
            None
        } else {
            Some(self.messages_sent as f64 / self.messages_delivered as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let m = SimMetrics {
            messages_sent: 100,
            messages_delivered: 80,
            messages_lost: 15,
            deliveries_to_crashed: 5,
            ..Default::default()
        };
        assert_eq!(m.messages_wasted(), 20);
        assert!((m.redundancy().unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn redundancy_none_when_no_deliveries() {
        let m = SimMetrics::default();
        assert_eq!(m.redundancy(), None);
    }
}
