//! Fail-stop failure injection.
//!
//! The paper's failure model (§3, §4.1): members fail only by crashing;
//! a failed member never gossips; crashes "before receiving the message
//! or after receiving it but not yet forwarding it" are treated the same;
//! the source never fails. [`FailurePlan::CrashAtStart`] realizes exactly
//! that — an i.i.d. crash pattern with nonfailed probability `q` and an
//! immune set. [`FailurePlan::CrashAtTimes`] additionally supports
//! mid-run crashes for experiments beyond the paper's model.

use gossip_faults::{BlockedLinks, GeChain, GilbertElliott};
use gossip_stats::rng::Xoshiro256StarStar;
use serde::{Deserialize, Serialize};

use crate::event::NodeId;
use crate::time::SimTime;

/// When and which nodes crash.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FailurePlan {
    /// Nobody crashes.
    None,
    /// Each node independently survives with probability `q` (crashes
    /// with `1 − q`) before the run starts; `immune` nodes (the source)
    /// never crash. The paper's model.
    CrashAtStart {
        /// Nonfailed member ratio `q ∈ (0, 1]`.
        nonfailed_ratio: f64,
        /// Nodes that never crash (the paper's source member).
        immune: Vec<NodeId>,
    },
    /// Explicit crash schedule: node `id` crashes at the given time.
    CrashAtTimes(Vec<(SimTime, NodeId)>),
}

impl FailurePlan {
    /// Convenience constructor for the paper's model with a single
    /// immune source.
    pub fn paper_model(q: f64, source: NodeId) -> Self {
        assert!(
            q > 0.0 && q <= 1.0,
            "nonfailed ratio must be in (0, 1], got {q}"
        );
        FailurePlan::CrashAtStart {
            nonfailed_ratio: q,
            immune: vec![source],
        }
    }
}

/// Link-level fault state consulted on every transmission, *before* the
/// network's own i.i.d. loss draw: adversarially blocked links drop the
/// message outright; otherwise an optional per-sender Gilbert-Elliott
/// chain decides (bursty loss replaces i.i.d. loss, so the two are never
/// configured together).
pub struct LinkFaults {
    blocked: Option<BlockedLinks>,
    ge: Option<(GilbertElliott, Vec<GeChain>)>,
}

impl LinkFaults {
    /// Builds the per-run link-fault state for `n` senders. GE chains
    /// start from the stationary distribution using `rng` (one draw per
    /// sender — deterministic given the stream).
    pub fn new(
        n: usize,
        blocked: Option<BlockedLinks>,
        ge: Option<GilbertElliott>,
        rng: &mut Xoshiro256StarStar,
    ) -> Self {
        let ge = ge.map(|channel| {
            let chains = (0..n).map(|_| GeChain::start(&channel, rng)).collect();
            (channel, chains)
        });
        LinkFaults { blocked, ge }
    }

    /// True when neither family is active (callers can skip installing).
    pub fn is_empty(&self) -> bool {
        self.blocked.is_none() && self.ge.is_none()
    }

    /// One transmission over `from → to`: returns `true` when the link
    /// fault drops it. Advances `from`'s chain — blocked links
    /// short-circuit *before* the GE draw so the adversary does not
    /// perturb the channel state stream.
    pub fn on_transmit(&mut self, from: NodeId, to: NodeId, rng: &mut Xoshiro256StarStar) -> bool {
        if let Some(blocked) = &self.blocked {
            if blocked.blocks(from, to) {
                return true;
            }
        }
        match &mut self.ge {
            Some((channel, chains)) => chains[from as usize].transmit(channel, rng),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_constructor() {
        let plan = FailurePlan::paper_model(0.8, 3);
        match plan {
            FailurePlan::CrashAtStart {
                nonfailed_ratio,
                immune,
            } => {
                assert_eq!(nonfailed_ratio, 0.8);
                assert_eq!(immune, vec![3]);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    #[should_panic(expected = "nonfailed ratio")]
    fn rejects_zero_q() {
        FailurePlan::paper_model(0.0, 0);
    }

    #[test]
    fn blocked_links_drop_without_touching_the_chain() {
        use gossip_faults::{AdversarySpec, AdversaryStrategy, BurstySpec};
        let blocked = BlockedLinks::build(
            4,
            0,
            &AdversarySpec {
                f: 3,
                strategy: AdversaryStrategy::WorstCase,
            },
            0,
        );
        let channel = GilbertElliott::new(&BurstySpec {
            p_gb: 0.5,
            p_bg: 0.5,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
        let mut rng = Xoshiro256StarStar::new(1);
        let mut with_blocked = LinkFaults::new(4, Some(blocked.clone()), Some(channel), &mut rng);
        let mut rng2 = Xoshiro256StarStar::new(1);
        let mut without = LinkFaults::new(4, None, Some(channel), &mut rng2);
        // Source uplinks are all cut; the drop happens before any GE
        // draw, so both instances keep identical chain streams on the
        // unblocked sender 1.
        assert!(with_blocked.on_transmit(0, 1, &mut rng));
        assert!(with_blocked.on_transmit(0, 3, &mut rng));
        for _ in 0..32 {
            let a = with_blocked.on_transmit(1, 2, &mut rng);
            let b = without.on_transmit(1, 2, &mut rng2);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_link_faults_pass_everything() {
        let mut rng = Xoshiro256StarStar::new(2);
        let mut faults = LinkFaults::new(8, None, None, &mut rng);
        assert!(faults.is_empty());
        for from in 0..8u32 {
            for to in 0..8u32 {
                assert!(!faults.on_transmit(from, to, &mut rng));
            }
        }
    }
}
