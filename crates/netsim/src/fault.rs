//! Fail-stop failure injection.
//!
//! The paper's failure model (§3, §4.1): members fail only by crashing;
//! a failed member never gossips; crashes "before receiving the message
//! or after receiving it but not yet forwarding it" are treated the same;
//! the source never fails. [`FailurePlan::CrashAtStart`] realizes exactly
//! that — an i.i.d. crash pattern with nonfailed probability `q` and an
//! immune set. [`FailurePlan::CrashAtTimes`] additionally supports
//! mid-run crashes for experiments beyond the paper's model.

use serde::{Deserialize, Serialize};

use crate::event::NodeId;
use crate::time::SimTime;

/// When and which nodes crash.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FailurePlan {
    /// Nobody crashes.
    None,
    /// Each node independently survives with probability `q` (crashes
    /// with `1 − q`) before the run starts; `immune` nodes (the source)
    /// never crash. The paper's model.
    CrashAtStart {
        /// Nonfailed member ratio `q ∈ (0, 1]`.
        nonfailed_ratio: f64,
        /// Nodes that never crash (the paper's source member).
        immune: Vec<NodeId>,
    },
    /// Explicit crash schedule: node `id` crashes at the given time.
    CrashAtTimes(Vec<(SimTime, NodeId)>),
}

impl FailurePlan {
    /// Convenience constructor for the paper's model with a single
    /// immune source.
    pub fn paper_model(q: f64, source: NodeId) -> Self {
        assert!(
            q > 0.0 && q <= 1.0,
            "nonfailed ratio must be in (0, 1], got {q}"
        );
        FailurePlan::CrashAtStart {
            nonfailed_ratio: q,
            immune: vec![source],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_constructor() {
        let plan = FailurePlan::paper_model(0.8, 3);
        match plan {
            FailurePlan::CrashAtStart {
                nonfailed_ratio,
                immune,
            } => {
                assert_eq!(nonfailed_ratio, 0.8);
                assert_eq!(immune, vec![3]);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    #[should_panic(expected = "nonfailed ratio")]
    fn rejects_zero_q() {
        FailurePlan::paper_model(0.0, 0);
    }
}
