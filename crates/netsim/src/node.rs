//! The protocol-facing API: node behaviours and their execution context.

use gossip_stats::rng::Xoshiro256StarStar;

use crate::event::NodeId;
use crate::membership::Membership;
use crate::time::{SimDuration, SimTime};

/// A protocol running on one node.
///
/// Behaviours are invoked only on live (non-crashed) nodes; all side
/// effects go through the [`NodeCtx`], which the simulator turns into
/// events. Behaviours must not keep state outside `self` — the simulator
/// owns time and randomness.
pub trait NodeBehavior<M> {
    /// Called once when the simulation starts (before any message).
    fn on_start(&mut self, ctx: &mut NodeCtx<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message arrives.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, M>, from: NodeId, msg: M);

    /// Called when a timer this node set fires.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, M>, id: u64) {
        let _ = (ctx, id);
    }
}

/// Execution context handed to a behaviour for the duration of one
/// callback. Sends and timers are buffered and materialized as events by
/// the simulator after the callback returns.
pub struct NodeCtx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut Xoshiro256StarStar,
    pub(crate) membership: &'a dyn Membership,
    pub(crate) outbox: &'a mut Vec<(NodeId, M)>,
    pub(crate) timers: &'a mut Vec<(SimDuration, u64)>,
}

impl<'a, M> NodeCtx<'a, M> {
    /// This node's identifier.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total group size `n`.
    #[inline]
    pub fn group_size(&self) -> usize {
        self.membership.group_size()
    }

    /// The simulation's random source (deterministic per run seed).
    #[inline]
    pub fn rng(&mut self) -> &mut Xoshiro256StarStar {
        self.rng
    }

    /// Sends `msg` to `to` (buffered; subject to network latency/loss).
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Sets a timer that fires on this node after `delay` with the given
    /// caller-chosen id.
    #[inline]
    pub fn set_timer(&mut self, delay: SimDuration, id: u64) {
        self.timers.push((delay, id));
    }

    /// Samples up to `k` distinct gossip targets from this node's
    /// membership view (never including the node itself), appending them
    /// to `out`. Returns how many were appended.
    pub fn sample_targets(&mut self, k: usize, out: &mut Vec<NodeId>) -> usize {
        let before = out.len();
        self.membership.sample_targets(self.node, k, self.rng, out);
        out.len() - before
    }

    /// Size of this node's membership view.
    pub fn view_size(&self) -> usize {
        self.membership.view_size(self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::FullView;

    #[test]
    fn context_buffers_sends_and_timers() {
        let mut rng = Xoshiro256StarStar::new(1);
        let membership = FullView::new(10);
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        let mut ctx: NodeCtx<'_, u32> = NodeCtx {
            node: 3,
            now: SimTime::from_nanos(42),
            rng: &mut rng,
            membership: &membership,
            outbox: &mut outbox,
            timers: &mut timers,
        };
        assert_eq!(ctx.id(), 3);
        assert_eq!(ctx.now().as_nanos(), 42);
        assert_eq!(ctx.group_size(), 10);
        assert_eq!(ctx.view_size(), 9);
        ctx.send(5, 100);
        ctx.send(6, 200);
        ctx.set_timer(SimDuration::from_millis(1), 7);
        let mut targets = Vec::new();
        let got = ctx.sample_targets(4, &mut targets);
        assert_eq!(got, 4);
        assert!(!targets.contains(&3), "must not target self");
        assert_eq!(outbox.len(), 2);
        assert_eq!(timers.len(), 1);
    }
}
