//! Simulation events.

use crate::time::SimTime;

/// Node identifier (index into the simulator's node table).
pub type NodeId = u32;

/// What an event does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind<M> {
    /// Deliver a message from `from` to the event's target.
    Deliver {
        /// Sender of the message.
        from: NodeId,
        /// The payload.
        msg: M,
    },
    /// Fire a timer the target set for itself.
    Timer {
        /// Caller-chosen timer identifier.
        id: u64,
    },
    /// Crash the target node (fail-stop: it stops processing events).
    Crash,
    /// Activate a dormant target node (membership churn: the node joins
    /// the group, enters the membership view, and runs `on_start`).
    Join,
}

/// A scheduled event. Ordering is `(time, seq)` — `seq` is a global
/// insertion counter, so simultaneous events fire in the order they were
/// scheduled, deterministically.
#[derive(Clone, Debug)]
pub struct Event<M> {
    /// When the event fires.
    pub time: SimTime,
    /// Global insertion sequence number (tie-break).
    pub seq: u64,
    /// Which node the event targets.
    pub target: NodeId,
    /// The action.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_ns: u64, seq: u64) -> Event<()> {
        Event {
            time: SimTime::from_nanos(time_ns),
            seq,
            target: 0,
            kind: EventKind::Timer { id: 0 },
        }
    }

    #[test]
    fn ordering_by_time_then_seq() {
        assert!(ev(1, 5) < ev(2, 0));
        assert!(ev(2, 0) < ev(2, 1));
        assert_eq!(ev(3, 7), ev(3, 7));
    }

    #[test]
    fn kind_carries_payload() {
        let e = Event {
            time: SimTime::ZERO,
            seq: 0,
            target: 3,
            kind: EventKind::Deliver {
                from: 1,
                msg: 42u32,
            },
        };
        match e.kind {
            EventKind::Deliver { from, msg } => {
                assert_eq!(from, 1);
                assert_eq!(msg, 42);
            }
            _ => panic!("wrong kind"),
        }
    }
}
