//! The simulator core: event loop, dispatch, crash handling.

use gossip_stats::rng::Xoshiro256StarStar;

use crate::event::{EventKind, NodeId};
use crate::fault::{FailurePlan, LinkFaults};
use crate::membership::Membership;
use crate::metrics::SimMetrics;
use crate::network::NetworkConfig;
use crate::node::{NodeBehavior, NodeCtx};
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceKind, Tracer};

/// A deterministic discrete-event simulation of `n` nodes running
/// behaviour `B` and exchanging messages `M`.
pub struct Simulator<M, B> {
    behaviors: Vec<B>,
    crashed: Vec<bool>,
    queue: EventQueue<M>,
    network: NetworkConfig,
    membership: Box<dyn Membership>,
    rng: Xoshiro256StarStar,
    now: SimTime,
    metrics: SimMetrics,
    tracer: Option<Tracer>,
    link_faults: Option<LinkFaults>,
    // Workhorse buffers reused across dispatches (no steady-state alloc).
    outbox: Vec<(NodeId, M)>,
    timerbox: Vec<(SimDuration, u64)>,
}

impl<M, B: NodeBehavior<M>> Simulator<M, B> {
    /// Creates a simulator over the given per-node behaviours.
    ///
    /// `membership.group_size()` must equal `behaviors.len()`.
    pub fn new(
        behaviors: Vec<B>,
        network: NetworkConfig,
        membership: Box<dyn Membership>,
        seed: u64,
    ) -> Self {
        let n = behaviors.len();
        assert!(n >= 1, "simulator needs at least one node");
        assert_eq!(
            membership.group_size(),
            n,
            "membership group size must match node count"
        );
        Self {
            behaviors,
            crashed: vec![false; n],
            queue: EventQueue::with_capacity(n),
            network,
            membership,
            rng: Xoshiro256StarStar::new(seed),
            now: SimTime::ZERO,
            metrics: SimMetrics::default(),
            tracer: None,
            link_faults: None,
            outbox: Vec::new(),
            timerbox: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.behaviors.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run counters so far.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Immutable access to a node's behaviour (for extracting protocol
    /// state after a run).
    pub fn node(&self, id: NodeId) -> &B {
        &self.behaviors[id as usize]
    }

    /// Iterates over `(id, behaviour, crashed)` for every node.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &B, bool)> {
        self.behaviors
            .iter()
            .enumerate()
            .map(|(i, b)| (i as NodeId, b, self.crashed[i]))
    }

    /// Whether `id` has crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.crashed[id as usize]
    }

    /// Number of non-crashed nodes.
    pub fn live_count(&self) -> usize {
        self.crashed.iter().filter(|&&c| !c).count()
    }

    /// Enables tracing with the given record capacity.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::new(capacity));
    }

    /// The trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Applies a failure plan. `CrashAtStart` marks nodes crashed
    /// immediately (using this simulator's RNG — deterministic);
    /// `CrashAtTimes` schedules crash events.
    pub fn apply_failure_plan(&mut self, plan: &FailurePlan) {
        match plan {
            FailurePlan::None => {}
            FailurePlan::CrashAtStart {
                nonfailed_ratio,
                immune,
            } => {
                assert!(
                    *nonfailed_ratio > 0.0 && *nonfailed_ratio <= 1.0,
                    "nonfailed ratio must be in (0, 1]"
                );
                for v in 0..self.behaviors.len() {
                    if !self.rng.next_bool(*nonfailed_ratio) {
                        self.crashed[v] = true;
                    }
                }
                for &v in immune {
                    self.crashed[v as usize] = false;
                }
                self.metrics.crashes = self.crashed.iter().filter(|&&c| c).count() as u64;
            }
            FailurePlan::CrashAtTimes(schedule) => {
                for &(time, node) in schedule {
                    self.queue.schedule(time, node, EventKind::Crash);
                }
            }
        }
    }

    /// Installs link-level fault state (adversarial blocking and/or
    /// bursty loss) consulted before the network's own loss draw.
    pub fn set_link_faults(&mut self, faults: LinkFaults) {
        self.link_faults = (!faults.is_empty()).then_some(faults);
    }

    /// Marks a node dormant before the run starts: it is skipped by
    /// [`Simulator::start_all`] and absorbs deliveries, exactly like a
    /// crashed node, until a scheduled [`EventKind::Join`] resurrects
    /// it. Used for churn joiners (no crash is counted).
    pub fn make_dormant(&mut self, node: NodeId) {
        self.crashed[node as usize] = true;
    }

    /// Schedules `node` to join (activate) at `time`.
    pub fn schedule_join(&mut self, time: SimTime, node: NodeId) {
        self.queue.schedule(time, node, EventKind::Join);
    }

    /// Schedules `node` to crash at `time`.
    pub fn schedule_crash(&mut self, time: SimTime, node: NodeId) {
        self.queue.schedule(time, node, EventKind::Crash);
    }

    /// Invokes `on_start` on every live node (in id order, at time 0).
    pub fn start_all(&mut self) {
        for v in 0..self.behaviors.len() as NodeId {
            if !self.crashed[v as usize] {
                self.dispatch_start(v);
            }
        }
    }

    /// Injects a message for `to`, attributed to `from`, delivered at the
    /// current simulation time (bypasses the network — used to seed the
    /// initial multicast at the source).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.queue
            .schedule(self.now, to, EventKind::Deliver { from, msg });
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "time must be monotone");
        self.now = event.time;
        self.metrics.events_processed += 1;
        self.metrics.last_event_time = self.now;
        let target = event.target;
        match event.kind {
            EventKind::Crash => {
                if !self.crashed[target as usize] {
                    self.crashed[target as usize] = true;
                    self.metrics.crashes += 1;
                    if let Some(t) = &mut self.tracer {
                        t.record(self.now, target, TraceKind::Crashed);
                    }
                }
            }
            EventKind::Deliver { from, msg } => {
                if self.crashed[target as usize] {
                    self.metrics.deliveries_to_crashed += 1;
                } else {
                    self.metrics.messages_delivered += 1;
                    if let Some(t) = &mut self.tracer {
                        t.record(self.now, target, TraceKind::Delivered { from });
                    }
                    self.dispatch_message(target, from, msg);
                }
            }
            EventKind::Timer { id } => {
                if !self.crashed[target as usize] {
                    self.metrics.timers_fired += 1;
                    if let Some(t) = &mut self.tracer {
                        t.record(self.now, target, TraceKind::TimerFired { id });
                    }
                    self.dispatch_timer(target, id);
                }
            }
            EventKind::Join => {
                // Dormant (or pre-crashed) nodes come up; joining an
                // already-live node is a no-op. A crash scheduled after
                // the join still wins — it simply fires later.
                if self.crashed[target as usize] {
                    self.crashed[target as usize] = false;
                    self.membership.activate(target);
                    if let Some(t) = &mut self.tracer {
                        t.record(self.now, target, TraceKind::Joined);
                    }
                    self.dispatch_start(target);
                }
            }
        }
        true
    }

    /// Runs until no events remain. Returns the metrics.
    pub fn run_to_quiescence(&mut self) -> &SimMetrics {
        while self.step() {}
        &self.metrics
    }

    /// Runs until no events remain or `max_events` have been processed;
    /// returns `true` if the simulation quiesced.
    pub fn run_bounded(&mut self, max_events: u64) -> bool {
        let mut processed = 0u64;
        while processed < max_events {
            if !self.step() {
                return true;
            }
            processed += 1;
        }
        self.queue.is_empty()
    }

    /// Runs until simulated time exceeds `deadline` or the queue empties.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
    }

    // --- dispatch plumbing -------------------------------------------

    fn dispatch_message(&mut self, target: NodeId, from: NodeId, msg: M) {
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut timerbox = std::mem::take(&mut self.timerbox);
        {
            let mut ctx = NodeCtx {
                node: target,
                now: self.now,
                rng: &mut self.rng,
                membership: &*self.membership,
                outbox: &mut outbox,
                timers: &mut timerbox,
            };
            self.behaviors[target as usize].on_message(&mut ctx, from, msg);
        }
        self.flush(target, &mut outbox, &mut timerbox);
        self.outbox = outbox;
        self.timerbox = timerbox;
    }

    fn dispatch_timer(&mut self, target: NodeId, id: u64) {
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut timerbox = std::mem::take(&mut self.timerbox);
        {
            let mut ctx = NodeCtx {
                node: target,
                now: self.now,
                rng: &mut self.rng,
                membership: &*self.membership,
                outbox: &mut outbox,
                timers: &mut timerbox,
            };
            self.behaviors[target as usize].on_timer(&mut ctx, id);
        }
        self.flush(target, &mut outbox, &mut timerbox);
        self.outbox = outbox;
        self.timerbox = timerbox;
    }

    fn dispatch_start(&mut self, target: NodeId) {
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut timerbox = std::mem::take(&mut self.timerbox);
        {
            let mut ctx = NodeCtx {
                node: target,
                now: self.now,
                rng: &mut self.rng,
                membership: &*self.membership,
                outbox: &mut outbox,
                timers: &mut timerbox,
            };
            self.behaviors[target as usize].on_start(&mut ctx);
        }
        self.flush(target, &mut outbox, &mut timerbox);
        self.outbox = outbox;
        self.timerbox = timerbox;
    }

    /// Turns buffered sends/timers into scheduled events.
    fn flush(
        &mut self,
        sender: NodeId,
        outbox: &mut Vec<(NodeId, M)>,
        timers: &mut Vec<(SimDuration, u64)>,
    ) {
        for (to, msg) in outbox.drain(..) {
            self.metrics.messages_sent += 1;
            // Link faults (blocked links, bursty loss) drop before the
            // network's own i.i.d. loss draw gets a say.
            let fault_lost = match &mut self.link_faults {
                Some(faults) => faults.on_transmit(sender, to, &mut self.rng),
                None => false,
            };
            if fault_lost {
                self.metrics.messages_lost += 1;
                if let Some(t) = &mut self.tracer {
                    t.record(self.now, sender, TraceKind::Lost { to });
                }
                continue;
            }
            match self.network.transmit(&mut self.rng) {
                Some(latency) => {
                    if let Some(t) = &mut self.tracer {
                        t.record(self.now, sender, TraceKind::Sent { to });
                    }
                    self.queue.schedule(
                        self.now + latency,
                        to,
                        EventKind::Deliver { from: sender, msg },
                    );
                }
                None => {
                    self.metrics.messages_lost += 1;
                    if let Some(t) = &mut self.tracer {
                        t.record(self.now, sender, TraceKind::Lost { to });
                    }
                }
            }
        }
        for (delay, id) in timers.drain(..) {
            self.metrics.timers_set += 1;
            self.queue
                .schedule(self.now + delay, sender, EventKind::Timer { id });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::FullView;
    use crate::network::LatencyModel;

    /// Relays each first-seen value to one random target; counts receipts.
    struct Relay {
        seen: bool,
        receipts: u32,
    }

    impl NodeBehavior<u64> for Relay {
        fn on_message(&mut self, ctx: &mut NodeCtx<'_, u64>, _from: NodeId, msg: u64) {
            self.receipts += 1;
            if !self.seen {
                self.seen = true;
                let mut targets = Vec::new();
                ctx.sample_targets(1, &mut targets);
                for t in targets {
                    ctx.send(t, msg);
                }
            }
        }
    }

    fn relay_sim(n: usize, seed: u64) -> Simulator<u64, Relay> {
        Simulator::new(
            (0..n)
                .map(|_| Relay {
                    seen: false,
                    receipts: 0,
                })
                .collect(),
            NetworkConfig::new(LatencyModel::constant_millis(1)),
            Box::new(FullView::new(n)),
            seed,
        )
    }

    #[test]
    fn single_relay_chain_terminates() {
        let mut sim = relay_sim(10, 1);
        sim.inject(0, 0, 99);
        sim.run_to_quiescence();
        // Every delivered message either spawned one send (first sight)
        // or stopped; chain length ≤ can't exceed events bound.
        assert!(sim.metrics().messages_delivered >= 1);
        assert!(sim.metrics().events_processed >= 1);
        // Time advanced by 1ms per hop.
        assert_eq!(
            sim.metrics().last_event_time.as_nanos() % 1_000_000,
            0,
            "constant latency keeps times on the grid"
        );
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let mut sim = relay_sim(50, seed);
            sim.inject(0, 0, 7);
            sim.run_to_quiescence();
            (
                sim.metrics().messages_sent,
                sim.metrics().messages_delivered,
                sim.metrics().last_event_time,
            )
        };
        assert_eq!(run(42), run(42));
        // Different seeds should (almost surely) differ in trajectory.
        // Not asserted — could coincide for tiny runs.
    }

    #[test]
    fn crash_at_start_blocks_processing() {
        let mut sim = relay_sim(100, 3);
        sim.apply_failure_plan(&FailurePlan::paper_model(0.5, 0));
        assert!(!sim.is_crashed(0), "source immune");
        let crashed_before = sim.metrics().crashes;
        assert!(crashed_before > 20, "should crash roughly half");
        sim.inject(0, 0, 1);
        sim.run_to_quiescence();
        // Any delivery to a crashed node is absorbed.
        let m = sim.metrics();
        assert_eq!(
            m.messages_delivered + m.deliveries_to_crashed + m.messages_lost,
            m.messages_sent + 1, // +1 for the injection
        );
    }

    #[test]
    fn crash_schedule_fires() {
        let mut sim = relay_sim(5, 4);
        sim.apply_failure_plan(&FailurePlan::CrashAtTimes(vec![(
            SimTime::from_nanos(10),
            2,
        )]));
        sim.run_to_quiescence();
        assert!(sim.is_crashed(2));
        assert_eq!(sim.metrics().crashes, 1);
        assert_eq!(sim.live_count(), 4);
    }

    #[test]
    fn run_bounded_stops_early() {
        // Two nodes ping-pong forever: 0 and 1 always relay (never set
        // `seen` — use a custom behaviour).
        struct PingPong;
        impl NodeBehavior<u8> for PingPong {
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, u8>, from: NodeId, msg: u8) {
                ctx.send(from, msg);
            }
        }
        let mut sim = Simulator::new(
            vec![PingPong, PingPong],
            NetworkConfig::new(LatencyModel::constant_millis(1)),
            Box::new(FullView::new(2)),
            9,
        );
        sim.inject(1, 0, 1);
        let quiesced = sim.run_bounded(100);
        assert!(!quiesced, "ping-pong must still be running");
        assert_eq!(sim.metrics().events_processed, 100);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = relay_sim(20, 5);
        sim.inject(0, 0, 1);
        sim.run_until(SimTime::from_nanos(500_000)); // 0.5 ms < first hop
        assert!(sim.metrics().last_event_time <= SimTime::from_nanos(500_000));
    }

    #[test]
    fn tracing_records_deliveries() {
        let mut sim = relay_sim(10, 6);
        sim.enable_tracing(1000);
        sim.inject(0, 0, 5);
        sim.run_to_quiescence();
        let trace = sim.trace().unwrap();
        assert!(trace
            .records()
            .iter()
            .any(|r| matches!(r.kind, TraceKind::Delivered { .. })));
    }

    #[test]
    fn lossy_network_counts_losses() {
        let mut sim = Simulator::new(
            (0..2)
                .map(|_| Relay {
                    seen: false,
                    receipts: 0,
                })
                .collect::<Vec<_>>(),
            NetworkConfig::new(LatencyModel::constant_millis(1)).with_loss(0.999),
            Box::new(FullView::new(2)),
            7,
        );
        sim.inject(0, 0, 1);
        sim.run_to_quiescence();
        let m = sim.metrics();
        assert_eq!(
            m.messages_sent,
            m.messages_lost + (m.messages_delivered - 1)
        );
    }

    #[test]
    fn dormant_nodes_join_and_process() {
        use crate::membership::DynamicView;
        // 4 initial members + 1 joiner (id 4) arriving at 5 ms.
        let mut sim = Simulator::new(
            (0..5)
                .map(|_| Relay {
                    seen: false,
                    receipts: 0,
                })
                .collect::<Vec<_>>(),
            NetworkConfig::new(LatencyModel::constant_millis(1)),
            Box::new(DynamicView::new(5, 4)),
            11,
        );
        sim.make_dormant(4);
        sim.schedule_join(SimTime::from_nanos(5_000_000), 4);
        assert_eq!(sim.live_count(), 4);
        sim.inject(4, 4, 9); // delivery to a dormant node is absorbed
        sim.run_to_quiescence();
        assert!(!sim.is_crashed(4), "joiner must be live after its join");
        assert_eq!(sim.live_count(), 5);
        assert_eq!(sim.metrics().deliveries_to_crashed, 1);
        assert_eq!(sim.metrics().crashes, 0, "joining is not a crash");
    }

    #[test]
    fn link_faults_block_the_source_fan() {
        use gossip_faults::{AdversarySpec, AdversaryStrategy, BlockedLinks};
        let mut sim = relay_sim(10, 13);
        let blocked = BlockedLinks::build(
            10,
            0,
            &AdversarySpec {
                f: 9,
                strategy: AdversaryStrategy::WorstCase,
            },
            0,
        );
        let mut rng = Xoshiro256StarStar::new(99);
        sim.set_link_faults(LinkFaults::new(10, Some(blocked), None, &mut rng));
        sim.inject(0, 0, 1);
        sim.run_to_quiescence();
        let m = sim.metrics();
        // The source's single relay (and any chain it would start) dies
        // on its blocked uplink: nobody but the source ever delivers.
        assert_eq!(m.messages_delivered, 1, "only the injection lands");
        assert_eq!(m.messages_lost, m.messages_sent);
    }

    #[test]
    #[should_panic(expected = "membership group size")]
    fn rejects_mismatched_membership() {
        let _: Simulator<u64, Relay> = Simulator::new(
            vec![Relay {
                seen: false,
                receipts: 0,
            }],
            NetworkConfig::default(),
            Box::new(FullView::new(5)),
            1,
        );
    }
}
