//! Optional event tracing for debugging and test assertions.

use crate::event::NodeId;
use crate::time::SimTime;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A message from `from` was delivered to the node.
    Delivered {
        /// Sender.
        from: NodeId,
    },
    /// The node sent a message to `to`.
    Sent {
        /// Receiver.
        to: NodeId,
    },
    /// A message to `to` was lost in the network.
    Lost {
        /// Intended receiver.
        to: NodeId,
    },
    /// A timer fired on the node.
    TimerFired {
        /// Caller-chosen timer id.
        id: u64,
    },
    /// The node crashed.
    Crashed,
    /// The node joined the group (membership churn).
    Joined,
}

/// One trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// The node it happened at.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// A bounded in-memory trace recorder.
///
/// Disabled by default in the simulator; tests and the example binaries
/// enable it. The capacity bound protects long experiment runs from
/// unbounded growth — recording silently stops at the cap.
#[derive(Clone, Debug)]
pub struct Tracer {
    records: Vec<TraceEvent>,
    capacity: usize,
}

impl Tracer {
    /// Creates a tracer storing at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            records: Vec::new(),
            capacity,
        }
    }

    /// Records one event (dropped when at capacity).
    pub fn record(&mut self, time: SimTime, node: NodeId, kind: TraceKind) {
        if self.records.len() < self.capacity {
            self.records.push(TraceEvent { time, node, kind });
        }
    }

    /// All records so far, in simulation order.
    pub fn records(&self) -> &[TraceEvent] {
        &self.records
    }

    /// Records whose node matches `node`.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.records.iter().filter(move |r| r.node == node)
    }

    /// Whether the tracer hit its capacity (records were dropped).
    pub fn truncated(&self) -> bool {
        self.records.len() >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_filters() {
        let mut t = Tracer::new(10);
        t.record(SimTime::from_nanos(1), 0, TraceKind::Sent { to: 1 });
        t.record(SimTime::from_nanos(2), 1, TraceKind::Delivered { from: 0 });
        t.record(SimTime::from_nanos(3), 0, TraceKind::Crashed);
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.for_node(0).count(), 2);
        assert_eq!(t.for_node(1).count(), 1);
        assert!(!t.truncated());
    }

    #[test]
    fn capacity_bound() {
        let mut t = Tracer::new(2);
        for i in 0..5 {
            t.record(SimTime::from_nanos(i), 0, TraceKind::Crashed);
        }
        assert_eq!(t.records().len(), 2);
        assert!(t.truncated());
    }
}
