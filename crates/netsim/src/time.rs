//! Simulated time.
//!
//! Integer nanoseconds in a `u64`: exact arithmetic (no float drift in
//! event ordering), ~584 years of range, and `Ord` for free.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant of simulated time (nanoseconds since simulation start).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is later than self"),
        )
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales the span by a float factor (used by latency models);
    /// saturates at the representable maximum and clamps negatives to 0.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        let scaled = (self.0 as f64 * factor).max(0.0);
        if scaled >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(scaled as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        let t2 = t + SimDuration::from_millis(3);
        assert_eq!((t2 - t).as_nanos(), 3_000_000);
        let mut t3 = t;
        t3 += SimDuration::from_nanos(1);
        assert_eq!(t3.as_nanos(), 5_000_001);
    }

    #[test]
    fn ordering() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert!(a < b);
        assert_eq!(b.since(a).as_nanos(), 10);
    }

    #[test]
    fn mul_f64_scaling_and_saturation() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.0).as_nanos(), 20_000_000);
        assert_eq!(d.mul_f64(0.0).as_nanos(), 0);
        assert_eq!(d.mul_f64(-1.0).as_nanos(), 0);
        assert_eq!(
            SimDuration::from_nanos(u64::MAX / 2)
                .mul_f64(1e9)
                .as_nanos(),
            u64::MAX
        );
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn since_rejects_reversed() {
        SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }
}
