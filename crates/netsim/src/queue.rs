//! The future-event list: a binary min-heap keyed on `(time, seq)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::event::{Event, EventKind, NodeId};
use crate::time::SimTime;

/// Priority queue of pending events, earliest first; FIFO among
/// simultaneous events (via the insertion sequence number), which makes
/// runs bit-reproducible.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Reverse<Event<M>>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at absolute time `time` for `target`.
    pub fn schedule(&mut self, time: SimTime, target: NodeId, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq,
            target,
            kind,
        }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events (sequence counter keeps advancing so
    /// determinism is unaffected).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 0, EventKind::Timer { id: 3 });
        q.schedule(SimTime::from_nanos(10), 0, EventKind::Timer { id: 1 });
        q.schedule(SimTime::from_nanos(20), 0, EventKind::Timer { id: 2 });
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { id } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q: EventQueue<u8> = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for id in 0..100u64 {
            q.schedule(t, 0, EventKind::Timer { id });
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { id } => id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_len_clear() {
        let mut q: EventQueue<u8> = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(7), 1, EventKind::Crash);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 0, EventKind::Timer { id: 1 });
        let first = q.pop().unwrap();
        assert_eq!(first.time, SimTime::from_nanos(10));
        // Scheduling after popping keeps the global sequence monotone.
        q.schedule(SimTime::from_nanos(10), 0, EventKind::Timer { id: 2 });
        q.schedule(SimTime::from_nanos(10), 0, EventKind::Timer { id: 3 });
        let second = q.pop().unwrap();
        let third = q.pop().unwrap();
        assert!(second.seq < third.seq);
    }
}
