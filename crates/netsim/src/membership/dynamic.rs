//! A full view over a group whose membership grows mid-run.
//!
//! Churn experiments size the simulator for the *final* population
//! `total = n + joins`, but joiners must be invisible as gossip targets
//! until their join time. [`DynamicView`] keeps an activation bitmap:
//! sampling draws uniformly from the currently active members only, and
//! [`Membership::activate`] flips a joiner in when its
//! [`EventKind::Join`](crate::EventKind::Join) event fires.
//!
//! Leavers are *not* deactivated on crash: the paper's fail-stop model
//! has members gossiping to crashed peers (the sends are wasted, the
//! deliveries absorbed), and churn keeps that semantic — a leave is a
//! crash, not a view update.

use gossip_stats::rng::Xoshiro256StarStar;

use crate::event::NodeId;
use crate::membership::Membership;

/// Full-view membership with mid-run activation (see module docs).
pub struct DynamicView {
    active: Vec<bool>,
    active_count: usize,
}

impl DynamicView {
    /// A view over `total` slots of which the first `initial` are active
    /// from the start (ids `initial..total` are dormant joiners).
    pub fn new(total: usize, initial: usize) -> Self {
        assert!(initial <= total, "initial members must fit in the group");
        let mut active = vec![false; total];
        for slot in active.iter_mut().take(initial) {
            *slot = true;
        }
        DynamicView {
            active,
            active_count: initial,
        }
    }

    /// Number of currently active members.
    pub fn active_count(&self) -> usize {
        self.active_count
    }

    /// Whether `node` is currently active.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active[node as usize]
    }
}

impl Membership for DynamicView {
    fn group_size(&self) -> usize {
        self.active.len()
    }

    fn view_size(&self, node: NodeId) -> usize {
        // A member's view is every *other* active member.
        self.active_count - usize::from(self.active[node as usize])
    }

    fn sample_targets(
        &self,
        node: NodeId,
        k: usize,
        rng: &mut Xoshiro256StarStar,
        out: &mut Vec<NodeId>,
    ) {
        let available = self.view_size(node);
        let k = k.min(available);
        let start = out.len();
        // Rejection over the id range is fine while most slots are
        // active (joiners are a small minority); fall back to an
        // explicit pool when the request is dense.
        if k * 3 >= available && available > 0 {
            let mut pool: Vec<NodeId> = (0..self.active.len() as NodeId)
                .filter(|&v| v != node && self.active[v as usize])
                .collect();
            for i in 0..k {
                let j = i + rng.next_below((pool.len() - i) as u64) as usize;
                pool.swap(i, j);
                out.push(pool[i]);
            }
            return;
        }
        while out.len() - start < k {
            let t = rng.next_below(self.active.len() as u64) as NodeId;
            if t == node || !self.active[t as usize] || out[start..].contains(&t) {
                continue;
            }
            out.push(t);
        }
    }

    fn activate(&mut self, node: NodeId) {
        if !self.active[node as usize] {
            self.active[node as usize] = true;
            self.active_count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormant_members_are_never_sampled() {
        let view = DynamicView::new(20, 10);
        let mut rng = Xoshiro256StarStar::new(1);
        let mut out = Vec::new();
        for _ in 0..200 {
            out.clear();
            view.sample_targets(0, 4, &mut rng, &mut out);
            assert_eq!(out.len(), 4);
            assert!(out.iter().all(|&t| t != 0 && t < 10), "{out:?}");
        }
    }

    #[test]
    fn activation_makes_joiners_visible() {
        let mut view = DynamicView::new(12, 10);
        assert_eq!(view.active_count(), 10);
        view.activate(10);
        view.activate(10); // idempotent
        assert_eq!(view.active_count(), 11);
        assert!(view.is_active(10));
        assert!(!view.is_active(11));
        let mut rng = Xoshiro256StarStar::new(2);
        let mut out = Vec::new();
        let mut saw_joiner = false;
        for _ in 0..500 {
            out.clear();
            view.sample_targets(0, 3, &mut rng, &mut out);
            assert!(!out.contains(&11), "dormant member sampled");
            saw_joiner |= out.contains(&10);
        }
        assert!(saw_joiner, "activated joiner never sampled in 500 draws");
    }

    #[test]
    fn dense_requests_saturate_to_active_view() {
        let mut view = DynamicView::new(8, 5);
        view.activate(6);
        let mut rng = Xoshiro256StarStar::new(3);
        let mut out = Vec::new();
        view.sample_targets(1, 100, &mut rng, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2, 3, 4, 6]);
    }

    #[test]
    fn view_size_counts_other_active_members() {
        let view = DynamicView::new(10, 7);
        assert_eq!(view.view_size(0), 6); // active member excludes itself
        assert_eq!(view.view_size(9), 7); // dormant member sees all active
        assert_eq!(view.group_size(), 10);
    }
}
