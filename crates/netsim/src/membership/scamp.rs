//! SCAMP-style partial views.
//!
//! The paper cites SCAMP (Ganesh, Kermarrec, Massoulié — its reference
//! \[12\]) as the membership service gossip would run on in a real
//! deployment. This module reimplements the core of SCAMP's
//! *subscription* algorithm to build per-node partial views whose
//! expected size is `(c + 1)·ln n` — large enough (by SCAMP's analysis)
//! for gossip over partial views to behave like gossip over uniform
//! views. The membership-ablation experiment (E10) quantifies exactly
//! that claim against this implementation.
//!
//! The construction is run offline (views frozen before the multicast
//! starts), which matches the paper's model: membership churn is out of
//! scope, only crashes during dissemination matter.

use gossip_stats::rng::Xoshiro256StarStar;

use super::{Membership, NodeId};

/// Partial views built by a SCAMP-style subscription process.
#[derive(Clone, Debug)]
pub struct ScampViews {
    views: Vec<Vec<NodeId>>,
}

impl ScampViews {
    /// Builds views for `n` members with redundancy parameter `c`
    /// (SCAMP's "c additional copies"; expected view size `(c+1)·ln n`).
    ///
    /// Deterministic in `seed`.
    pub fn build(n: usize, c: usize, seed: u64) -> Self {
        assert!(n >= 2, "SCAMP needs at least 2 members");
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut views: Vec<Vec<NodeId>> = vec![Vec::new(); n];

        // Bootstrap: a small ring among the first few members so early
        // subscriptions have somewhere to land.
        let boot = (c + 2).min(n);
        for (i, view) in views.iter_mut().enumerate().take(boot) {
            let next = ((i + 1) % boot) as NodeId;
            if next != i as NodeId {
                view.push(next);
            }
        }

        // Incremental joins, as in SCAMP: member j subscribes via a
        // contact chosen among the *already joined* members 0..j. (The
        // (c+1)·ln n view size comes precisely from this growth process —
        // the k-th join deposits |view(contact)| + c + 1 ≈ (c+1)·ln k
        // arcs.)
        for j in boot as NodeId..n as NodeId {
            let contact = rng.next_below(j as u64) as NodeId;
            // The subscriber initializes its own view with its contact.
            views[j as usize].push(contact);
            // The contact forwards the subscription to every member of
            // its view, plus c extra copies to random view members; the
            // contact itself also integrates j.
            let mut copies: Vec<NodeId> = views[contact as usize].clone();
            for _ in 0..c {
                if let Some(&extra) = pick(&views[contact as usize], &mut rng) {
                    copies.push(extra);
                }
            }
            copies.push(contact);

            for mut holder in copies {
                // Forward until kept: keep with probability 1/(1+|view|),
                // otherwise pass to a random view member. Hop cap keeps
                // termination unconditional; the forced keep at the cap
                // only adds O(1/n) distortion.
                let mut hops = 0;
                loop {
                    hops += 1;
                    let view = &mut views[holder as usize];
                    let keep_p = 1.0 / (1.0 + view.len() as f64);
                    if holder != j && !view.contains(&j) && (rng.next_bool(keep_p) || hops >= 50) {
                        view.push(j);
                        break;
                    }
                    match pick(view, &mut rng).copied() {
                        Some(next) if next != j => holder = next,
                        _ => {
                            // Dead end (empty view or only j): keep here
                            // if legal, else drop the copy.
                            if holder != j && !views[holder as usize].contains(&j) {
                                views[holder as usize].push(j);
                            }
                            break;
                        }
                    }
                }
            }
        }

        // Guarantee no isolated members: anyone with an empty view gets
        // one uniform contact (SCAMP's lease/rebalance safety net).
        for v in 0..n as NodeId {
            if views[v as usize].is_empty() {
                let target = loop {
                    let cand = rng.next_below(n as u64) as NodeId;
                    if cand != v {
                        break cand;
                    }
                };
                views[v as usize].push(target);
            }
        }

        Self { views }
    }

    /// The raw view of `node`.
    pub fn view(&self, node: NodeId) -> &[NodeId] {
        &self.views[node as usize]
    }

    /// Mean view size across members.
    pub fn mean_view_size(&self) -> f64 {
        let total: usize = self.views.iter().map(Vec::len).sum();
        total as f64 / self.views.len() as f64
    }
}

/// Uniform element of a slice, or `None` if empty.
fn pick<'a, T>(slice: &'a [T], rng: &mut Xoshiro256StarStar) -> Option<&'a T> {
    if slice.is_empty() {
        None
    } else {
        Some(&slice[rng.next_below(slice.len() as u64) as usize])
    }
}

impl Membership for ScampViews {
    fn group_size(&self) -> usize {
        self.views.len()
    }

    fn view_size(&self, node: NodeId) -> usize {
        self.views[node as usize].len()
    }

    fn sample_targets(
        &self,
        node: NodeId,
        k: usize,
        rng: &mut Xoshiro256StarStar,
        out: &mut Vec<NodeId>,
    ) {
        let view = &self.views[node as usize];
        let k = k.min(view.len());
        if k == 0 {
            return;
        }
        // Rejection over the view with duplicate suppression; views are
        // O(log n) so the scan is tiny.
        let start = out.len();
        let mut attempts = 0usize;
        while out.len() - start < k && attempts < 64 * k + 64 {
            attempts += 1;
            let t = view[rng.next_below(view.len() as u64) as usize];
            if t != node && !out[start..].contains(&t) {
                out.push(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_size_scales_like_c_plus_one_log_n() {
        for &(n, c) in &[(500usize, 2usize), (2000, 3)] {
            let views = ScampViews::build(n, c, 77);
            let mean = views.mean_view_size();
            let expected = (c as f64 + 1.0) * (n as f64).ln();
            assert!(
                mean > 0.4 * expected && mean < 2.5 * expected,
                "n={n}, c={c}: mean view {mean:.1}, SCAMP predicts ≈{expected:.1}"
            );
        }
    }

    #[test]
    fn views_contain_no_self_or_duplicates() {
        let views = ScampViews::build(300, 2, 9);
        for v in 0..300u32 {
            let view = views.view(v);
            assert!(!view.contains(&v), "self in view of {v}");
            let mut sorted = view.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), view.len(), "duplicates in view of {v}");
        }
    }

    #[test]
    fn no_empty_views() {
        let views = ScampViews::build(100, 1, 3);
        for v in 0..100u32 {
            assert!(views.view_size(v) >= 1, "member {v} isolated");
        }
    }

    #[test]
    fn sampling_respects_view() {
        let views = ScampViews::build(200, 2, 5);
        let mut rng = Xoshiro256StarStar::new(8);
        for v in [0u32, 17, 199] {
            let mut out = Vec::new();
            views.sample_targets(v, 4, &mut rng, &mut out);
            assert!(out.len() <= 4);
            for t in &out {
                assert!(views.view(v).contains(t), "{t} not in view of {v}");
            }
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), out.len());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ScampViews::build(150, 2, 42);
        let b = ScampViews::build(150, 2, 42);
        for v in 0..150u32 {
            assert_eq!(a.view(v), b.view(v));
        }
        let c = ScampViews::build(150, 2, 43);
        assert!((0..150u32).any(|v| a.view(v) != c.view(v)));
    }

    #[test]
    fn membership_trait_dispatch() {
        let views = ScampViews::build(50, 1, 2);
        let m: &dyn Membership = &views;
        assert_eq!(m.group_size(), 50);
        assert!(m.view_size(0) >= 1);
    }
}
