//! Structured-overlay membership: views are overlay neighbour lists.
//!
//! Where [`FullView`](super::FullView) gives every member the whole
//! group and SCAMP gives random partial views, [`OverlayView`] pins each
//! member's view to its neighbourhood in a generated overlay graph —
//! ring, lattice, small world, scale-free, or clustered — and picks
//! targets with the overlay's peer-selection policy instead of uniform
//! sampling.

use gossip_stats::rng::Xoshiro256StarStar;
use gossip_topology::{select_targets, PeerSelection, Topology, TopologySpec};

use super::Membership;
use crate::event::NodeId;

/// Membership views backed by a structured overlay.
pub struct OverlayView {
    topology: Topology,
    selection: PeerSelection,
}

impl OverlayView {
    /// Builds the overlay for `spec` over `n` members, deterministically
    /// in `seed`. The spec must have been validated.
    pub fn build(n: usize, spec: &TopologySpec, seed: u64) -> Self {
        OverlayView {
            topology: spec.build(n, seed),
            selection: spec.selection,
        }
    }

    /// The generated overlay adjacency.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

impl Membership for OverlayView {
    fn group_size(&self) -> usize {
        self.topology.node_count()
    }

    fn view_size(&self, node: NodeId) -> usize {
        self.topology.degree(node)
    }

    fn sample_targets(
        &self,
        node: NodeId,
        k: usize,
        rng: &mut Xoshiro256StarStar,
        out: &mut Vec<NodeId>,
    ) {
        // `select_targets` clears its output; keep this trait's append
        // contract by selecting into a scratch buffer.
        let mut picks = Vec::with_capacity(k.min(self.topology.degree(node)));
        select_targets(&self.topology, self.selection, node, k, rng, &mut picks);
        out.extend_from_slice(&picks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_topology::OverlaySpec;

    #[test]
    fn views_are_neighbour_lists() {
        let spec = TopologySpec::new(OverlaySpec::KRegular { k: 6 });
        let view = OverlayView::build(100, &spec, 7);
        assert_eq!(view.group_size(), 100);
        for node in 0..100u32 {
            assert_eq!(view.view_size(node), 6);
        }
        let mut rng = Xoshiro256StarStar::new(1);
        let mut out = Vec::new();
        view.sample_targets(13, 3, &mut rng, &mut out);
        assert_eq!(out.len(), 3);
        for &t in &out {
            assert!(view.topology().neighbors(13).contains(&t));
        }
    }

    #[test]
    fn sampling_appends_and_caps_at_degree() {
        let spec = TopologySpec::new(OverlaySpec::Ring { shortcuts: 0 });
        let view = OverlayView::build(10, &spec, 3);
        let mut rng = Xoshiro256StarStar::new(2);
        let mut out = vec![99u32];
        view.sample_targets(0, 8, &mut rng, &mut out);
        assert_eq!(out[0], 99, "existing entries preserved");
        assert_eq!(out.len() - 1, 2, "ring degree caps the sample");
    }

    #[test]
    fn same_seed_same_overlay() {
        let spec = TopologySpec::new(OverlaySpec::WattsStrogatz { k: 4, beta: 0.3 });
        let a = OverlayView::build(60, &spec, 11);
        let b = OverlayView::build(60, &spec, 11);
        for v in 0..60u32 {
            assert_eq!(a.topology().neighbors(v), b.topology().neighbors(v));
        }
    }
}
