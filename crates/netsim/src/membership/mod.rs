//! Membership services: where gossip targets come from.
//!
//! The paper assumes (§3) "a scalable membership protocol is available,
//! such as \[12\] (SCAMP), \[13\]" and draws each member's targets uniformly
//! from its *membership view*. Two providers are implemented:
//!
//! * [`FullView`] — every member knows every other member; sampling is
//!   uniform over the whole group. This matches the paper's analysis
//!   exactly and is what the §5 simulations use.
//! * [`scamp::ScampViews`] — partial views built by a SCAMP-style
//!   subscription walk, with expected view size `(c+1)·ln n`. Used by the
//!   membership-ablation experiment (E10) to show the analysis survives
//!   realistic partial views.
//! * [`overlay::OverlayView`] — views pinned to the neighbour lists of a
//!   structured overlay (`gossip-topology`), with targets picked by the
//!   overlay's peer-selection policy.

pub mod dynamic;
pub mod full;
pub mod overlay;
pub mod scamp;

pub use dynamic::DynamicView;
pub use full::FullView;
pub use overlay::OverlayView;
pub use scamp::ScampViews;

use gossip_stats::rng::Xoshiro256StarStar;

use crate::event::NodeId;

/// A source of gossip targets.
pub trait Membership: Send + Sync {
    /// Total number of members `n`.
    fn group_size(&self) -> usize;

    /// Size of `node`'s view (the number of members it can gossip to).
    fn view_size(&self, node: NodeId) -> usize;

    /// Appends up to `k` distinct members of `node`'s view (never `node`
    /// itself) to `out` — uniformly at random for the full and SCAMP
    /// views, by the configured peer-selection policy for overlay views.
    /// Appends fewer than `k` only when the view is smaller than `k` (or
    /// a deterministic policy exhausts its distinct picks).
    fn sample_targets(
        &self,
        node: NodeId,
        k: usize,
        rng: &mut Xoshiro256StarStar,
        out: &mut Vec<NodeId>,
    );

    /// Bootstraps a previously dormant member into the view (membership
    /// churn: a joiner becomes visible as a gossip target). Static views
    /// ignore this — only [`DynamicView`] tracks activation.
    fn activate(&mut self, _node: NodeId) {}
}

/// Rejection-samples `k` distinct values from `0..n` excluding `me`,
/// appending to `out`. Shared by the view implementations; efficient when
/// `k ≪ n` (the gossip regime — fanouts are O(log n)).
pub(crate) fn sample_distinct_excluding(
    n: usize,
    me: NodeId,
    k: usize,
    rng: &mut Xoshiro256StarStar,
    out: &mut Vec<NodeId>,
) {
    let available = n.saturating_sub(1);
    let k = k.min(available);
    let start = out.len();
    // For k close to n, rejection degrades; fall back to a partial
    // Fisher–Yates over the full id range.
    if k * 3 >= available && available > 0 {
        let mut pool: Vec<NodeId> = (0..n as NodeId).filter(|&v| v != me).collect();
        for i in 0..k {
            let j = i + rng.next_below((pool.len() - i) as u64) as usize;
            pool.swap(i, j);
            out.push(pool[i]);
        }
        return;
    }
    while out.len() - start < k {
        let t = rng.next_below(n as u64) as NodeId;
        if t == me || out[start..].contains(&t) {
            continue;
        }
        out.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_distinct_basic() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut out = Vec::new();
        sample_distinct_excluding(10, 4, 5, &mut rng, &mut out);
        assert_eq!(out.len(), 5);
        assert!(!out.contains(&4));
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn sample_distinct_saturates() {
        let mut rng = Xoshiro256StarStar::new(2);
        let mut out = Vec::new();
        // Ask for more than available: get everyone but me.
        sample_distinct_excluding(5, 0, 100, &mut rng, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4]);
    }

    #[test]
    fn sample_distinct_appends_after_existing() {
        let mut rng = Xoshiro256StarStar::new(3);
        let mut out = vec![7u32];
        sample_distinct_excluding(100, 0, 3, &mut rng, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], 7);
        // Only distinctness *within the appended range* is required; 7
        // may legitimately appear again.
    }

    #[test]
    fn dense_request_uses_fisher_yates_path() {
        let mut rng = Xoshiro256StarStar::new(4);
        let mut out = Vec::new();
        sample_distinct_excluding(10, 9, 8, &mut rng, &mut out);
        assert_eq!(out.len(), 8);
        assert!(!out.contains(&9));
    }
}
