//! Full-membership view: everyone knows everyone.
//!
//! Matches the paper's analytical assumption (targets uniform over the
//! whole group) and is O(1) memory — no per-node view storage at all.

use gossip_stats::rng::Xoshiro256StarStar;

use super::{sample_distinct_excluding, Membership};
use crate::event::NodeId;

/// Complete membership knowledge for a group of `n` members.
#[derive(Clone, Copy, Debug)]
pub struct FullView {
    n: usize,
}

impl FullView {
    /// Creates a full view over `n ≥ 1` members.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "group must have at least one member");
        Self { n }
    }
}

impl Membership for FullView {
    fn group_size(&self) -> usize {
        self.n
    }

    fn view_size(&self, _node: NodeId) -> usize {
        self.n - 1
    }

    fn sample_targets(
        &self,
        node: NodeId,
        k: usize,
        rng: &mut Xoshiro256StarStar,
        out: &mut Vec<NodeId>,
    ) {
        sample_distinct_excluding(self.n, node, k, rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_over_group() {
        let view = FullView::new(50);
        assert_eq!(view.group_size(), 50);
        assert_eq!(view.view_size(7), 49);
        let mut rng = Xoshiro256StarStar::new(5);
        let mut hits = [0u32; 50];
        for _ in 0..20_000 {
            let mut out = Vec::new();
            view.sample_targets(0, 3, &mut rng, &mut out);
            assert_eq!(out.len(), 3);
            for t in out {
                assert_ne!(t, 0);
                hits[t as usize] += 1;
            }
        }
        // Each of the 49 candidates should get ~20000*3/49 ≈ 1224 hits.
        for (v, &h) in hits.iter().enumerate().skip(1) {
            assert!(
                (1000..1500).contains(&h),
                "node {v} hit {h} times (expected ≈1224)"
            );
        }
    }

    #[test]
    fn tiny_group() {
        let view = FullView::new(2);
        let mut rng = Xoshiro256StarStar::new(6);
        let mut out = Vec::new();
        view.sample_targets(1, 5, &mut rng, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn singleton_group_has_empty_view() {
        let view = FullView::new(1);
        assert_eq!(view.view_size(0), 0);
        let mut rng = Xoshiro256StarStar::new(7);
        let mut out = Vec::new();
        view.sample_targets(0, 3, &mut rng, &mut out);
        assert!(out.is_empty());
    }
}
