//! Network delay and loss models.
//!
//! The paper's analysis abstracts the network away entirely (gossip
//! "executions" are untimed); the simulator keeps a network layer so the
//! same protocol code can also answer latency questions (hop/time
//! distributions) and face message loss — the knobs real gossip
//! deployments tune.

use gossip_stats::rng::Xoshiro256StarStar;

use crate::time::SimDuration;

/// Per-message latency model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Minimum latency.
        lo: SimDuration,
        /// Maximum latency.
        hi: SimDuration,
    },
    /// Exponentially distributed with the given mean (memoryless WAN
    /// approximation).
    Exponential {
        /// Mean latency.
        mean: SimDuration,
    },
}

impl LatencyModel {
    /// Constant latency in milliseconds — the common case in tests.
    pub const fn constant_millis(ms: u64) -> Self {
        LatencyModel::Constant(SimDuration::from_millis(ms))
    }

    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "uniform latency needs lo <= hi");
                let span = hi.as_nanos() - lo.as_nanos();
                if span == 0 {
                    lo
                } else {
                    SimDuration::from_nanos(lo.as_nanos() + rng.next_below(span + 1))
                }
            }
            LatencyModel::Exponential { mean } => {
                let u = rng.next_f64().max(f64::MIN_POSITIVE);
                mean.mul_f64(-u.ln())
            }
        }
    }
}

/// Network configuration: latency plus independent per-message loss.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkConfig {
    /// Latency model applied to every message.
    pub latency: LatencyModel,
    /// Probability that a message is silently dropped in transit.
    pub loss_probability: f64,
}

impl NetworkConfig {
    /// Lossless network with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        Self {
            latency,
            loss_probability: 0.0,
        }
    }

    /// Sets the loss probability. Panics outside `[0, 1)`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0, 1), got {p}"
        );
        self.loss_probability = p;
        self
    }

    /// Decides the fate of one message: `Some(latency)` to deliver,
    /// `None` if lost.
    pub fn transmit(&self, rng: &mut Xoshiro256StarStar) -> Option<SimDuration> {
        if self.loss_probability > 0.0 && rng.next_bool(self.loss_probability) {
            None
        } else {
            Some(self.latency.sample(rng))
        }
    }
}

impl Default for NetworkConfig {
    /// 1 ms constant latency, lossless.
    fn default() -> Self {
        Self::new(LatencyModel::constant_millis(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_latency() {
        let m = LatencyModel::constant_millis(5);
        let mut rng = Xoshiro256StarStar::new(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_millis(1),
            hi: SimDuration::from_millis(3),
        };
        let mut rng = Xoshiro256StarStar::new(2);
        let mut min = u64::MAX;
        let mut max = 0;
        for _ in 0..10_000 {
            let d = m.sample(&mut rng).as_nanos();
            min = min.min(d);
            max = max.max(d);
            assert!((1_000_000..=3_000_000).contains(&d));
        }
        // Should roughly cover the range.
        assert!(min < 1_100_000, "min {min}");
        assert!(max > 2_900_000, "max {max}");
    }

    #[test]
    fn exponential_latency_mean() {
        let m = LatencyModel::Exponential {
            mean: SimDuration::from_millis(10),
        };
        let mut rng = Xoshiro256StarStar::new(3);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += m.sample(&mut rng).as_secs_f64();
        }
        let mean = sum / n as f64;
        assert!((mean - 0.010).abs() < 0.0005, "mean {mean}");
    }

    #[test]
    fn loss_rate_respected() {
        let cfg = NetworkConfig::default().with_loss(0.3);
        let mut rng = Xoshiro256StarStar::new(4);
        let n = 100_000;
        let delivered = (0..n).filter(|_| cfg.transmit(&mut rng).is_some()).count();
        let rate = delivered as f64 / n as f64;
        assert!((rate - 0.7).abs() < 0.01, "delivery rate {rate}");
    }

    #[test]
    fn lossless_always_delivers() {
        let cfg = NetworkConfig::default();
        let mut rng = Xoshiro256StarStar::new(5);
        for _ in 0..1000 {
            assert!(cfg.transmit(&mut rng).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_bad_loss() {
        NetworkConfig::default().with_loss(1.0);
    }
}
