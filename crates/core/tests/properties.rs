//! Property-based tests on the analytical model's invariants.

use gossip_model::distribution::{
    BinomialFanout, EmpiricalFanout, FanoutDistribution, GeometricFanout, PoissonFanout,
    UniformFanout,
};
use gossip_model::{design, poisson_case, success, SitePercolation};
use proptest::prelude::*;

proptest! {
    /// Reliability always lies in [0, 1] and satisfies the Eq. 11 fixed
    /// point for Poisson fanouts.
    #[test]
    fn poisson_reliability_is_valid_fixed_point(
        z in 0.1f64..12.0,
        q in 0.05f64..1.0,
    ) {
        let d = PoissonFanout::new(z);
        let r = SitePercolation::new(&d, q).unwrap().reliability().unwrap();
        prop_assert!((0.0..=1.0).contains(&r));
        if z * q > 1.0 + 1e-6 {
            // Supercritical: R solves S = 1 − e^{−zqS} with S > 0.
            let rhs = 1.0 - (-z * q * r).exp();
            prop_assert!((r - rhs).abs() < 1e-7, "residual {} at z={z}, q={q}", (r - rhs).abs());
        } else if z * q < 1.0 - 1e-6 {
            prop_assert!(r < 1e-6, "subcritical must give 0, got {r}");
        }
    }

    /// Reliability is monotone non-decreasing in q.
    #[test]
    fn reliability_monotone_in_q(
        z in 1.2f64..10.0,
        q in 0.1f64..0.95,
        dq in 0.01f64..0.05,
    ) {
        let d = PoissonFanout::new(z);
        let r1 = SitePercolation::new(&d, q).unwrap().reliability().unwrap();
        let r2 = SitePercolation::new(&d, (q + dq).min(1.0)).unwrap().reliability().unwrap();
        prop_assert!(r2 >= r1 - 1e-9, "R({}) = {r2} < R({q}) = {r1}", q + dq);
    }

    /// The closed-form Lambert-W solution agrees with the generic
    /// fixed-point solver everywhere.
    #[test]
    fn closed_form_matches_generic(
        z in 0.2f64..15.0,
        q in 0.05f64..1.0,
    ) {
        let closed = poisson_case::reliability(z, q).unwrap();
        let d = PoissonFanout::new(z);
        let generic = SitePercolation::new(&d, q).unwrap().reliability().unwrap();
        prop_assert!((closed - generic).abs() < 1e-7,
            "z={z}, q={q}: closed {closed} vs generic {generic}");
    }

    /// Eq. 12 inverts Eq. 11: designing a fanout for target S then
    /// evaluating reliability at that fanout recovers S.
    #[test]
    fn eq12_roundtrip(
        s in 0.05f64..0.995,
        q in 0.1f64..1.0,
    ) {
        let z = poisson_case::mean_fanout_for(s, q).unwrap();
        let back = poisson_case::reliability(z, q).unwrap();
        prop_assert!((back - s).abs() < 1e-7, "S={s}, q={q} → z={z} → {back}");
    }

    /// Eq. 6 always meets its target with the minimal t.
    #[test]
    fn required_executions_meets_target(
        pr in 0.01f64..0.999,
        ps in 0.01f64..0.9999,
    ) {
        let t = success::required_executions(pr, ps).unwrap();
        prop_assert!(success::success_probability(pr, t) >= ps - 1e-12);
        if t > 1 {
            prop_assert!(success::success_probability(pr, t - 1) < ps + 1e-12);
        }
    }

    /// Generating-function sanity for arbitrary empirical tables:
    /// G0(1) = 1, G0 monotone on [0,1], G1(1) = 1 when mean > 0.
    #[test]
    fn empirical_generating_functions(
        weights in proptest::collection::vec(0.0f64..10.0, 2..12),
        x in 0.0f64..1.0,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.1);
        let d = EmpiricalFanout::new(&weights);
        prop_assert!((d.g0(1.0) - 1.0).abs() < 1e-9);
        prop_assert!(d.g0(x) <= 1.0 + 1e-12);
        prop_assert!(d.g0(x) >= 0.0);
        if d.mean() > 1e-9 {
            prop_assert!((d.g1(1.0) - 1.0).abs() < 1e-9);
        }
    }

    /// The critical ratio matches 1/G1'(1) across distribution families.
    #[test]
    fn critical_point_families(m in 2usize..40, p in 0.05f64..0.95) {
        let b = BinomialFanout::new(m, p);
        let perc = SitePercolation::new(&b, 1.0).unwrap();
        if let Some(qc) = perc.critical_q() {
            let expect = 1.0 / ((m - 1) as f64 * p);
            prop_assert!((qc - expect).abs() < 1e-9);
        }
    }

    /// Reliability of any supported family responds monotonically to its
    /// scale parameter (used by the design bisection).
    #[test]
    fn reliability_monotone_in_scale(mean in 1.5f64..8.0, q in 0.5f64..1.0) {
        let lo = GeometricFanout::with_mean(mean);
        let hi = GeometricFanout::with_mean(mean + 1.0);
        let r_lo = SitePercolation::new(&lo, q).unwrap().reliability().unwrap();
        let r_hi = SitePercolation::new(&hi, q).unwrap().reliability().unwrap();
        prop_assert!(r_hi >= r_lo - 1e-9);
    }

    /// design::min_nonfailed_ratio returns a q that achieves the target
    /// (when achievable).
    #[test]
    fn design_min_q_achieves(z in 2.5f64..10.0, target in 0.2f64..0.9) {
        let d = PoissonFanout::new(z);
        if let Ok(q_min) = design::min_nonfailed_ratio(&d, target) {
            let r = SitePercolation::new(&d, q_min).unwrap().reliability().unwrap();
            prop_assert!(r >= target - 1e-4, "r({q_min}) = {r} < {target}");
        }
    }

    /// Uniform fanout: percolation results are invariant to representing
    /// the same pmf as UniformFanout or EmpiricalFanout.
    #[test]
    fn representation_invariance(lo in 1usize..4, span in 0usize..5, q in 0.3f64..1.0) {
        let hi = lo + span;
        let u = UniformFanout::new(lo, hi);
        let mut w = vec![0.0; hi + 1];
        for slot in w.iter_mut().take(hi + 1).skip(lo) {
            *slot = 1.0;
        }
        let e = EmpiricalFanout::new(&w);
        let ru = SitePercolation::new(&u, q).unwrap().reliability().unwrap();
        let re = SitePercolation::new(&e, q).unwrap().reliability().unwrap();
        prop_assert!((ru - re).abs() < 1e-8, "uniform {ru} vs empirical {re}");
    }
}
