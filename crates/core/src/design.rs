//! Inverse design problems for arbitrary fanout distributions.
//!
//! The paper solves "given reliability target S and failure level q, what
//! mean fanout do I need?" in closed form for Poisson (Eq. 12). For any
//! other family the same questions are answered here by exploiting the
//! monotonicity of reliability in `q` and in the family's scale
//! parameter, using bisection over the generic percolation solver.

use crate::distribution::FanoutDistribution;
use crate::error::ModelError;
use crate::percolation::SitePercolation;
use crate::solver::bisect;

/// Tolerance for design-space bisections.
const DESIGN_TOL: f64 = 1e-10;

/// Smallest nonfailed ratio `q` at which `dist` still achieves
/// reliability `target_r`; the complement `1 − q` is the **maximum ratio
/// of failed nodes that can be tolerated** — the quantity the paper's
/// abstract promises to derive.
///
/// Errors with [`ModelError::Unachievable`] if even `q = 1` falls short.
pub fn min_nonfailed_ratio<D: FanoutDistribution + ?Sized>(
    dist: &D,
    target_r: f64,
) -> Result<f64, ModelError> {
    if !(target_r > 0.0 && target_r < 1.0) {
        return Err(ModelError::InvalidParameter {
            name: "target_r",
            value: target_r,
            requirement: "reliability target must lie in (0, 1)",
        });
    }
    let reliability_at = |q: f64| -> f64 {
        SitePercolation::new(dist, q)
            .and_then(|p| p.reliability())
            .unwrap_or(0.0)
    };
    let at_one = reliability_at(1.0);
    if at_one < target_r {
        return Err(ModelError::Unachievable {
            what: "reliability target exceeds what q = 1 delivers for this distribution",
        });
    }
    // Reliability is monotone non-decreasing in q; bracket [qc, 1].
    let lo = SitePercolation::new(dist, 1.0)?
        .critical_q()
        .unwrap_or(1.0)
        .clamp(1e-9, 1.0);
    if reliability_at(lo) >= target_r {
        return Ok(lo);
    }
    bisect(|q| reliability_at(q) - target_r, lo, 1.0, DESIGN_TOL, 200)
}

/// Maximum tolerable failure ratio `1 − q_min` (see
/// [`min_nonfailed_ratio`]).
pub fn max_tolerable_failure<D: FanoutDistribution + ?Sized>(
    dist: &D,
    target_r: f64,
) -> Result<f64, ModelError> {
    Ok(1.0 - min_nonfailed_ratio(dist, target_r)?)
}

/// Smallest scale parameter `θ ∈ [lo, hi]` such that the distribution
/// family `family(θ)` achieves reliability `target_r` at nonfailed ratio
/// `q`.
///
/// `family` maps a scale (typically the mean fanout) to a distribution;
/// reliability must be monotone non-decreasing in `θ`, which holds for
/// every family in this crate. This is the general-`P` analogue of the
/// paper's Eq. 12.
pub fn required_scale<D, F>(
    family: F,
    q: f64,
    target_r: f64,
    lo: f64,
    hi: f64,
) -> Result<f64, ModelError>
where
    D: FanoutDistribution,
    F: Fn(f64) -> D,
{
    if !(target_r > 0.0 && target_r < 1.0) {
        return Err(ModelError::InvalidParameter {
            name: "target_r",
            value: target_r,
            requirement: "reliability target must lie in (0, 1)",
        });
    }
    let reliability_at = |theta: f64| -> Result<f64, ModelError> {
        let dist = family(theta);
        SitePercolation::new(&dist, q)?.reliability()
    };
    if reliability_at(hi)? < target_r {
        return Err(ModelError::Unachievable {
            what: "reliability target not reachable within the scale bracket",
        });
    }
    if reliability_at(lo)? >= target_r {
        return Ok(lo);
    }
    bisect(
        |theta| reliability_at(theta).unwrap_or(0.0) - target_r,
        lo,
        hi,
        DESIGN_TOL,
        200,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{FixedFanout, GeometricFanout, PoissonFanout};
    use crate::poisson_case;

    #[test]
    fn min_q_matches_poisson_closed_form() {
        // Poisson Eq. 12 inverted for q: q_min = −ln(1−S)/(z·S).
        let z = 4.0;
        let target = 0.9;
        let d = PoissonFanout::new(z);
        let got = min_nonfailed_ratio(&d, target).unwrap();
        let expect = -(1.0f64 - target).ln() / (z * target);
        assert!(
            (got - expect).abs() < 1e-6,
            "got {got}, closed form {expect}"
        );
        // Consistency with the poisson_case helper.
        let eps = poisson_case::max_tolerable_failure(z, target).unwrap();
        assert!((got - (1.0 - eps)).abs() < 1e-6);
    }

    #[test]
    fn min_q_achieves_target() {
        let d = PoissonFanout::new(5.0);
        let q_min = min_nonfailed_ratio(&d, 0.95).unwrap();
        let r_at = SitePercolation::new(&d, q_min)
            .unwrap()
            .reliability()
            .unwrap();
        assert!((r_at - 0.95).abs() < 1e-6, "r(q_min) = {r_at}");
        let r_above = SitePercolation::new(&d, (q_min + 0.02).min(1.0))
            .unwrap()
            .reliability()
            .unwrap();
        assert!(r_above > 0.95);
    }

    #[test]
    fn unachievable_target_detected() {
        // Po(1.5) at q = 1 gives S ≈ 0.58; 0.9 is unreachable.
        let d = PoissonFanout::new(1.5);
        assert!(matches!(
            min_nonfailed_ratio(&d, 0.9),
            Err(ModelError::Unachievable { .. })
        ));
        // Fixed(1) never percolates at all.
        let f = FixedFanout::new(1);
        assert!(min_nonfailed_ratio(&f, 0.5).is_err());
    }

    #[test]
    fn max_tolerable_failure_complement() {
        let d = PoissonFanout::new(6.0);
        let q_min = min_nonfailed_ratio(&d, 0.9).unwrap();
        let eps = max_tolerable_failure(&d, 0.9).unwrap();
        assert!((q_min + eps - 1.0).abs() < 1e-12);
        assert!(eps > 0.0 && eps < 1.0);
    }

    #[test]
    fn required_scale_poisson_matches_eq12() {
        let q = 0.8;
        let target = 0.9;
        let z = required_scale(PoissonFanout::new, q, target, 0.1, 50.0).unwrap();
        let closed = poisson_case::mean_fanout_for(target, q).unwrap();
        assert!((z - closed).abs() < 1e-6, "bisection {z} vs Eq.12 {closed}");
    }

    #[test]
    fn required_scale_geometric_family() {
        let q = 0.9;
        let target = 0.9;
        let mean = required_scale(GeometricFanout::with_mean, q, target, 0.1, 100.0).unwrap();
        // Verify the scale actually achieves the target.
        let d = GeometricFanout::with_mean(mean);
        let r = SitePercolation::new(&d, q).unwrap().reliability().unwrap();
        assert!((r - target).abs() < 1e-6, "r = {r} at mean = {mean}");
        // Heavy tail hurts reliability at fixed mean (more mass on fanout
        // 0 strands more nodes), so geometric needs a *larger* mean than
        // Poisson for the same target.
        let z_poisson = poisson_case::mean_fanout_for(target, q).unwrap();
        assert!(
            mean > z_poisson,
            "geometric mean {mean} should exceed Poisson {z_poisson}"
        );
    }

    #[test]
    fn required_scale_out_of_bracket() {
        assert!(matches!(
            required_scale(PoissonFanout::new, 0.5, 0.999, 0.1, 2.0),
            Err(ModelError::Unachievable { .. })
        ));
    }

    #[test]
    fn invalid_targets_rejected() {
        let d = PoissonFanout::new(3.0);
        assert!(min_nonfailed_ratio(&d, 0.0).is_err());
        assert!(min_nonfailed_ratio(&d, 1.0).is_err());
        assert!(required_scale(PoissonFanout::new, 0.5, 1.5, 0.1, 10.0).is_err());
    }
}
