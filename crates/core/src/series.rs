//! Truncated power-series evaluation of probability generating functions.
//!
//! The generalized-random-graph machinery only ever needs four numbers
//! from a fanout distribution `P`: `G0(x) = Σ p_k x^k`, its first two
//! derivatives, and the tail-truncation point. Distributions with closed
//! forms (Poisson, binomial, …) override the trait methods; everything
//! else falls back to these Horner-style series evaluators, truncated
//! where the pmf tail drops below a tolerance.

/// Evaluates `Σ_{k=0}^{kmax} pmf(k) · x^k`.
///
/// Direct accumulation (not Horner) because the pmf is produced by a
/// closure, not stored as coefficients; each term reuses the running power
/// of `x`, so the cost is one multiply-add per term.
pub fn eval_g0<F: Fn(usize) -> f64>(pmf: F, x: f64, kmax: usize) -> f64 {
    let mut acc = 0.0;
    let mut xp = 1.0; // x^k
    for k in 0..=kmax {
        acc += pmf(k) * xp;
        xp *= x;
    }
    acc
}

/// Evaluates `G0'(x) = Σ k · pmf(k) · x^{k−1}`.
pub fn eval_g0_prime<F: Fn(usize) -> f64>(pmf: F, x: f64, kmax: usize) -> f64 {
    let mut acc = 0.0;
    let mut xp = 1.0; // x^{k-1}
    for k in 1..=kmax {
        acc += k as f64 * pmf(k) * xp;
        xp *= x;
    }
    acc
}

/// Evaluates `G0''(x) = Σ k(k−1) · pmf(k) · x^{k−2}`.
pub fn eval_g0_double_prime<F: Fn(usize) -> f64>(pmf: F, x: f64, kmax: usize) -> f64 {
    let mut acc = 0.0;
    let mut xp = 1.0; // x^{k-2}
    for k in 2..=kmax {
        acc += (k * (k - 1)) as f64 * pmf(k) * xp;
        xp *= x;
    }
    acc
}

/// Mean `Σ k · pmf(k)` over the truncated support (= `G0'(1)`).
pub fn mean<F: Fn(usize) -> f64>(pmf: F, kmax: usize) -> f64 {
    eval_g0_prime(pmf, 1.0, kmax)
}

/// Finds the smallest `K` with `Σ_{k=0}^{K} pmf(k) ≥ 1 − eps` by direct
/// accumulation, probing up to `hard_cap` terms.
///
/// Returns `hard_cap` if the mass never accumulates (callers treat the
/// result as a truncation point, so this fails safe — just slower).
pub fn truncation_by_mass<F: Fn(usize) -> f64>(pmf: F, eps: f64, hard_cap: usize) -> usize {
    let mut cum = 0.0;
    for k in 0..=hard_cap {
        cum += pmf(k);
        if cum >= 1.0 - eps {
            return k;
        }
    }
    hard_cap
}

#[cfg(test)]
mod tests {
    use super::*;

    /// pmf of a fair three-sided die on {0, 1, 2}.
    fn die(k: usize) -> f64 {
        if k <= 2 {
            1.0 / 3.0
        } else {
            0.0
        }
    }

    #[test]
    fn g0_at_one_is_total_mass() {
        assert!((eval_g0(die, 1.0, 10) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn g0_matches_polynomial() {
        // G0(x) = (1 + x + x²)/3 at x = 0.5 → (1 + .5 + .25)/3.
        let got = eval_g0(die, 0.5, 10);
        assert!((got - 1.75 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn derivative_matches_polynomial() {
        // G0'(x) = (1 + 2x)/3 at x = 0.5 → 2/3.
        let got = eval_g0_prime(die, 0.5, 10);
        assert!((got - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn second_derivative_matches_polynomial() {
        // G0''(x) = 2/3 everywhere.
        for &x in &[0.0, 0.3, 1.0] {
            assert!((eval_g0_double_prime(die, x, 10) - 2.0 / 3.0).abs() < 1e-15);
        }
    }

    #[test]
    fn mean_of_die() {
        assert!((mean(die, 10) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn derivatives_agree_with_finite_differences() {
        // Use a geometric-ish pmf with infinite support, truncated.
        let pmf = |k: usize| 0.4 * 0.6f64.powi(k as i32);
        let kmax = 200;
        let x = 0.7;
        let h = 1e-6;
        let num_d1 = (eval_g0(pmf, x + h, kmax) - eval_g0(pmf, x - h, kmax)) / (2.0 * h);
        assert!((eval_g0_prime(pmf, x, kmax) - num_d1).abs() < 1e-8);
        let num_d2 =
            (eval_g0_prime(pmf, x + h, kmax) - eval_g0_prime(pmf, x - h, kmax)) / (2.0 * h);
        assert!((eval_g0_double_prime(pmf, x, kmax) - num_d2).abs() < 1e-7);
    }

    #[test]
    fn truncation_by_mass_finds_tight_point() {
        let k = truncation_by_mass(die, 1e-9, 1000);
        assert_eq!(k, 2);
        // Geometric with p = 0.5: tail after K is 0.5^{K+1}.
        let geo = |k: usize| 0.5f64.powi(k as i32 + 1);
        let k = truncation_by_mass(geo, 1e-6, 1000);
        assert!((19..=21).contains(&k), "got {k}");
    }

    #[test]
    fn truncation_hard_cap_fail_safe() {
        // A "pmf" that never accumulates mass.
        let zero = |_: usize| 0.0;
        assert_eq!(truncation_by_mass(zero, 1e-9, 64), 64);
    }
}
