//! Site percolation on the generalized random graph of gossiping —
//! the analytical heart of the paper (§4).
//!
//! One execution of the gossip algorithm induces a random graph whose
//! degree distribution is the fanout distribution `P`; fail-stop crashes
//! remove ("unoccupy") each non-source node independently with probability
//! `1 − q`. Following Callaway et al. (the paper's reference \[15\]) with
//! the uniform occupation `q_k = q` of the paper's Eq. 1:
//!
//! * `F0(x) = q·G0(x)`, `F1(x) = q·G1(x)`;
//! * the self-consistency condition is `u = 1 − q + q·G1(u)` — `u` is the
//!   probability that an edge leads to a node *not* in the giant
//!   component (see DESIGN.md for the sign typo in the paper's Eq. 4);
//! * the giant component occupies a fraction `q·(1 − G0(u))` of **all**
//!   nodes ([`SitePercolation::giant_fraction`]) and a fraction
//!   `1 − G0(u)` of **nonfailed** nodes — the paper's reliability
//!   `R(q, P)` ([`SitePercolation::reliability`]);
//! * the mean size of (non-giant) components is
//!   `⟨s⟩ = q·[1 + q·G0'(1)/(1 − q·G1'(1))]` (Eq. 2), which diverges at
//!   the critical point `q_c = 1/G1'(1)` (Eq. 3).

use crate::distribution::FanoutDistribution;
use crate::error::ModelError;
use crate::solver::smallest_fixed_point;

/// Convergence tolerance for the `u` fixed point.
const U_TOL: f64 = 1e-13;
/// Iteration budget for the `u` fixed point (generous: near-critical
/// convergence is linear with rate → 1).
const U_MAX_ITER: usize = 4_000_000;

/// The percolated gossip random graph `Gossip(n, P, q)` seen through the
/// generating-function formalism. Borrow-based: analysis never needs to
/// own the distribution.
#[derive(Clone, Copy, Debug)]
pub struct SitePercolation<'a, D: FanoutDistribution + ?Sized> {
    dist: &'a D,
    q: f64,
}

impl<'a, D: FanoutDistribution + ?Sized> SitePercolation<'a, D> {
    /// Creates the percolation analysis for fanout distribution `dist`
    /// and nonfailed member ratio `q ∈ (0, 1]`.
    pub fn new(dist: &'a D, q: f64) -> Result<Self, ModelError> {
        if !(q.is_finite() && q > 0.0 && q <= 1.0) {
            return Err(ModelError::InvalidParameter {
                name: "q",
                value: q,
                requirement: "nonfailed member ratio must lie in (0, 1]",
            });
        }
        Ok(Self { dist, q })
    }

    /// The nonfailed member ratio `q`.
    #[inline]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The fanout distribution under analysis.
    #[inline]
    pub fn distribution(&self) -> &'a D {
        self.dist
    }

    /// Critical nonfailed ratio `q_c = 1 / G1'(1)` (paper Eq. 3).
    ///
    /// Returns `None` when the distribution has no excess degree at all
    /// (`G1'(1) = 0`, e.g. fixed fanout ≤ 1) — then no `q` percolates.
    /// Values above 1 mean the graph does not percolate even without
    /// failures.
    pub fn critical_q(&self) -> Option<f64> {
        let g1p = self.dist.g1_prime_at_one();
        if g1p <= 0.0 {
            None
        } else {
            Some(1.0 / g1p)
        }
    }

    /// Whether `(q, P)` lies above the percolation threshold, i.e. a giant
    /// component (nonzero reliability) exists.
    pub fn is_supercritical(&self) -> bool {
        match self.critical_q() {
            Some(qc) => self.q > qc,
            None => false,
        }
    }

    /// Solves the self-consistency condition `u = 1 − q + q·G1(u)` for the
    /// smallest root in `[0, 1]`.
    ///
    /// `u` is the probability that following a random edge leads to a node
    /// outside the giant component (either failed, with probability
    /// `1 − q`, or nonfailed but heading a finite branch, `q·G1(u)`).
    pub fn u(&self) -> Result<f64, ModelError> {
        let q = self.q;
        // Subcritical shortcut: the only root is the trivial u = 1, and
        // the iteration would crawl toward it; answer directly.
        if !self.is_supercritical() {
            return Ok(1.0);
        }
        let fp = smallest_fixed_point(
            |u| 1.0 - q + q * self.dist.g1(u),
            0.0,
            0.0,
            1.0,
            U_TOL,
            U_MAX_ITER,
        )?;
        Ok(fp.value)
    }

    /// Reliability of gossiping `R(q, P)` — the probability that a
    /// randomly chosen **nonfailed** member belongs to the giant component
    /// and hence receives the message (paper's `S` in Eq. 11 and in all of
    /// Figs. 2, 4, 5).
    pub fn reliability(&self) -> Result<f64, ModelError> {
        let u = self.u()?;
        // Clamp tiny negative values from F0 rounding.
        Ok((1.0 - self.dist.g0(u)).clamp(0.0, 1.0))
    }

    /// Fraction of **all** `n` members (failed included) inside the giant
    /// component: `F0(1) − F0(u) = q·(1 − G0(u))`, the paper's Eq. 4 read
    /// literally.
    pub fn giant_fraction(&self) -> Result<f64, ModelError> {
        Ok(self.q * self.reliability()?)
    }

    /// Mean size of the finite components, `⟨s⟩ = q·[1 + q·G0'(1)/(1 −
    /// q·G1'(1))]` (paper Eq. 2).
    ///
    /// Defined below the critical point; returns `None` at or above it,
    /// where the formula diverges (that divergence *is* the phase
    /// transition).
    pub fn mean_component_size(&self) -> Option<f64> {
        let g1p = self.dist.g1_prime_at_one();
        let denom = 1.0 - self.q * g1p;
        if denom <= 0.0 {
            return None;
        }
        Some(self.q * (1.0 + self.q * self.dist.g0_prime(1.0) / denom))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{
        EmpiricalFanout, FixedFanout, GeometricFanout, PoissonFanout, UniformFanout,
    };

    fn poisson_reliability(z: f64, q: f64) -> f64 {
        let d = PoissonFanout::new(z);
        SitePercolation::new(&d, q).unwrap().reliability().unwrap()
    }

    #[test]
    fn paper_headline_number() {
        // §5.2: {f = 4.0, q = 0.9} and {f = 6.0, q = 0.6} both give
        // reliability "0.967" (product f·q = 3.6). The exact root of
        // Eq. 11 at zq = 3.6 is 0.969506; the paper's 0.967 is a rounded
        // simulation estimate, so allow that slack here.
        let r1 = poisson_reliability(4.0, 0.9);
        let r2 = poisson_reliability(6.0, 0.6);
        assert!((r1 - 0.969_506).abs() < 1e-5, "R(4.0, 0.9) = {r1}");
        assert!(
            (r1 - 0.967).abs() < 4e-3,
            "must stay near the paper's 0.967"
        );
        assert!((r1 - r2).abs() < 1e-9, "identical f·q must match");
    }

    #[test]
    fn poisson_fixed_point_identity() {
        // R must satisfy Eq. 11: S = 1 − e^{−zqS}.
        for &(z, q) in &[(2.0, 1.0), (3.0, 0.8), (5.0, 0.5), (1.5, 0.9)] {
            let s = poisson_reliability(z, q);
            let rhs = 1.0 - (-z * q * s).exp();
            assert!(
                (s - rhs).abs() < 1e-9,
                "z={z}, q={q}: S = {s}, 1 - e^(-zqS) = {rhs}"
            );
        }
    }

    #[test]
    fn critical_point_poisson() {
        // Eq. 10: q_c = 1/z.
        let d = PoissonFanout::new(4.0);
        let p = SitePercolation::new(&d, 0.5).unwrap();
        assert!((p.critical_q().unwrap() - 0.25).abs() < 1e-12);
        // Just below critical: reliability 0. Just above: positive.
        let below = SitePercolation::new(&d, 0.24).unwrap();
        assert!(below.reliability().unwrap() < 1e-6);
        assert!(!below.is_supercritical());
        let above = SitePercolation::new(&d, 0.30).unwrap();
        assert!(above.reliability().unwrap() > 0.1);
        assert!(above.is_supercritical());
    }

    #[test]
    fn reliability_monotone_in_q_and_z() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let q = i as f64 / 10.0;
            let r = poisson_reliability(4.0, q);
            assert!(r >= prev - 1e-12, "not monotone in q at q = {q}");
            prev = r;
        }
        prev = 0.0;
        for i in 1..=20 {
            let z = i as f64 / 2.0;
            let r = poisson_reliability(z, 0.8);
            assert!(r >= prev - 1e-12, "not monotone in z at z = {z}");
            prev = r;
        }
    }

    #[test]
    fn no_failures_is_classic_giant_component() {
        // q = 1, Po(z): S = 1 − e^{−zS}; at z = 1 the transition point,
        // S = 0; at z = 2, S ≈ 0.7968.
        let r = poisson_reliability(2.0, 1.0);
        assert!((r - 0.796_812).abs() < 1e-4, "got {r}");
        let r = poisson_reliability(1.0, 1.0);
        assert!(r < 1e-4, "at the critical point S should vanish, got {r}");
    }

    #[test]
    fn fixed_fanout_degenerates() {
        // Fixed fanout 1 → perfect matching, no giant component ever.
        let d1 = FixedFanout::new(1);
        let p = SitePercolation::new(&d1, 1.0).unwrap();
        assert_eq!(p.critical_q(), None);
        assert_eq!(p.reliability().unwrap(), 0.0);
        // Fixed fanout 0 → nobody relays.
        let d0 = FixedFanout::new(0);
        let p0 = SitePercolation::new(&d0, 1.0).unwrap();
        assert_eq!(p0.reliability().unwrap(), 0.0);
    }

    #[test]
    fn fixed_fanout_three_known_value() {
        // 3-regular graph: u = u² (from G1(u) = u², q = 1) → u = 0,
        // S = 1 − G0(0) = 1. Full percolation.
        let d = FixedFanout::new(3);
        let p = SitePercolation::new(&d, 1.0).unwrap();
        assert!((p.reliability().unwrap() - 1.0).abs() < 1e-9);
        // q_c = 1/2 for fixed fanout 3 (G1'(1) = 2).
        assert!((p.critical_q().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_component_size_diverges_at_critical() {
        let d = PoissonFanout::new(4.0); // q_c = 0.25
        let sub = SitePercolation::new(&d, 0.10).unwrap();
        let s_sub = sub.mean_component_size().unwrap();
        assert!(s_sub > 0.0 && s_sub.is_finite());
        let nearer = SitePercolation::new(&d, 0.24).unwrap();
        let s_near = nearer.mean_component_size().unwrap();
        assert!(
            s_near > s_sub,
            "⟨s⟩ must grow toward the transition: {s_near} vs {s_sub}"
        );
        let critical = SitePercolation::new(&d, 0.25).unwrap();
        assert_eq!(critical.mean_component_size(), None);
        let sup = SitePercolation::new(&d, 0.5).unwrap();
        assert_eq!(sup.mean_component_size(), None);
    }

    #[test]
    fn eq2_value_check() {
        // Hand-check Eq. 2 for Po(z=2), q = 0.2 (subcritical, q_c = 0.5):
        // <s> = q[1 + q·z/(1 − q·z)] = 0.2·[1 + 0.4/0.6].
        let d = PoissonFanout::new(2.0);
        let p = SitePercolation::new(&d, 0.2).unwrap();
        let expect = 0.2 * (1.0 + 0.4 / 0.6);
        assert!((p.mean_component_size().unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn heavy_tail_beats_poisson_at_equal_mean() {
        // Geometric fanout percolates earlier (smaller q_c) than Poisson
        // with the same mean because G1'(1) = 2z vs z.
        let g = GeometricFanout::with_mean(3.0);
        let p = PoissonFanout::new(3.0);
        let perc_g = SitePercolation::new(&g, 0.5).unwrap();
        let perc_p = SitePercolation::new(&p, 0.5).unwrap();
        assert!(perc_g.critical_q().unwrap() < perc_p.critical_q().unwrap());
    }

    #[test]
    fn uniform_and_empirical_consistency() {
        // U[2,6] has the same mean as Po(4); reliabilities should be in
        // the same ballpark but not equal.
        let u = UniformFanout::new(2, 6);
        let ru = SitePercolation::new(&u, 0.9)
            .unwrap()
            .reliability()
            .unwrap();
        assert!(ru > 0.9, "U[2,6] at q=0.9 should be highly reliable: {ru}");
        let e = EmpiricalFanout::new(&[0.0, 0.0, 0.2, 0.2, 0.2, 0.2, 0.2]);
        let re = SitePercolation::new(&e, 0.9)
            .unwrap()
            .reliability()
            .unwrap();
        assert!((ru - re).abs() < 1e-9, "same table, same result");
    }

    #[test]
    fn rejects_bad_q() {
        let d = PoissonFanout::new(2.0);
        assert!(SitePercolation::new(&d, 0.0).is_err());
        assert!(SitePercolation::new(&d, -0.1).is_err());
        assert!(SitePercolation::new(&d, 1.1).is_err());
        assert!(SitePercolation::new(&d, f64::NAN).is_err());
    }

    #[test]
    fn giant_fraction_is_q_times_reliability() {
        let d = PoissonFanout::new(4.0);
        let p = SitePercolation::new(&d, 0.7).unwrap();
        let r = p.reliability().unwrap();
        let g = p.giant_fraction().unwrap();
        assert!((g - 0.7 * r).abs() < 1e-12);
    }
}
